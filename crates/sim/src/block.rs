//! Compiled basic-block execution: the decoded-uop cache and the
//! specialized pipeline that executes it, plus SMARTS-style interval
//! sampling.
//!
//! ## Decoded-uop cache
//!
//! [`CompiledProgram::build`] decodes every static instruction **once** at
//! layout time into a flat [`Uop`] descriptor — dense register uses/def,
//! functional-unit class, reservation-station queue index, branch kind and
//! resolved taken-target PC — grouped into per-basic-block spans (the
//! block-granular counterpart lives in [`guardspec_interp::blocks`]).  The
//! compiled pipeline then executes trace entries against this table with no
//! per-entry opcode dispatch, no `InsnRef` chasing, and no PC arithmetic.
//!
//! ## Exactness contract
//!
//! In exact mode the compiled engine is **cycle-for-cycle identical** to
//! [`crate::pipeline`]'s interpreted engine: same `SimStats`, same cycle
//! buckets, same per-site attribution.  Two structural changes make it
//! faster without changing any observable:
//!
//! * **Event-driven completion** — issued entries post their seq into a
//!   timing wheel bucketed by finish cycle (with a min-heap overflow for
//!   latencies beyond the wheel span, normally empty); the complete stage
//!   drains the current bucket instead of scanning the whole window every
//!   cycle.  Completion order within a cycle does not affect any counter,
//!   and at most one `blocks_fetch` entry is in flight at a time, so the
//!   resume logic is order-free.
//! * **In-queue counter** — a running count of `InQueue` entries lets the
//!   issue stage skip its wake-up scan entirely on cycles where nothing
//!   can issue (the scan would have found nothing and charged nothing).
//!
//! ## Sampling
//!
//! [`simulate_sampled_in`] layers SMARTS-style systematic interval
//! sampling on top: per interval of [`SampleParams::interval`] trace
//! entries, the gap is fast-forwarded with **functional warming** (I-/D-
//! cache, BHT and BTB updated exactly as the detailed fetch stage would,
//! minus timing), then `warmup + detail` entries run through the detailed
//! pipeline with the first `warmup` commits excluded from measurement.
//! Per-window IPC samples yield a Student-t 95% confidence interval
//! (plus a documented 2%-of-mean bias allowance); traces too short for
//! two windows fall back to an exact run (`windows = 0`, zero-width CI).

use crate::config::{class_idx, MachineConfig, QueueKind};
use crate::observe::{CycleBucket, SimObserver};
use crate::pipeline::{
    ChunkSource, EState, Entry, SimContext, SimError, StallKind, TraceSource, BUDGET_PER_ENTRY,
    BUDGET_SLACK, MAX_SRCS,
};
use crate::stats::SimStats;
use guardspec_interp::stream::StreamObserver;
use guardspec_interp::{SharedTrace, StaticLayout, TraceEntry};
use guardspec_ir::{FuClass, Opcode, Program, Reg};
use guardspec_predict::{BranchKind, Scheme};
use std::cmp::Reverse;
use std::sync::Arc;

/// One decoded static instruction: everything the pipeline needs per
/// fetched trace entry, resolved once at compile time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Uop {
    pub(crate) pc: u64,
    /// PC of the taken-target block (direct branches and jumps only).
    pub(crate) target_pc: Option<u64>,
    pub(crate) class: FuClass,
    pub(crate) queue: QueueKind,
    /// `queue.index()`, precomputed.
    pub(crate) qi: u8,
    pub(crate) uses: [u8; MAX_SRCS],
    pub(crate) nuses: u8,
    pub(crate) def: Option<u8>,
    pub(crate) kind: Option<BranchKind>,
    pub(crate) is_cond: bool,
    pub(crate) is_mem: bool,
}

impl Uop {
    fn uses(&self) -> &[u8] {
        &self.uses[..self.nuses as usize]
    }
}

/// The decoded-uop cache for one program: flat per-site descriptors plus
/// per-basic-block spans, built once and shared (read-only) by every
/// simulation of the program.
pub struct CompiledProgram {
    layout: StaticLayout,
    uops: Vec<Uop>,
    /// Per-block `(first site id, len)` spans in layout order.
    blocks: Vec<(u32, u32)>,
    /// Dense site-id → block-index table.
    block_of: Vec<u32>,
}

impl CompiledProgram {
    /// Decode `prog` into flat block descriptors.
    pub fn build(prog: &Program) -> CompiledProgram {
        let layout = StaticLayout::build(prog);
        debug_assert!(Reg::DENSE_COUNT <= u8::MAX as usize + 1);
        let mut uops = Vec::with_capacity(layout.num_sites());
        for id in 0..layout.num_sites() as u32 {
            let site = layout.site(id);
            let insn = prog.insn(site);
            let target_pc = match &insn.op {
                Opcode::Branch { target, .. } | Opcode::Jump { target } => {
                    Some(layout.pc(layout.block_start(site.func, *target)))
                }
                _ => None,
            };
            let mut uses = [0u8; MAX_SRCS];
            let mut nuses = 0u8;
            for r in insn.uses() {
                let r: Reg = r;
                uses[nuses as usize] = r.dense_index() as u8;
                nuses += 1;
            }
            let class = insn.fu_class();
            let queue = QueueKind::for_class(class);
            let kind = BranchKind::of(insn);
            uops.push(Uop {
                pc: layout.pc(id),
                target_pc,
                class,
                queue,
                qi: queue.index() as u8,
                uses,
                nuses,
                def: insn
                    .def()
                    .filter(|d| !d.is_int_zero())
                    .map(|d| d.dense_index() as u8),
                kind,
                is_cond: matches!(
                    kind,
                    Some(BranchKind::CondDirect) | Some(BranchKind::CondLikely)
                ),
                is_mem: class == FuClass::LoadStore,
            });
        }
        let blocks = layout.block_spans();
        let block_of = guardspec_interp::blocks::block_of_table(&layout);
        CompiledProgram {
            layout,
            uops,
            blocks,
            block_of,
        }
    }

    pub fn layout(&self) -> &StaticLayout {
        &self.layout
    }

    pub fn num_uops(&self) -> usize {
        self.uops.len()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Dense block index of a static site.
    pub fn block_of(&self, site: u32) -> u32 {
        self.block_of[site as usize]
    }

    /// `(first site id, len)` of a block's descriptor span.
    pub fn block_span(&self, block: u32) -> (u32, u32) {
        self.blocks[block as usize]
    }
}

/// Per-run execution latency by dense class index (resolves
/// `Latencies::for_class` once instead of per issue).
fn latency_table(cfg: &MachineConfig) -> [u64; 8] {
    let mut t = [0u64; 8];
    for c in FuClass::ALL {
        t[class_idx(c)] = cfg.latencies.for_class(c);
    }
    t
}

/// The compiled pipeline.  A disciplined replica of
/// [`crate::pipeline::Pipeline`]'s five stages over the flat uop table —
/// any semantic divergence is a bug (enforced by the differential fuzz
/// oracle and the unit tests below).
struct CompiledPipeline<'a, S: TraceSource, O: SimObserver> {
    cfg: &'a MachineConfig,
    uops: &'a [Uop],
    source: S,
    scheme: Scheme,
    lat: [u64; 8],

    now: u64,
    head_seq: u64,
    next_seq: u64,
    queue_len: [usize; 4],
    unresolved_branches: usize,
    fetch_resume: u64,
    fetch_blocked_by: Option<u64>,
    fpdiv_free_at: u64,
    /// Oldest `InQueue` seq — head of the issue list threaded through the
    /// ring via [`Entry::nextq`] (`u64::MAX` = empty).
    q_head: u64,
    /// Youngest `InQueue` seq (tail of the issue list).
    q_tail: u64,
    /// Instructions committed this cycle (cycle classification input).
    committed_cycle: u8,
    /// Record `(cycle, committed)` when `committed_total` first reaches
    /// this threshold — the sampling warm-up boundary.  `u64::MAX`
    /// disables marking (exact mode).
    mark_at: u64,
    mark: Option<(u64, u64)>,

    /// Window-ring index mask: `ctx.ring.len() - 1` (the length is a power
    /// of two covering `rob_size`, so the slot of seq `s` is `s & mask`).
    ring_mask: u64,
    /// Timing-wheel index mask: `ctx.wheel.len() - 1` (the length is a
    /// power of two sized to cover every latency `cfg` can produce).
    wheel_mask: u64,
    /// Completion events currently held in the wheel (the overflow heap
    /// tracks its own length).
    wheel_count: usize,
    /// Lower bound on the earliest cycle holding a wheel event — advanced
    /// lazily past empty buckets when stall-jumping needs the true value.
    wheel_next: u64,

    ctx: &'a mut SimContext,
    stats: SimStats,

    obs: &'a mut O,
    /// Set by the issue stage when a ready entry was denied only by a
    /// structural hazard (FU count or busy divider) — it can retry next
    /// cycle, so stall-jumping must not skip it.
    structural_retry: bool,
    /// Cycle at which the oldest front-end-delayed `InQueue` entry becomes
    /// issue-eligible (`u64::MAX` when none) — the issue stage's next
    /// time-driven wake-up.
    delay_eligible_at: u64,
    /// Set by the fetch stage when it consumed nothing purely because of a
    /// capacity limit (ROB/queue/branch); such a stall only clears through
    /// a completion, never by waiting, so it contributes no jump deadline
    /// (and no `fetch_stall_cycles`).
    fetch_parked: bool,
    resume_kind: StallKind,
    resume_site: u32,
    block_site: u32,
    block_misp: bool,
    capacity_stall: bool,
}

impl<'a, S: TraceSource, O: SimObserver> CompiledPipeline<'a, S, O> {
    /// Live window occupancy (`[head_seq, next_seq)`).
    #[inline]
    fn win_len(&self) -> usize {
        (self.next_seq - self.head_seq) as usize
    }

    /// Ring slot of a live seq.
    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq & self.ring_mask) as usize
    }

    /// Oldest live entry, if any.
    #[inline]
    fn win_front(&self) -> Option<&Entry> {
        if self.next_seq == self.head_seq {
            None
        } else {
            Some(&self.ctx.ring[(self.head_seq & self.ring_mask) as usize])
        }
    }

    fn dep_ready(&self, seq: u64) -> bool {
        // Committed producers (seq below the window head) are ready.
        seq < self.head_seq || self.ctx.ring[self.slot(seq)].state == EState::Complete
    }

    /// Mark one finished execution complete (shared by the wheel and the
    /// overflow-heap drains).
    #[inline]
    fn complete_one(&mut self, seq: u64, now: u64, recovery: u64, resume: &mut Option<u64>) {
        let idx = self.slot(seq);
        let e = &mut self.ctx.ring[idx];
        debug_assert!(e.state == EState::Executing && e.finish <= now);
        e.state = EState::Complete;
        if e.is_cond {
            self.unresolved_branches -= 1;
        }
        if e.blocks_fetch {
            *resume = Some(now + 1 + recovery);
            e.blocks_fetch = false;
        }
    }

    /// Stage 1: drain this cycle's completion bucket (instead of scanning
    /// the window); resolve fetch blocks.
    fn complete_stage(&mut self) {
        let now = self.now;
        let mut resume: Option<u64> = None;
        let recovery = self.cfg.mispredict_recovery;
        if self.wheel_count > 0 {
            let bi = (now & self.wheel_mask) as usize;
            if !self.ctx.wheel[bi].is_empty() {
                let mut bucket = std::mem::take(&mut self.ctx.wheel[bi]);
                self.wheel_count -= bucket.len();
                for &seq in &bucket {
                    self.complete_one(seq, now, recovery, &mut resume);
                }
                bucket.clear();
                self.ctx.wheel[bi] = bucket; // hand the capacity back
            }
        }
        while let Some(&Reverse((finish, seq))) = self.ctx.events.peek() {
            if finish > now {
                break;
            }
            self.ctx.events.pop();
            self.complete_one(seq, now, recovery, &mut resume);
        }
        if let Some(r) = resume {
            self.fetch_blocked_by = None;
            if O::ENABLED && r >= self.fetch_resume {
                self.resume_kind = StallKind::Recovery;
                self.resume_site = self.block_site;
            }
            self.fetch_resume = self.fetch_resume.max(r);
        }
    }

    /// Stage 2: in-order commit of up to `commit_width`.
    fn commit_stage(&mut self) {
        for _ in 0..self.cfg.commit_width {
            match self.win_front() {
                Some(e) if e.state == EState::Complete => {
                    let e = *e;
                    self.head_seq = e.seq + 1;
                    let u = &self.uops[e.id as usize];
                    self.queue_len[u.qi as usize] -= 1;
                    self.stats.committed_total += 1;
                    self.committed_cycle = self.committed_cycle.saturating_add(1);
                    if e.annulled {
                        self.stats.annulled += 1;
                    } else {
                        self.stats.committed += 1;
                    }
                    if let Some(d) = u.def {
                        if self.ctx.reg_writer[d as usize] == Some(e.seq) {
                            self.ctx.reg_writer[d as usize] = None;
                        }
                    }
                    if self.stats.committed_total == self.mark_at {
                        self.mark = Some((self.now, self.stats.committed));
                    }
                }
                _ => break,
            }
        }
    }

    /// Stage 3: wake-up/select per reservation station, oldest first.
    /// Walks the linked list of `InQueue` entries threaded through the
    /// ring (`q_head`/`Entry::nextq`) in seq order — the same visit order
    /// as the interpreted window scan, minus the entries that scan would
    /// skip for not being `InQueue`.  Skipped outright when the list is
    /// empty (the interpreted scan would find nothing, issue nothing, and
    /// charge nothing).
    fn issue_stage(&mut self) {
        if self.q_head == u64::MAX {
            return;
        }
        let mut issued = [0usize; 8];
        let now = self.now;
        let mut structural = false;
        let mut delay_at = u64::MAX;
        let mut prev = u64::MAX;
        let mut cur = self.q_head;
        while cur != u64::MAX {
            let sl = self.slot(cur);
            let (ready, class, nxt) = {
                let e = &self.ctx.ring[sl];
                debug_assert!(e.state == EState::InQueue);
                if now <= e.disp_cycle + self.cfg.frontend_depth {
                    // Dispatch is in order and the front-end depth is
                    // constant, so every younger list entry is also
                    // still inside its front-end delay: the walk can
                    // stop here.
                    delay_at = e.disp_cycle + self.cfg.frontend_depth + 1;
                    break;
                }
                let ready = e.deps().iter().all(|&d| self.dep_ready(d));
                (ready, e.class, e.nextq)
            };
            if !ready {
                prev = cur;
                cur = nxt;
                continue;
            }
            let ci = class_idx(class);
            let fus = self.cfg.fu_count[ci];
            if class != FuClass::Nop
                && (issued[ci] >= fus || (class == FuClass::FpDiv && now < self.fpdiv_free_at))
            {
                // Structural hazard this cycle (FU count or busy divider).
                structural = true;
                prev = cur;
                cur = nxt;
                continue;
            }
            let mut lat = self.lat[ci];
            let (is_mem, addr, annulled) = {
                let e = &self.ctx.ring[sl];
                (e.class == FuClass::LoadStore, e.mem_addr, e.annulled)
            };
            let mut dmiss = false;
            if is_mem && !annulled {
                let byte = (addr.unwrap_or(0) as u64) << 2;
                if !self.ctx.dcache.access(byte) {
                    lat += self.cfg.latencies.cache_miss_penalty;
                    self.stats.dcache_misses += 1;
                    dmiss = true;
                } else {
                    self.stats.dcache_hits += 1;
                }
            }
            let (fin, sq) = {
                let e = &mut self.ctx.ring[sl];
                e.state = EState::Executing;
                e.finish = now + lat;
                if O::ENABLED {
                    e.dmiss = dmiss;
                }
                (e.finish, e.seq)
            };
            // Unlink the issued entry from the InQueue list.
            if prev == u64::MAX {
                self.q_head = nxt;
            } else {
                let psl = self.slot(prev);
                self.ctx.ring[psl].nextq = nxt;
            }
            if nxt == u64::MAX {
                self.q_tail = prev;
            }
            cur = nxt;
            // Completion is observed no earlier than next cycle (the
            // complete stage for `now` already ran), matching the heap
            // engine's `finish <= now` pop condition.
            let due = fin.max(now + 1);
            if due - now <= self.wheel_mask {
                self.ctx.wheel[(due & self.wheel_mask) as usize].push(sq);
                self.wheel_count += 1;
                if due < self.wheel_next {
                    self.wheel_next = due;
                }
            } else {
                self.ctx.events.push(Reverse((fin, sq)));
            }
            if class != FuClass::Nop {
                issued[ci] += 1;
                self.stats.fu_issues[ci] += 1;
                if class == FuClass::FpDiv {
                    self.fpdiv_free_at = fin;
                }
            }
        }
        self.structural_retry = structural;
        self.delay_eligible_at = delay_at;
        for (ci, &n) in issued.iter().enumerate() {
            let fus = self.cfg.fu_count[ci];
            if fus != usize::MAX && fus > 0 && n == fus {
                self.stats.fu_full_cycles[ci] += 1;
            }
        }
    }

    /// Stage 4: fetch + dispatch through the uop table.
    fn fetch_stage(&mut self) {
        if self.source.cur().is_none() {
            return;
        }
        if self.fetch_blocked_by.is_some() || self.now < self.fetch_resume {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let uops = self.uops;
        let mut fetched = 0usize;
        for _ in 0..self.cfg.fetch_width {
            let Some(te) = self.source.cur() else {
                break;
            };
            let u = &uops[te.id as usize];

            if self.win_len() >= self.cfg.rob_size {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                self.fetch_parked = fetched == 0;
                break;
            }
            let qi = u.qi as usize;
            if self.queue_len[qi] >= self.cfg.queue_size[qi] {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                self.fetch_parked = fetched == 0;
                break;
            }
            let is_cond = u.is_cond;
            if is_cond && self.unresolved_branches >= self.cfg.max_inflight_branches {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                self.fetch_parked = fetched == 0;
                break;
            }
            if !self.ctx.icache.access(u.pc) {
                self.stats.icache_misses += 1;
                self.fetch_resume = self.now + self.cfg.latencies.cache_miss_penalty;
                if O::ENABLED {
                    self.resume_kind = StallKind::Icache;
                }
                break;
            }
            self.stats.icache_hits += 1;

            let seq = self.next_seq;
            self.next_seq += 1;
            let mut deps = [0u64; MAX_SRCS];
            let mut ndeps = 0u8;
            for &r in u.uses() {
                if let Some(s) = self.ctx.reg_writer[r as usize] {
                    if !self.dep_ready(s) && !deps[..ndeps as usize].contains(&s) {
                        deps[ndeps as usize] = s;
                        ndeps += 1;
                    }
                }
            }
            if let Some(d) = u.def {
                self.ctx.reg_writer[d as usize] = Some(seq);
            }
            self.queue_len[qi] += 1;
            if is_cond {
                self.unresolved_branches += 1;
            }
            let mut entry = Entry {
                seq,
                id: te.id,
                class: u.class,
                queue: u.queue,
                state: EState::InQueue,
                disp_cycle: self.now,
                finish: 0,
                deps,
                ndeps,
                mem_addr: te.mem_addr(),
                blocks_fetch: false,
                is_cond,
                annulled: te.annulled(),
                dmiss: false,
                nextq: u64::MAX,
            };
            self.source.advance();
            fetched += 1;

            let mut stop_group = false;
            if let Some(kind) = u.kind.filter(|_| !te.annulled()) {
                let taken = te.taken();
                if O::ENABLED && matches!(kind, BranchKind::CondDirect | BranchKind::CondLikely) {
                    self.obs.on_branch(te.id);
                }
                match kind {
                    BranchKind::CondDirect => {
                        let actual = taken.unwrap_or(false);
                        self.stats.cond_branches += 1;
                        if self.scheme.is_perfect() {
                            stop_group = actual;
                        } else {
                            let pred = self.ctx.bht.predict(u.pc);
                            self.ctx.bht.update(u.pc, actual);
                            if pred == actual {
                                if actual {
                                    match self.ctx.btb.lookup(u.pc) {
                                        Some(_) => {
                                            self.stats.btb_hits += 1;
                                        }
                                        None => {
                                            self.stats.btb_misses += 1;
                                            self.fetch_resume = self.now + 2;
                                            if O::ENABLED {
                                                self.resume_kind = StallKind::Redirect;
                                            }
                                            if let Some(t) = u.target_pc {
                                                self.ctx.btb.install(u.pc, t);
                                            }
                                        }
                                    }
                                    stop_group = true;
                                }
                            } else {
                                self.stats.mispredicts += 1;
                                entry.blocks_fetch = true;
                                self.fetch_blocked_by = Some(seq);
                                if O::ENABLED {
                                    self.obs.on_mispredict(te.id, false);
                                    self.block_site = te.id;
                                    self.block_misp = true;
                                }
                                if actual {
                                    if let Some(t) = u.target_pc {
                                        self.ctx.btb.install(u.pc, t);
                                    }
                                }
                                stop_group = true;
                            }
                        }
                    }
                    BranchKind::CondLikely => {
                        let actual = taken.unwrap_or(false);
                        self.stats.cond_branches += 1;
                        self.stats.likely_branches += 1;
                        if self.scheme.is_perfect() {
                            stop_group = actual;
                        } else if actual {
                            stop_group = true;
                        } else {
                            self.stats.mispredicts += 1;
                            self.stats.likely_mispredicts += 1;
                            entry.blocks_fetch = true;
                            self.fetch_blocked_by = Some(seq);
                            if O::ENABLED {
                                self.obs.on_mispredict(te.id, true);
                                self.block_site = te.id;
                                self.block_misp = true;
                            }
                            stop_group = true;
                        }
                    }
                    BranchKind::DirectJump => {
                        if !self.scheme.is_perfect() {
                            match self.ctx.btb.lookup(u.pc) {
                                Some(_) => {
                                    self.stats.btb_hits += 1;
                                }
                                None => {
                                    self.stats.btb_misses += 1;
                                    self.fetch_resume = self.now + 2;
                                    if O::ENABLED {
                                        self.resume_kind = StallKind::Redirect;
                                    }
                                    if let Some(t) = u.target_pc {
                                        self.ctx.btb.install(u.pc, t);
                                    }
                                }
                            }
                        }
                        stop_group = true;
                    }
                    BranchKind::Call => {
                        if !self.scheme.is_perfect() {
                            self.fetch_resume = self.now + 2;
                            if O::ENABLED {
                                self.resume_kind = StallKind::Redirect;
                            }
                        }
                        stop_group = true;
                    }
                    BranchKind::Indirect => {
                        if self.scheme.is_perfect() {
                            stop_group = true;
                        } else {
                            self.stats.indirect_stalls += 1;
                            entry.blocks_fetch = true;
                            self.fetch_blocked_by = Some(seq);
                            if O::ENABLED {
                                self.block_site = te.id;
                                self.block_misp = false;
                            }
                            stop_group = true;
                        }
                    }
                }
            }

            let sl = self.slot(entry.seq);
            self.ctx.ring[sl] = entry;
            // Append to the InQueue issue list.
            if self.q_head == u64::MAX {
                self.q_head = seq;
            } else {
                let tsl = self.slot(self.q_tail);
                self.ctx.ring[tsl].nextq = seq;
            }
            self.q_tail = seq;
            if stop_group {
                break;
            }
        }
        if fetched > 0 {
            // Entries dispatched this cycle were not seen by this cycle's
            // issue scan (issue runs first): they become issue-eligible
            // once their front-end delay matures.
            self.delay_eligible_at = self
                .delay_eligible_at
                .min(self.now + self.cfg.frontend_depth + 1);
        }
    }

    /// Identical priority chain to the interpreted engine's
    /// `classify_cycle`.
    fn classify_cycle(&mut self) {
        let (bucket, site) = if self.committed_cycle > 0 {
            (CycleBucket::UsefulCommit, None)
        } else if self.source.cur().is_none() {
            (CycleBucket::Drain, None)
        } else if self.fetch_blocked_by.is_some() {
            if self.block_misp {
                (CycleBucket::MispredictRecovery, Some(self.block_site))
            } else {
                (CycleBucket::FetchStall, Some(self.block_site))
            }
        } else if self.now < self.fetch_resume {
            match self.resume_kind {
                StallKind::Recovery if self.block_misp => {
                    (CycleBucket::MispredictRecovery, Some(self.resume_site))
                }
                StallKind::Recovery => (CycleBucket::FetchStall, Some(self.resume_site)),
                StallKind::Icache => (CycleBucket::IcacheMiss, None),
                _ => (CycleBucket::FetchStall, None),
            }
        } else if self.capacity_stall {
            (CycleBucket::IssueWindowFull, None)
        } else {
            match self.win_front() {
                None => (CycleBucket::FetchStall, None),
                Some(e) if e.state == EState::Executing => {
                    if e.dmiss {
                        (CycleBucket::DcacheMiss, None)
                    } else {
                        (CycleBucket::FuContention, None)
                    }
                }
                Some(e) if self.now <= e.disp_cycle + self.cfg.frontend_depth => {
                    (CycleBucket::FetchStall, None)
                }
                Some(_) => (CycleBucket::FuContention, None),
            }
        };
        self.obs.on_cycle(bucket, site);
    }

    /// Jump `now` to just before the next cycle on which any stage can
    /// act, bulk-charging the per-cycle stall and occupancy counters for
    /// the skipped span.  Only run in plain (unobserved) mode: the
    /// observer's `on_cycle` classification is inherently per-cycle.
    ///
    /// Exact by construction — a cycle is skipped only when every stage
    /// provably does nothing on it:
    ///
    /// * **complete** acts next at the earliest pending event;
    /// * **commit** acts only after a completion, unless entries beyond
    ///   `commit_width` are already complete at the window head;
    /// * **issue** acts when a completion readies a dependent (covered by
    ///   the event deadline), when the oldest front-end-delayed entry
    ///   matures ([`Self::delay_eligible_at`]), or immediately if a ready
    ///   entry lost a structural hazard this cycle;
    /// * **fetch** acts at `fetch_resume` when time-stalled; a
    ///   block-on-branch or zero-progress capacity stall clears only via
    ///   a completion.
    ///
    /// Skipped cycles charge `fetch_stall_cycles` exactly when the
    /// per-cycle fetch stage would have (source pending and fetch blocked
    /// or time-stalled), and the queue occupancy/full counters advance as
    /// if the cycles had ticked (queue lengths cannot change on skipped
    /// cycles).  The jump is capped at the source's budget limit so a
    /// cycle-budget overrun errors on exactly the same cycle as the
    /// per-cycle check.
    fn stall_jump(&mut self) {
        if self.structural_retry
            || matches!(self.win_front(), Some(e) if e.state == EState::Complete)
        {
            return; // issue or commit has work next cycle
        }
        let mut next = self.delay_eligible_at;
        if self.wheel_count > 0 {
            // Advance the lazy lower bound to the first occupied bucket;
            // every wheel event lies within one wheel span of `now`.
            let mut c = self.wheel_next.max(self.now + 1);
            while self.ctx.wheel[(c & self.wheel_mask) as usize].is_empty() {
                c += 1;
            }
            self.wheel_next = c;
            next = next.min(c);
        }
        if let Some(&Reverse((finish, _))) = self.ctx.events.peek() {
            next = next.min(finish);
        }
        let mut charge_stall = false;
        if self.source.cur().is_some() {
            if self.fetch_blocked_by.is_some() {
                charge_stall = true; // cleared by a completion event
            } else if self.now + 1 < self.fetch_resume {
                charge_stall = true;
                next = next.min(self.fetch_resume);
            } else if !self.fetch_parked {
                return; // fetch can act next cycle
            }
        } else if self.next_seq == self.head_seq {
            return; // drained: the run loop is about to exit
        }
        let next = next.min(self.source.budget_limit().saturating_add(1));
        if next <= self.now + 1 {
            return;
        }
        let delta = next - self.now - 1;
        if charge_stall {
            self.stats.fetch_stall_cycles += delta;
        }
        for q in 0..4 {
            self.stats.queue_occupancy_sum[q] += self.queue_len[q] as u64 * delta;
            if self.queue_len[q] >= self.cfg.queue_size[q] {
                self.stats.queue_full_cycles[q] += delta;
            }
        }
        self.now = next - 1;
    }

    fn run(mut self) -> Result<(SimStats, (u64, u64)), SimError> {
        if self.mark_at == 0 {
            self.mark = Some((0, 0));
        }
        while self.source.cur().is_some() || self.next_seq != self.head_seq {
            self.now += 1;
            self.committed_cycle = 0;
            self.structural_retry = false;
            self.delay_eligible_at = u64::MAX;
            self.fetch_parked = false;
            if O::ENABLED {
                self.capacity_stall = false;
            }
            self.complete_stage();
            self.commit_stage();
            self.issue_stage();
            self.fetch_stage();
            if O::ENABLED {
                self.classify_cycle();
            }
            for q in 0..4 {
                self.stats.queue_occupancy_sum[q] += self.queue_len[q] as u64;
                if self.queue_len[q] >= self.cfg.queue_size[q] {
                    self.stats.queue_full_cycles[q] += 1;
                }
            }
            if self.source.budget_exceeded(self.now) {
                return Err(SimError::CycleBudgetExceeded {
                    cycles: self.now,
                    retired: self.stats.committed_total,
                });
            }
            if !O::ENABLED {
                self.stall_jump();
            }
        }
        self.stats.cycles = self.now;
        let mark = self.mark.unwrap_or((self.now, self.stats.committed));
        Ok((self.stats, mark))
    }
}

/// Run the compiled pipeline over `source` **without** resetting `ctx` or
/// notifying the observer — the building block for both exact runs (one
/// call after `prepare`) and sampled runs (one call per detailed window
/// over continuously warmed state).
fn run_compiled<S: TraceSource, O: SimObserver>(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    source: S,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut O,
    mark_at: u64,
) -> Result<(SimStats, (u64, u64)), SimError> {
    let lat = latency_table(cfg);
    // Wheel span: the longest possible completion delay (max class latency
    // plus a cache-miss penalty) with headroom, rounded to a power of two.
    // Capped so an adversarial config cannot demand a huge allocation —
    // longer latencies spill to the overflow heap instead.
    let span = lat.iter().copied().max().unwrap_or(1) + cfg.latencies.cache_miss_penalty + 2;
    let wheel_len = span.min(1024).next_power_of_two().max(4) as usize;
    if ctx.wheel.len() != wheel_len {
        ctx.wheel = vec![Vec::new(); wheel_len];
    }
    let ring_len = cfg.rob_size.next_power_of_two().max(1);
    if ctx.ring.len() != ring_len {
        ctx.ring.clear();
        ctx.ring.resize(ring_len, Entry::filler());
    }
    let pipe = CompiledPipeline {
        cfg,
        uops: &comp.uops,
        source,
        scheme,
        lat,
        now: 0,
        head_seq: 0,
        next_seq: 0,
        queue_len: [0; 4],
        unresolved_branches: 0,
        fetch_resume: 0,
        fetch_blocked_by: None,
        fpdiv_free_at: 0,
        q_head: u64::MAX,
        q_tail: u64::MAX,
        committed_cycle: 0,
        mark_at,
        mark: None,
        ctx,
        stats: SimStats::default(),
        obs,
        structural_retry: false,
        delay_eligible_at: u64::MAX,
        fetch_parked: false,
        ring_mask: ring_len as u64 - 1,
        wheel_mask: wheel_len as u64 - 1,
        wheel_count: 0,
        wheel_next: u64::MAX,
        resume_kind: StallKind::None,
        resume_site: 0,
        block_site: 0,
        block_misp: false,
        capacity_stall: false,
    };
    pipe.run()
}

/// Exact compiled run over any [`TraceSource`], reusing `ctx` allocations
/// and reporting to `obs`.  Stats are identical to the interpreted
/// engine's over the same source.
pub fn simulate_compiled_source_observed_in<S: TraceSource, O: SimObserver>(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    source: S,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut O,
) -> Result<SimStats, SimError> {
    ctx.prepare(cfg);
    if O::ENABLED {
        obs.on_run_start(comp.uops.len());
    }
    run_compiled(ctx, comp, source, scheme, cfg, obs, u64::MAX).map(|(s, _)| s)
}

/// Exact compiled run over a materialized trace slice.
pub fn simulate_compiled_trace_in(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<SimStats, SimError> {
    simulate_compiled_source_observed_in(
        ctx,
        comp,
        crate::pipeline::SliceSource::new(trace),
        scheme,
        cfg,
        &mut (),
    )
}

/// [`simulate_compiled_trace_in`] with an observer.
pub fn simulate_compiled_trace_observed_in(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<SimStats, SimError> {
    simulate_compiled_source_observed_in(
        ctx,
        comp,
        crate::pipeline::SliceSource::new(trace),
        scheme,
        cfg,
        obs,
    )
}

/// Exact compiled run over a [`SharedTrace`] (the fan-out path).
pub fn simulate_compiled_shared_in(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<SimStats, SimError> {
    simulate_compiled_source_observed_in(ctx, comp, ChunkSource::new(trace), scheme, cfg, &mut ())
}

/// [`simulate_compiled_shared_in`] with an observer.
pub fn simulate_compiled_shared_observed_in(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<SimStats, SimError> {
    simulate_compiled_source_observed_in(ctx, comp, ChunkSource::new(trace), scheme, cfg, obs)
}

/// Streamed compiled run: the interpreter feeds the compiled pipeline over
/// a bounded channel (the no-fanout harness path).
pub fn simulate_program_compiled_streamed_observed_in(
    ctx: &mut SimContext,
    prog: &Program,
    comp: &CompiledProgram,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let (writer, reader) = guardspec_interp::stream::trace_channel();
    let (sim, exec) = std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let mut sobs = StreamObserver::new(comp.layout(), writer);
            let res = guardspec_interp::Interp::new(prog).run_with(&mut sobs);
            if res.is_ok() {
                sobs.finish();
            }
            res
        });
        let sim = simulate_compiled_source_observed_in(
            ctx,
            comp,
            crate::pipeline::StreamSource::new(reader),
            scheme,
            cfg,
            obs,
        );
        let exec = producer.join().expect("trace producer panicked");
        (sim, exec)
    });
    let exec = exec?;
    Ok((sim?, exec))
}

/// Run `prog` functionally, then simulate its trace on the compiled
/// engine (convenience mirror of [`crate::pipeline::simulate_program`]).
pub fn simulate_program_compiled(
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let (_layout, trace, res) = guardspec_interp::trace::trace_program(prog)?;
    let comp = CompiledProgram::build(prog);
    let mut ctx = SimContext::new(cfg);
    let stats = simulate_compiled_trace_in(&mut ctx, &comp, &trace, scheme, cfg)?;
    Ok((stats, res))
}

// ---------------------------------------------------------------------------
// SMARTS-style interval sampling.
// ---------------------------------------------------------------------------

/// Sampling knobs: each interval of `interval` trace entries runs
/// `warmup + detail` entries through the detailed pipeline (the first
/// `warmup` commits excluded from measurement) and fast-forwards the rest
/// with functional warming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleParams {
    /// Measured (detailed) entries per window.
    pub detail: u64,
    /// Detailed warm-up entries preceding each measured region.
    pub warmup: u64,
    /// Total entries per sampling interval (gap + warmup + detail).
    pub interval: u64,
}

impl Default for SampleParams {
    fn default() -> SampleParams {
        SampleParams {
            detail: 1000,
            warmup: 1000,
            interval: 20_000,
        }
    }
}

impl SampleParams {
    /// Clamp to a consistent shape: at least one detailed entry per
    /// window, and an interval long enough to contain the window.
    pub fn normalized(&self) -> SampleParams {
        let detail = self.detail.max(1);
        let warmup = self.warmup;
        let interval = self.interval.max(detail + warmup);
        SampleParams {
            detail,
            warmup,
            interval,
        }
    }
}

/// Student-t 0.975 quantile (two-sided 95%) by degrees of freedom; the
/// asymptotic normal quantile past 30.
fn t95(df: u64) -> f64 {
    const T: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        1..=30 => T[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Documented bias allowance added to the statistical CI half-width:
/// functional warming is not cycle-accurate, so the interval is widened by
/// 2% of the mean (SMARTS reports sub-percent bias for comparable
/// warming; 2% is deliberately conservative and keeps the reported width
/// strictly positive).
const CI_BIAS_FRAC: f64 = 0.02;

/// The sampled-run estimate attached to artifacts when `--sample` is on.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSummary {
    /// Detailed windows that produced an IPC sample (0 ⇒ exact fallback).
    pub windows: u64,
    /// Normalized params the run used.
    pub detail: u64,
    pub warmup: u64,
    pub interval: u64,
    /// Entries measured (committed inside detail regions).
    pub measured_entries: u64,
    /// Total trace entries.
    pub total_entries: u64,
    /// IPC point estimate: the reciprocal of the mean per-window *CPI*
    /// (exact IPC in fallback).  Windows hold a fixed number of trace
    /// entries, so equal-weight CPI averaging is the unbiased SMARTS
    /// estimator; averaging per-window IPC directly would be Jensen-biased
    /// high on phase-heterogeneous programs.
    pub ipc_mean: f64,
    /// 95% CI half-width around `ipc_mean`: the CPI-domain `t·s/√n`
    /// interval mapped through the reciprocal (delta method), plus the
    /// 2%-of-mean bias allowance ([`CI_BIAS_FRAC`]); 0 in fallback.
    pub ipc_ci95: f64,
    /// Estimated total cycles: exact committed count × mean CPI.
    pub est_cycles: u64,
}

/// Cursor over a [`SharedTrace`]'s chunks (sampling's sequential reader).
struct SampleCursor<'a> {
    chunks: &'a [Arc<Vec<TraceEntry>>],
    cur: &'a [TraceEntry],
    idx: usize,
}

impl<'a> SampleCursor<'a> {
    fn new(trace: &'a SharedTrace) -> SampleCursor<'a> {
        SampleCursor {
            chunks: trace.chunks(),
            cur: &[],
            idx: 0,
        }
    }

    fn peek(&mut self) -> Option<TraceEntry> {
        loop {
            if let Some(&e) = self.cur.get(self.idx) {
                return Some(e);
            }
            let (head, rest) = self.chunks.split_first()?;
            self.cur = head;
            self.chunks = rest;
            self.idx = 0;
        }
    }

    /// Borrow up to `max` contiguous entries and advance past them — the
    /// warming loop's bulk reader (no per-entry chunk bookkeeping).
    fn take_slice(&mut self, max: u64) -> Option<&'a [TraceEntry]> {
        loop {
            let avail = self.cur.len() - self.idx;
            if avail > 0 {
                let n = max.min(avail as u64) as usize;
                let s = &self.cur[self.idx..self.idx + n];
                self.idx += n;
                return Some(s);
            }
            let (head, rest) = self.chunks.split_first()?;
            self.cur = head;
            self.chunks = rest;
            self.idx = 0;
        }
    }
}

/// A bounded view of the cursor: a [`TraceSource`] that ends after
/// `remaining` entries — one detailed window.
struct TakeSource<'a, 'c> {
    cursor: &'c mut SampleCursor<'a>,
    remaining: u64,
    total: u64,
}

impl TraceSource for TakeSource<'_, '_> {
    fn cur(&mut self) -> Option<TraceEntry> {
        if self.remaining == 0 {
            None
        } else {
            self.cursor.peek()
        }
    }

    fn advance(&mut self) {
        self.cursor.idx += 1;
        self.remaining -= 1;
    }

    fn budget_exceeded(&mut self, now: u64) -> bool {
        now > BUDGET_PER_ENTRY * self.total + BUDGET_SLACK
    }

    fn budget_limit(&mut self) -> u64 {
        BUDGET_PER_ENTRY * self.total + BUDGET_SLACK
    }
}

/// Functional warming of one fast-forwarded entry: update the I-/D-cache,
/// BHT and BTB exactly as the detailed fetch stage would (the detailed
/// miss-then-retry-hit I-cache pair is state-equivalent to one probe:
/// both leave the line resident and most-recently used), with no timing.
fn warm_entry(ctx: &mut SimContext, u: &Uop, te: TraceEntry, annulled: bool, perfect: bool) {
    ctx.icache.access(u.pc);
    if u.is_mem && !annulled {
        ctx.dcache.access((te.mem_addr().unwrap_or(0) as u64) << 2);
    }
    // Annulled predicated branches make no prediction (dispatch squashes
    // them); perfect schemes consult no predictor state at all.
    if annulled || perfect {
        return;
    }
    match u.kind {
        Some(BranchKind::CondDirect) => {
            let actual = te.taken().unwrap_or(false);
            let pred = ctx.bht.predict(u.pc);
            ctx.bht.update(u.pc, actual);
            if pred == actual {
                if actual && ctx.btb.lookup(u.pc).is_none() {
                    if let Some(t) = u.target_pc {
                        ctx.btb.install(u.pc, t);
                    }
                }
            } else if actual {
                if let Some(t) = u.target_pc {
                    ctx.btb.install(u.pc, t);
                }
            }
        }
        Some(BranchKind::DirectJump) if ctx.btb.lookup(u.pc).is_none() => {
            if let Some(t) = u.target_pc {
                ctx.btb.install(u.pc, t);
            }
        }
        // Branch-likelies are statically predicted, calls always bubble,
        // indirects always stall: none consult the BHT or BTB.
        _ => {}
    }
}

/// Field-wise sum of two stat blocks (window aggregation), via the stable
/// `field_list`/`set_field` codec so new counters can never be missed.
fn add_stats(dst: &mut SimStats, src: &SimStats) {
    for ((name, a), (_, b)) in dst.field_list().into_iter().zip(src.field_list()) {
        dst.set_field(&name, a + b);
    }
}

/// SMARTS-style sampled simulation over a materialized [`SharedTrace`].
///
/// Microarchitectural state is prepared **once** and carried across the
/// whole run (warming between windows, detail inside them).  Returns the
/// aggregate stats of the detailed windows plus the [`SampleSummary`]
/// estimate.  Deterministic: no randomness, no dependence on thread
/// count.  Traces too short for two windows fall back to an exact run.
pub fn simulate_sampled_observed_in<O: SimObserver>(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
    params: SampleParams,
    obs: &mut O,
) -> Result<(SimStats, SampleSummary), SimError> {
    let p = params.normalized();
    let total = trace.len();
    let span = p.warmup + p.detail;
    let gap = p.interval - span;
    ctx.prepare(cfg);
    if O::ENABLED {
        obs.on_run_start(comp.uops.len());
    }
    let mut cursor = SampleCursor::new(trace);
    let mut agg = SimStats::default();
    let mut samples: Vec<f64> = Vec::new();
    let mut annulled_warm = 0u64;
    let mut measured_entries = 0u64;
    let mut remaining = total;
    let perfect = scheme.is_perfect();
    while remaining > 0 {
        let g = gap.min(remaining);
        let mut left = g;
        while left > 0 {
            let slice = cursor
                .take_slice(left)
                .expect("trace shorter than its length");
            for &te in slice {
                let annulled = te.annulled();
                annulled_warm += annulled as u64;
                warm_entry(ctx, &comp.uops[te.id as usize], te, annulled, perfect);
            }
            left -= slice.len() as u64;
        }
        remaining -= g;
        if remaining == 0 {
            break;
        }
        let d = span.min(remaining);
        let source = TakeSource {
            cursor: &mut cursor,
            remaining: d,
            total: d,
        };
        let mark_at = p.warmup.min(d);
        let (wstats, mark) = run_compiled(ctx, comp, source, scheme, cfg, obs, mark_at)?;
        remaining -= d;
        let dcycles = wstats.cycles - mark.0;
        let dcommitted = wstats.committed - mark.1;
        if d > p.warmup && dcycles > 0 && dcommitted > 0 {
            // Per-window CPI, not IPC: windows span equal entry counts, so
            // the equal-weight CPI mean is the aggregate-ratio estimator.
            samples.push(dcycles as f64 / dcommitted as f64);
            measured_entries += d - p.warmup;
        }
        add_stats(&mut agg, &wstats);
    }
    if samples.len() < 2 {
        // Exact fallback: not enough windows for an interval estimate.
        ctx.prepare(cfg);
        if O::ENABLED {
            obs.on_run_start(comp.uops.len());
        }
        let (stats, _) = run_compiled(
            ctx,
            comp,
            ChunkSource::new(trace),
            scheme,
            cfg,
            obs,
            u64::MAX,
        )?;
        let summary = SampleSummary {
            windows: 0,
            detail: p.detail,
            warmup: p.warmup,
            interval: p.interval,
            measured_entries: stats.committed_total,
            total_entries: total,
            ipc_mean: stats.ipc(),
            ipc_ci95: 0.0,
            est_cycles: stats.cycles,
        };
        return Ok((stats, summary));
    }
    let n = samples.len() as f64;
    let cpi_mean = samples.iter().sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|x| (x - cpi_mean) * (x - cpi_mean))
        .sum::<f64>()
        / (n - 1.0);
    let cpi_ci = t95(samples.len() as u64 - 1) * (var / n).sqrt();
    // Report in the IPC domain: reciprocal point estimate, CI half-width
    // mapped by the delta method (d(1/x) = -dx/x²), then the bias allowance.
    let mean = 1.0 / cpi_mean;
    let ci = cpi_ci / (cpi_mean * cpi_mean) + CI_BIAS_FRAC * mean;
    let committed_exact = total - annulled_warm - agg.annulled;
    let est_cycles = (committed_exact as f64 * cpi_mean).round() as u64;
    let summary = SampleSummary {
        windows: samples.len() as u64,
        detail: p.detail,
        warmup: p.warmup,
        interval: p.interval,
        measured_entries,
        total_entries: total,
        ipc_mean: mean,
        ipc_ci95: ci,
        est_cycles,
    };
    Ok((agg, summary))
}

/// [`simulate_sampled_observed_in`] without an observer.
pub fn simulate_sampled_in(
    ctx: &mut SimContext,
    comp: &CompiledProgram,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
    params: SampleParams,
) -> Result<(SimStats, SampleSummary), SimError> {
    simulate_sampled_observed_in(ctx, comp, trace, scheme, cfg, params, &mut ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CycleAccounting;
    use crate::pipeline::{simulate_trace, simulate_trace_observed};
    use guardspec_interp::trace::trace_program;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    fn count_loop(n: i64) -> Program {
        let mut fb = FuncBuilder::new("loop");
        fb.block("e");
        fb.li(r(1), n);
        fb.block("body");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "body");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    fn mixed_prog() -> Program {
        // Loads/stores, guards with annulment, an alternating branch, and
        // a likely branch pattern via cross-block control flow.
        let mut fb = FuncBuilder::new("mix");
        fb.block("e");
        fb.li(r(1), 0);
        fb.li(r(5), 120);
        fb.block("loop");
        fb.andi(r(2), r(1), 1);
        fb.setpi(SetCond::Gt, p(1), r(2), 0);
        fb.cmov(r(3), r(1), p(1), true);
        fb.sw(r(3), r(0), 7);
        fb.lw(r(4), r(0), 7);
        fb.beq(r(2), r(0), "skip");
        fb.block("odd");
        fb.addi(r(3), r(3), 1);
        fb.block("skip");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(5), "loop");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    fn assert_engines_identical(prog: &Program) {
        let (layout, trace, _res) = trace_program(prog).expect("runs");
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(prog);
        let mut ctx = SimContext::new(&cfg);
        for scheme in Scheme::ALL {
            let interp = simulate_trace(prog, &layout, &trace, scheme, &cfg).expect("interp");
            let compiled = simulate_compiled_trace_in(&mut ctx, &comp, &trace, scheme, &cfg)
                .expect("compiled");
            assert_eq!(interp, compiled, "scheme {scheme:?}: stats diverge");

            let mut ai = CycleAccounting::new();
            let mut ac = CycleAccounting::new();
            let si = simulate_trace_observed(prog, &layout, &trace, scheme, &cfg, &mut ai).unwrap();
            let sc =
                simulate_compiled_trace_observed_in(&mut ctx, &comp, &trace, scheme, &cfg, &mut ac)
                    .unwrap();
            assert_eq!(si, sc, "scheme {scheme:?}: observed stats diverge");
            assert_eq!(ai, ac, "scheme {scheme:?}: cycle accounting diverges");
            ac.check(&sc);
        }
    }

    #[test]
    fn compiled_matches_interpreted_on_loop() {
        assert_engines_identical(&count_loop(500));
    }

    #[test]
    fn compiled_matches_interpreted_on_mixed_program() {
        assert_engines_identical(&mixed_prog());
    }

    #[test]
    fn compiled_shared_matches_slice() {
        let prog = mixed_prog();
        let (_layout, trace, _res) = trace_program(&prog).expect("runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(&prog);
        let mut ctx = SimContext::new(&cfg);
        let a = simulate_compiled_trace_in(&mut ctx, &comp, &trace, Scheme::TwoBit, &cfg).unwrap();
        let b =
            simulate_compiled_shared_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn descriptors_group_into_blocks() {
        let prog = mixed_prog();
        let comp = CompiledProgram::build(&prog);
        assert_eq!(comp.num_uops(), comp.layout().num_sites());
        assert!(comp.num_blocks() >= 4);
        let spanned: u32 = (0..comp.num_blocks() as u32)
            .map(|b| comp.block_span(b).1)
            .sum();
        assert_eq!(spanned as usize, comp.num_uops());
        for id in 0..comp.num_uops() as u32 {
            let (first, len) = comp.block_span(comp.block_of(id));
            assert!(first <= id && id < first + len);
        }
    }

    #[test]
    fn sampled_ci_covers_exact_ipc_on_loop() {
        let prog = count_loop(4000);
        let (_layout, trace, _res) = trace_program(&prog).expect("runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(&prog);
        let mut ctx = SimContext::new(&cfg);
        let exact =
            simulate_compiled_shared_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg).unwrap();
        let params = SampleParams {
            detail: 64,
            warmup: 32,
            interval: 512,
        };
        let (_stats, summary) =
            simulate_sampled_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg, params).unwrap();
        assert!(summary.windows >= 2, "windows {}", summary.windows);
        assert!(summary.ipc_ci95 > 0.0);
        assert!(
            (summary.ipc_mean - exact.ipc()).abs() <= summary.ipc_ci95,
            "exact {} not in {} ± {}",
            exact.ipc(),
            summary.ipc_mean,
            summary.ipc_ci95
        );
        assert!(summary.est_cycles > 0);
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let prog = mixed_prog();
        let (_layout, trace, _res) = trace_program(&prog).expect("runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(&prog);
        let params = SampleParams {
            detail: 32,
            warmup: 16,
            interval: 128,
        };
        let mut ctx = SimContext::new(&cfg);
        let (s1, sum1) =
            simulate_sampled_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg, params).unwrap();
        let (s2, sum2) =
            simulate_sampled_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg, params).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(sum1, sum2);
    }

    #[test]
    fn short_trace_falls_back_to_exact() {
        let prog = count_loop(10);
        let (_layout, trace, _res) = trace_program(&prog).expect("runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(&prog);
        let mut ctx = SimContext::new(&cfg);
        let exact =
            simulate_compiled_shared_in(&mut ctx, &comp, &shared, Scheme::TwoBit, &cfg).unwrap();
        let (stats, summary) = simulate_sampled_in(
            &mut ctx,
            &comp,
            &shared,
            Scheme::TwoBit,
            &cfg,
            SampleParams::default(),
        )
        .unwrap();
        assert_eq!(stats, exact);
        assert_eq!(summary.windows, 0);
        assert_eq!(summary.ipc_ci95, 0.0);
        assert_eq!(summary.est_cycles, exact.cycles);
    }

    #[test]
    fn sampled_observed_accounting_is_consistent() {
        let prog = mixed_prog();
        let (_layout, trace, _res) = trace_program(&prog).expect("runs");
        let shared = SharedTrace::from_entries(trace.iter().copied());
        let cfg = MachineConfig::r10000();
        let comp = CompiledProgram::build(&prog);
        let mut ctx = SimContext::new(&cfg);
        let mut acct = CycleAccounting::new();
        let params = SampleParams {
            detail: 32,
            warmup: 16,
            interval: 128,
        };
        let (stats, _summary) = simulate_sampled_observed_in(
            &mut ctx,
            &comp,
            &shared,
            Scheme::TwoBit,
            &cfg,
            params,
            &mut acct,
        )
        .unwrap();
        acct.check(&stats);
    }
}
