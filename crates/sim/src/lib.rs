//! # guardspec-sim
//!
//! A cycle-level, trace-driven simulator of a MIPS R10000-class out-of-order
//! superscalar — the stand-in for the Paratool simulator the paper used
//! (Shimura & Nishimoto, Fujitsu Labs TR, 1994 \[12\]).
//!
//! ## Machine model (Section 6 of the paper)
//!
//! * 4-wide in-order fetch/dispatch, 4-wide in-order commit, 32-entry
//!   active list (reorder buffer);
//! * reservation stations: 16-entry integer queue, 16-entry address queue,
//!   16-entry FP queue, plus a branch queue;
//! * functional units: two integer ALUs, a dedicated shifter, an
//!   address-calculation/load-store unit, a branch unit, and three FP pipes
//!   (adder, multiplier, divide/square-root);
//! * at most four unresolved conditional branches in flight (the R10000's
//!   four shadow register maps);
//! * 512-entry 2-bit branch history table, tagged BTB restricted to
//!   absolute-target branches; returns and register-relative jumps stall
//!   fetch until they resolve;
//! * separate 32 KB 2-way I- and D-caches, 32-byte lines, 6-cycle miss
//!   penalty; operation latencies per Table 2.
//!
//! ## Trace-driven methodology
//!
//! The functional interpreter ([`guardspec_interp`]) supplies the retired
//! instruction stream (correct path).  The pipeline fetches it, charging
//! branch-prediction costs at fetch and resolution time:
//!
//! * correctly-predicted taken branches end the fetch group (BTB hit) or
//!   cost one decode-redirect bubble (BTB miss / calls);
//! * branch-likelies are statically predicted taken with the target known
//!   at fetch — taken costs nothing, not-taken is a full misprediction;
//! * mispredictions and BTB-ineligible indirect transfers stall fetch until
//!   the branch resolves in the branch unit;
//! * wrong-path instructions are not injected into the window (their
//!   second-order pressure on the reservation stations is not modeled —
//!   documented substitution, see DESIGN.md).
//!
//! Annulled guarded instructions flow through the pipeline and consume
//! resources, but are excluded from IPC, matching Table 4's note
//! "instructions per cycle (excluding annulled)".

pub mod block;
pub mod cache;
pub mod config;
pub mod observe;
pub mod pipeline;
pub mod stats;

pub use block::{
    simulate_compiled_shared_in, simulate_compiled_shared_observed_in, simulate_compiled_trace_in,
    simulate_compiled_trace_observed_in, simulate_program_compiled,
    simulate_program_compiled_streamed_observed_in, simulate_sampled_in,
    simulate_sampled_observed_in, CompiledProgram, SampleParams, SampleSummary,
};
pub use cache::Cache;
pub use config::{Latencies, MachineConfig, QueueKind};
pub use observe::{CycleAccounting, CycleBucket, SimObserver, SiteCounters};
pub use pipeline::{
    prepare_program, simulate_program, simulate_program_fanout, simulate_program_observed,
    simulate_program_streamed, simulate_program_streamed_in, simulate_program_streamed_observed_in,
    simulate_shared_in, simulate_shared_observed_in, simulate_trace, simulate_trace_in,
    simulate_trace_logged, simulate_trace_observed, simulate_trace_observed_in, ChunkSource,
    CycleLog, CycleRecord, PreparedSim, SimContext, SimError, SliceSource, StreamSource,
    TraceSource,
};
pub use stats::SimStats;
