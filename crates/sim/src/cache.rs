//! Set-associative cache model with LRU replacement.

/// A set-associative cache tracking hit/miss only (no data).
#[derive(Clone, Debug)]
pub struct Cache {
    /// `sets × ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU order per set: lower = more recently used (per-way ranks).
    lru: Vec<u8>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// `total_bytes` / `line_bytes` / `ways` must all be powers of two with
    /// `total_bytes >= line_bytes * ways`.
    pub fn new(total_bytes: usize, line_bytes: usize, ways: usize) -> Cache {
        assert!(total_bytes.is_power_of_two() && line_bytes.is_power_of_two());
        assert!(ways >= 1 && total_bytes >= line_bytes * ways);
        let sets = total_bytes / (line_bytes * ways);
        Cache {
            tags: vec![u64::MAX; sets * ways],
            lru: (0..sets * ways).map(|i| (i % ways) as u8).collect(),
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Probe (and on miss, fill) the line containing `byte_addr`.
    /// Returns true on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line = byte_addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slot = (0..self.ways).find(|w| self.tags[base + w] == line);
        match slot {
            Some(w) => {
                self.touch(base, w);
                self.hits += 1;
                true
            }
            None => {
                // Evict the LRU way (highest rank).
                let victim = (0..self.ways)
                    .max_by_key(|w| self.lru[base + w])
                    .expect("ways >= 1");
                self.tags[base + victim] = line;
                self.touch(base, victim);
                self.misses += 1;
                false
            }
        }
    }

    fn touch(&mut self, base: usize, way: usize) {
        let old = self.lru[base + way];
        for w in 0..self.ways {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }

    /// Whether this cache has the geometry `(total_bytes, line_bytes, ways)`
    /// — used to decide between [`Cache::reset`] and reconstruction.
    pub fn has_shape(&self, total_bytes: usize, line_bytes: usize, ways: usize) -> bool {
        line_bytes.is_power_of_two()
            && self.ways == ways
            && self.line_shift == line_bytes.trailing_zeros()
            && self.sets.checked_mul(line_bytes * ways) == Some(total_bytes)
    }

    /// Invalidate every line and clear statistics without reallocating
    /// (simulator-state reuse across runs).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        for (i, r) in self.lru.iter_mut().enumerate() {
            *r = (i % self.ways) as u8;
        }
        self.hits = 0;
        self.misses = 0;
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_hits_within_line() {
        let mut c = Cache::new(1024, 32, 2);
        assert!(!c.access(0)); // cold miss
        for b in 1..32 {
            assert!(c.access(b), "byte {b} same line");
        }
        assert!(!c.access(32)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 1 set: total = line * ways.
        let mut c = Cache::new(64, 32, 2);
        assert!(!c.access(0)); // A
        assert!(!c.access(32)); // B
        assert!(c.access(0)); // A hit, B is LRU
        assert!(!c.access(64)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(32)); // B was evicted
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(256, 32, 1); // 8 lines direct-mapped
                                            // 16 lines round-robin: every access misses after the first pass.
        for pass in 0..3 {
            for line in 0..16u64 {
                let hit = c.access(line * 32 * 8); // all map to set 0
                if pass > 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(0);
        c.access(0);
        c.access(0);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
