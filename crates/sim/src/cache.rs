//! Set-associative cache model with LRU replacement.
//!
//! Ways are stored in recency order (`tags[base]` = MRU … `tags[base +
//! ways-1]` = LRU), so a hit is a short forward scan and replacement is a
//! rotate — no per-way rank bookkeeping.  A one-line memo short-circuits
//! the common repeat-access case (sequential fetch within a line) without
//! touching the set: re-probing the MRU line changes no cache state, so
//! the fast path is observationally identical to the full probe.

/// A set-associative cache tracking hit/miss only (no data).
#[derive(Clone, Debug)]
pub struct Cache {
    /// `sets × ways` tags in per-set recency order; `u64::MAX` = invalid.
    tags: Vec<u64>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// Line of the most recent access (`u64::MAX` = none): always resident
    /// and MRU in its set, so a repeat probe is a stateless hit.
    last_line: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// `total_bytes` / `line_bytes` / `ways` must all be powers of two with
    /// `total_bytes >= line_bytes * ways`.
    pub fn new(total_bytes: usize, line_bytes: usize, ways: usize) -> Cache {
        assert!(total_bytes.is_power_of_two() && line_bytes.is_power_of_two());
        assert!(ways >= 1 && total_bytes >= line_bytes * ways);
        let sets = total_bytes / (line_bytes * ways);
        Cache {
            tags: vec![u64::MAX; sets * ways],
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            last_line: u64::MAX,
            hits: 0,
            misses: 0,
        }
    }

    /// Probe (and on miss, fill) the line containing `byte_addr`.
    /// Returns true on hit.
    #[inline]
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line = byte_addr >> self.line_shift;
        if line == self.last_line {
            self.hits += 1;
            return true;
        }
        self.access_set(line)
    }

    fn access_set(&mut self, line: u64) -> bool {
        self.last_line = line;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let set = &mut self.tags[base..base + self.ways];
        match set.iter().position(|&t| t == line) {
            Some(w) => {
                // Move the hit way to MRU; older ways shift toward LRU.
                set[..=w].rotate_right(1);
                set[0] = line;
                self.hits += 1;
                true
            }
            None => {
                // Evict the LRU way (the last slot) and fill at MRU.
                set.rotate_right(1);
                set[0] = line;
                self.misses += 1;
                false
            }
        }
    }

    /// Whether this cache has the geometry `(total_bytes, line_bytes, ways)`
    /// — used to decide between [`Cache::reset`] and reconstruction.
    pub fn has_shape(&self, total_bytes: usize, line_bytes: usize, ways: usize) -> bool {
        line_bytes.is_power_of_two()
            && self.ways == ways
            && self.line_shift == line_bytes.trailing_zeros()
            && self.sets.checked_mul(line_bytes * ways) == Some(total_bytes)
    }

    /// Invalidate every line and clear statistics without reallocating
    /// (simulator-state reuse across runs).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.last_line = u64::MAX;
        self.hits = 0;
        self.misses = 0;
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_hits_within_line() {
        let mut c = Cache::new(1024, 32, 2);
        assert!(!c.access(0)); // cold miss
        for b in 1..32 {
            assert!(c.access(b), "byte {b} same line");
        }
        assert!(!c.access(32)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 1 set: total = line * ways.
        let mut c = Cache::new(64, 32, 2);
        assert!(!c.access(0)); // A
        assert!(!c.access(32)); // B
        assert!(c.access(0)); // A hit, B is LRU
        assert!(!c.access(64)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(32)); // B was evicted
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(256, 32, 1); // 8 lines direct-mapped
                                            // 16 lines round-robin: every access misses after the first pass.
        for pass in 0..3 {
            for line in 0..16u64 {
                let hit = c.access(line * 32 * 8); // all map to set 0
                if pass > 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(0);
        c.access(0);
        c.access(0);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn memo_fast_path_matches_full_probe_across_sets() {
        // Alternate lines in different sets: the memo must never report a
        // hit for a line the set-level LRU state would miss.
        let mut c = Cache::new(128, 32, 2); // 2 sets, 2 ways
        let mut reference = Cache::new(128, 32, 2);
        reference.last_line = u64::MAX; // keep the reference on the slow path
        let pattern = [0u64, 64, 0, 128, 192, 64, 0, 256, 64, 192, 0, 0];
        for &a in &pattern {
            let got = c.access(a);
            reference.last_line = u64::MAX;
            let want = reference.access(a);
            assert_eq!(got, want, "addr {a}");
        }
        assert_eq!(c.hits(), reference.hits());
        assert_eq!(c.misses(), reference.misses());
    }
}
