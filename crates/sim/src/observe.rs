//! Cycle accounting and per-branch-site attribution.
//!
//! The pipeline accepts a [`SimObserver`] and, when one is enabled,
//! classifies **every** simulated cycle into exactly one [`CycleBucket`]
//! (the classification is a priority chain, so the buckets are exhaustive
//! and mutually exclusive by construction) and reports per-site branch
//! events.  [`CycleAccounting`] is the standard observer: it accumulates
//! the bucket histogram plus per-site counters keyed by the dense
//! [`StaticLayout`](guardspec_interp::StaticLayout) site id.
//!
//! Invariants (checked by [`CycleAccounting::check`]):
//!
//! * bucket sums equal `stats.cycles` exactly;
//! * per-site `recovery_cycles` sum to the `MispredictRecovery` bucket
//!   (every recovery cycle is charged to the branch that caused it);
//! * per-site `mispredicts`/`likely_mispredicts` sum to the corresponding
//!   `SimStats` counters.
//!
//! The unit observer `()` has `ENABLED = false`; the pipeline guards all
//! accounting work behind that associated constant, so the default
//! entry points compile to exactly the pre-observability hot loop.

use crate::stats::SimStats;

/// Where one cycle went.  Exactly one bucket per cycle, chosen by a
/// priority chain (listed highest first):
///
/// 1. at least one instruction committed → [`UsefulCommit`];
/// 2. trace exhausted (pipeline draining) → [`Drain`];
/// 3. fetch blocked on an unresolved mispredicted branch, or inside the
///    post-resolution recovery bubble → [`MispredictRecovery`]
///    (an unresolved *indirect* transfer classifies as [`FetchStall`]);
/// 4. fetch waiting out an I-cache miss → [`IcacheMiss`];
/// 5. fetch stopped by a full reorder buffer, reservation station, or
///    shadow-map limit → [`IssueWindowFull`];
/// 6. window head executing a memory op that missed the D-cache →
///    [`DcacheMiss`];
/// 7. redirect bubbles (BTB miss, call) and frontend fill →
///    [`FetchStall`];
/// 8. otherwise the head is waiting on or occupying a functional unit →
///    [`FuContention`].
///
/// [`UsefulCommit`]: CycleBucket::UsefulCommit
/// [`Drain`]: CycleBucket::Drain
/// [`MispredictRecovery`]: CycleBucket::MispredictRecovery
/// [`FetchStall`]: CycleBucket::FetchStall
/// [`IcacheMiss`]: CycleBucket::IcacheMiss
/// [`IssueWindowFull`]: CycleBucket::IssueWindowFull
/// [`DcacheMiss`]: CycleBucket::DcacheMiss
/// [`FuContention`]: CycleBucket::FuContention
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleBucket {
    UsefulCommit,
    MispredictRecovery,
    FetchStall,
    IssueWindowFull,
    FuContention,
    IcacheMiss,
    DcacheMiss,
    Drain,
}

impl CycleBucket {
    pub const COUNT: usize = 8;

    pub const ALL: [CycleBucket; CycleBucket::COUNT] = [
        CycleBucket::UsefulCommit,
        CycleBucket::MispredictRecovery,
        CycleBucket::FetchStall,
        CycleBucket::IssueWindowFull,
        CycleBucket::FuContention,
        CycleBucket::IcacheMiss,
        CycleBucket::DcacheMiss,
        CycleBucket::Drain,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as the JSON key in artifacts).
    pub fn name(self) -> &'static str {
        match self {
            CycleBucket::UsefulCommit => "useful_commit",
            CycleBucket::MispredictRecovery => "mispredict_recovery",
            CycleBucket::FetchStall => "fetch_stall",
            CycleBucket::IssueWindowFull => "issue_window_full",
            CycleBucket::FuContention => "fu_contention",
            CycleBucket::IcacheMiss => "icache_miss",
            CycleBucket::DcacheMiss => "dcache_miss",
            CycleBucket::Drain => "drain",
        }
    }

    /// The bucket with [`name`](CycleBucket::name) `s`, if any.
    pub fn from_name(s: &str) -> Option<CycleBucket> {
        CycleBucket::ALL.into_iter().find(|b| b.name() == s)
    }
}

/// Pipeline instrumentation hooks.  All methods default to no-ops; the
/// pipeline consults `ENABLED` (an associated *constant*, so the disabled
/// case folds away at compile time) before doing any classification work.
pub trait SimObserver {
    /// Whether the pipeline should classify cycles and report events at
    /// all.  When `false` every hook call site is dead code.
    const ENABLED: bool = true;

    /// A simulation is starting over a program with `num_sites` static
    /// instruction sites.
    fn on_run_start(&mut self, num_sites: usize) {
        let _ = num_sites;
    }

    /// A non-annulled conditional branch at `site` was fetched.
    fn on_branch(&mut self, site: u32) {
        let _ = site;
    }

    /// The branch at `site` mispredicted (`likely` when it was a
    /// branch-likely static misprediction).
    fn on_mispredict(&mut self, site: u32, likely: bool) {
        let _ = (site, likely);
    }

    /// One cycle elapsed and was attributed to `bucket`; for
    /// mispredict-recovery cycles `site` names the responsible branch.
    fn on_cycle(&mut self, bucket: CycleBucket, site: Option<u32>) {
        let _ = (bucket, site);
    }
}

/// The disabled observer: zero overhead, used by every historical entry
/// point.
impl SimObserver for () {
    const ENABLED: bool = false;
}

/// Per-branch-site counters (dense by site id).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Non-annulled executions of the (conditional) branch.
    pub executions: u64,
    /// Dynamic mispredictions (includes likely mispredictions).
    pub mispredicts: u64,
    /// Mispredictions of branch-likely sites (not-taken likelies).
    pub likely_mispredicts: u64,
    /// Cycles of fetch stall + recovery bubble charged to this site —
    /// the squashed-instruction cost of its mispredictions.
    pub recovery_cycles: u64,
}

impl SiteCounters {
    pub fn is_zero(&self) -> bool {
        *self == SiteCounters::default()
    }
}

/// The standard observer: a cycle-bucket histogram plus dense per-site
/// counters.  Reusable across runs ([`SimObserver::on_run_start`] resets).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    buckets: [u64; CycleBucket::COUNT],
    sites: Vec<SiteCounters>,
}

impl CycleAccounting {
    pub fn new() -> CycleAccounting {
        CycleAccounting::default()
    }

    /// Rebuild from decoded parts (the cache codec path).
    pub fn from_parts(
        buckets: [u64; CycleBucket::COUNT],
        num_sites: usize,
        nonzero: impl IntoIterator<Item = (u32, SiteCounters)>,
    ) -> CycleAccounting {
        let mut sites = vec![SiteCounters::default(); num_sites];
        for (id, c) in nonzero {
            sites[id as usize] = c;
        }
        CycleAccounting { buckets, sites }
    }

    pub fn bucket(&self, b: CycleBucket) -> u64 {
        self.buckets[b.index()]
    }

    pub fn buckets(&self) -> &[u64; CycleBucket::COUNT] {
        &self.buckets
    }

    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Number of static sites (the dense counter table's length).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    pub fn site(&self, id: u32) -> SiteCounters {
        self.sites.get(id as usize).copied().unwrap_or_default()
    }

    /// Sites with any nonzero counter, in site-id order.
    pub fn nonzero_sites(&self) -> impl Iterator<Item = (u32, SiteCounters)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| (i as u32, *c))
    }

    /// The `k` sites with the highest squashed-instruction cost
    /// (ties broken by site id, so the order is deterministic).
    pub fn top_sites(&self, k: usize) -> Vec<(u32, SiteCounters)> {
        let mut v: Vec<(u32, SiteCounters)> = self.nonzero_sites().collect();
        v.sort_by(|a, b| {
            b.1.recovery_cycles
                .cmp(&a.1.recovery_cycles)
                .then(b.1.mispredicts.cmp(&a.1.mispredicts))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Panic unless the accounting is consistent with `stats`: bucket sums
    /// equal `cycles` exactly, per-site recovery cycles sum to the
    /// mispredict-recovery bucket, and per-site mispredict counters sum to
    /// the aggregate predictor counters.
    pub fn check(&self, stats: &SimStats) {
        assert_eq!(
            self.bucket_sum(),
            stats.cycles,
            "cycle buckets {:?} sum to {} but the run took {} cycles",
            self.buckets,
            self.bucket_sum(),
            stats.cycles
        );
        let recovery: u64 = self.sites.iter().map(|c| c.recovery_cycles).sum();
        assert_eq!(
            recovery,
            self.bucket(CycleBucket::MispredictRecovery),
            "per-site recovery cycles must sum to the mispredict-recovery bucket"
        );
        let misp: u64 = self.sites.iter().map(|c| c.mispredicts).sum();
        assert_eq!(
            misp, stats.mispredicts,
            "per-site mispredicts must sum to stats.mispredicts"
        );
        let lmisp: u64 = self.sites.iter().map(|c| c.likely_mispredicts).sum();
        assert_eq!(
            lmisp, stats.likely_mispredicts,
            "per-site likely mispredicts must sum to stats.likely_mispredicts"
        );
    }
}

impl SimObserver for CycleAccounting {
    fn on_run_start(&mut self, num_sites: usize) {
        self.buckets = [0; CycleBucket::COUNT];
        self.sites.clear();
        self.sites.resize(num_sites, SiteCounters::default());
    }

    fn on_branch(&mut self, site: u32) {
        self.sites[site as usize].executions += 1;
    }

    fn on_mispredict(&mut self, site: u32, likely: bool) {
        let c = &mut self.sites[site as usize];
        c.mispredicts += 1;
        if likely {
            c.likely_mispredicts += 1;
        }
    }

    fn on_cycle(&mut self, bucket: CycleBucket, site: Option<u32>) {
        self.buckets[bucket.index()] += 1;
        if bucket == CycleBucket::MispredictRecovery {
            if let Some(s) = site {
                self.sites[s as usize].recovery_cycles += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_names_roundtrip() {
        for b in CycleBucket::ALL {
            assert_eq!(CycleBucket::from_name(b.name()), Some(b));
            assert_eq!(CycleBucket::ALL[b.index()], b);
        }
        assert_eq!(CycleBucket::from_name("bogus"), None);
    }

    #[test]
    fn top_sites_orders_by_recovery_then_id() {
        let mk = |r, m| SiteCounters {
            executions: 1,
            mispredicts: m,
            likely_mispredicts: 0,
            recovery_cycles: r,
        };
        let acc = CycleAccounting::from_parts(
            [0; CycleBucket::COUNT],
            4,
            vec![(0, mk(5, 1)), (1, mk(9, 1)), (2, mk(5, 1))],
        );
        let top = acc.top_sites(8);
        assert_eq!(
            top.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![1, 0, 2]
        );
        assert_eq!(acc.top_sites(1).len(), 1);
    }

    #[test]
    fn from_parts_roundtrips_nonzero_sites() {
        let c = SiteCounters {
            executions: 10,
            mispredicts: 2,
            likely_mispredicts: 1,
            recovery_cycles: 16,
        };
        let acc = CycleAccounting::from_parts([1, 2, 3, 4, 5, 6, 7, 8], 6, vec![(4, c)]);
        assert_eq!(acc.bucket_sum(), 36);
        assert_eq!(acc.site(4), c);
        assert!(acc.site(3).is_zero());
        assert_eq!(acc.nonzero_sites().collect::<Vec<_>>(), vec![(4, c)]);
    }
}
