//! Simulation statistics — everything Tables 3 and 4 report.

use crate::config::{class_idx, QueueKind};
use guardspec_ir::FuClass;

/// Counters accumulated over one simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles to drain the trace ("the final commit cycle").
    pub cycles: u64,
    /// Committed instructions excluding annulled guarded ones (IPC basis).
    pub committed: u64,
    /// Committed instructions including annulled.
    pub committed_total: u64,
    /// Annulled guarded instructions.
    pub annulled: u64,

    /// Cycles each reservation station was at capacity, by `QueueKind::index`.
    pub queue_full_cycles: [u64; 4],
    /// Sum of per-cycle queue occupancy (for average occupancy).
    pub queue_occupancy_sum: [u64; 4],
    /// Cycles every functional unit of a class was issued/busy at once,
    /// by `FuClass` dense index ("% times <unit> is full").
    pub fu_full_cycles: [u64; 8],
    /// Total issues per class.
    pub fu_issues: [u64; 8],

    /// Conditional branches seen at fetch.
    pub cond_branches: u64,
    /// Conditional branches whose direction was mispredicted.
    pub mispredicts: u64,
    /// Branch-likely instructions fetched.
    pub likely_branches: u64,
    /// Branch-likely instructions that were (incorrectly) not taken.
    pub likely_mispredicts: u64,
    /// Indirect transfers (returns, register-relative jumps) that stalled
    /// fetch until resolution.
    pub indirect_stalls: u64,
    /// BTB statistics.
    pub btb_hits: u64,
    pub btb_misses: u64,

    /// Cache statistics.
    pub icache_hits: u64,
    pub icache_misses: u64,
    pub dcache_hits: u64,
    pub dcache_misses: u64,

    /// Cycles fetch was stalled waiting on an unresolved branch.
    pub fetch_stall_cycles: u64,
}

impl SimStats {
    /// Instructions per cycle, excluding annulled (Table 4 footnote 7).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// "% times `<queue>` reservation unit is full (ratio to the final commit
    /// cycle)" — Table 3.
    pub fn rs_full_pct(&self, q: QueueKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.queue_full_cycles[q.index()] as f64 / self.cycles as f64
        }
    }

    /// Average occupancy of a reservation station.
    pub fn rs_avg_occupancy(&self, q: QueueKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.queue_occupancy_sum[q.index()] as f64 / self.cycles as f64
        }
    }

    /// "% times `<unit>` is full (ratio to the final commit cycle)" — Table 4.
    pub fn fu_full_pct(&self, c: FuClass) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.fu_full_cycles[class_idx(c)] as f64 / self.cycles as f64
        }
    }

    /// Fraction of conditional branches predicted correctly.
    pub fn branch_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    pub fn icache_hit_rate(&self) -> f64 {
        ratio(self.icache_hits, self.icache_misses)
    }

    pub fn dcache_hit_rate(&self) -> f64 {
        ratio(self.dcache_hits, self.dcache_misses)
    }

    pub fn btb_hit_rate(&self) -> f64 {
        ratio(self.btb_hits, self.btb_misses)
    }

    /// Every counter as a stable `(name, value)` list — the serialization
    /// hook used by `guardspec-harness` to persist stats in its
    /// content-addressed cache.  Indexed fields use `name[i]` names.
    pub fn field_list(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("cycles".to_string(), self.cycles),
            ("committed".to_string(), self.committed),
            ("committed_total".to_string(), self.committed_total),
            ("annulled".to_string(), self.annulled),
        ];
        for (i, v) in self.queue_full_cycles.iter().enumerate() {
            out.push((format!("queue_full_cycles[{i}]"), *v));
        }
        for (i, v) in self.queue_occupancy_sum.iter().enumerate() {
            out.push((format!("queue_occupancy_sum[{i}]"), *v));
        }
        for (i, v) in self.fu_full_cycles.iter().enumerate() {
            out.push((format!("fu_full_cycles[{i}]"), *v));
        }
        for (i, v) in self.fu_issues.iter().enumerate() {
            out.push((format!("fu_issues[{i}]"), *v));
        }
        out.extend([
            ("cond_branches".to_string(), self.cond_branches),
            ("mispredicts".to_string(), self.mispredicts),
            ("likely_branches".to_string(), self.likely_branches),
            ("likely_mispredicts".to_string(), self.likely_mispredicts),
            ("indirect_stalls".to_string(), self.indirect_stalls),
            ("btb_hits".to_string(), self.btb_hits),
            ("btb_misses".to_string(), self.btb_misses),
            ("icache_hits".to_string(), self.icache_hits),
            ("icache_misses".to_string(), self.icache_misses),
            ("dcache_hits".to_string(), self.dcache_hits),
            ("dcache_misses".to_string(), self.dcache_misses),
            ("fetch_stall_cycles".to_string(), self.fetch_stall_cycles),
        ]);
        out
    }

    /// Inverse of [`SimStats::field_list`]; returns `false` for an unknown
    /// field name (so deserializers can reject stale cache entries).
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        if let Some((base, rest)) = name.split_once('[') {
            let Some(i) = rest.strip_suffix(']').and_then(|s| s.parse::<usize>().ok()) else {
                return false;
            };
            let slot = match base {
                "queue_full_cycles" => self.queue_full_cycles.get_mut(i),
                "queue_occupancy_sum" => self.queue_occupancy_sum.get_mut(i),
                "fu_full_cycles" => self.fu_full_cycles.get_mut(i),
                "fu_issues" => self.fu_issues.get_mut(i),
                _ => None,
            };
            return match slot {
                Some(s) => {
                    *s = value;
                    true
                }
                None => false,
            };
        }
        let slot = match name {
            "cycles" => &mut self.cycles,
            "committed" => &mut self.committed,
            "committed_total" => &mut self.committed_total,
            "annulled" => &mut self.annulled,
            "cond_branches" => &mut self.cond_branches,
            "mispredicts" => &mut self.mispredicts,
            "likely_branches" => &mut self.likely_branches,
            "likely_mispredicts" => &mut self.likely_mispredicts,
            "indirect_stalls" => &mut self.indirect_stalls,
            "btb_hits" => &mut self.btb_hits,
            "btb_misses" => &mut self.btb_misses,
            "icache_hits" => &mut self.icache_hits,
            "icache_misses" => &mut self.icache_misses,
            "dcache_hits" => &mut self.dcache_hits,
            "dcache_misses" => &mut self.dcache_misses,
            "fetch_stall_cycles" => &mut self.fetch_stall_cycles,
            _ => return false,
        };
        *slot = value;
        true
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let t = hits + misses;
    if t == 0 {
        0.0
    } else {
        hits as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats {
            cycles: 1000,
            committed: 640,
            cond_branches: 200,
            mispredicts: 16,
            ..SimStats::default()
        };
        s.queue_full_cycles[QueueKind::Branch.index()] = 139;
        s.fu_full_cycles[class_idx(FuClass::Alu)] = 7;
        assert!((s.ipc() - 0.64).abs() < 1e-12);
        assert!((s.rs_full_pct(QueueKind::Branch) - 13.9).abs() < 1e-9);
        assert!((s.fu_full_pct(FuClass::Alu) - 0.7).abs() < 1e-9);
        assert!((s.branch_accuracy() - 0.92).abs() < 1e-12);
    }

    #[test]
    fn field_list_roundtrips() {
        let mut s = SimStats {
            cycles: 9,
            dcache_misses: 3,
            ..SimStats::default()
        };
        s.queue_full_cycles[2] = 4;
        s.fu_issues[7] = 11;
        let mut back = SimStats::default();
        for (name, v) in s.field_list() {
            assert!(back.set_field(&name, v), "unknown field {name}");
        }
        assert_eq!(back, s);
        assert!(!back.set_field("no_such_field", 1));
        assert!(!back.set_field("fu_issues[99]", 1));
    }

    #[test]
    fn zero_cycles_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rs_full_pct(QueueKind::Integer), 0.0);
        assert_eq!(s.fu_full_pct(FuClass::Shift), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.icache_hit_rate(), 0.0);
    }
}
