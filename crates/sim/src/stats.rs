//! Simulation statistics — everything Tables 3 and 4 report.

use crate::config::{class_idx, QueueKind};
use guardspec_ir::FuClass;

/// Counters accumulated over one simulation.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Total cycles to drain the trace ("the final commit cycle").
    pub cycles: u64,
    /// Committed instructions excluding annulled guarded ones (IPC basis).
    pub committed: u64,
    /// Committed instructions including annulled.
    pub committed_total: u64,
    /// Annulled guarded instructions.
    pub annulled: u64,

    /// Cycles each reservation station was at capacity, by `QueueKind::index`.
    pub queue_full_cycles: [u64; 4],
    /// Sum of per-cycle queue occupancy (for average occupancy).
    pub queue_occupancy_sum: [u64; 4],
    /// Cycles every functional unit of a class was issued/busy at once,
    /// by `FuClass` dense index ("% times <unit> is full").
    pub fu_full_cycles: [u64; 8],
    /// Total issues per class.
    pub fu_issues: [u64; 8],

    /// Conditional branches seen at fetch.
    pub cond_branches: u64,
    /// Conditional branches whose direction was mispredicted.
    pub mispredicts: u64,
    /// Branch-likely instructions fetched.
    pub likely_branches: u64,
    /// Branch-likely instructions that were (incorrectly) not taken.
    pub likely_mispredicts: u64,
    /// Indirect transfers (returns, register-relative jumps) that stalled
    /// fetch until resolution.
    pub indirect_stalls: u64,
    /// BTB statistics.
    pub btb_hits: u64,
    pub btb_misses: u64,

    /// Cache statistics.
    pub icache_hits: u64,
    pub icache_misses: u64,
    pub dcache_hits: u64,
    pub dcache_misses: u64,

    /// Cycles fetch was stalled waiting on an unresolved branch.
    pub fetch_stall_cycles: u64,
}

impl SimStats {
    /// Instructions per cycle, excluding annulled (Table 4 footnote 7).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// "% times `<queue>` reservation unit is full (ratio to the final commit
    /// cycle)" — Table 3.
    pub fn rs_full_pct(&self, q: QueueKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.queue_full_cycles[q.index()] as f64 / self.cycles as f64
        }
    }

    /// Average occupancy of a reservation station.
    pub fn rs_avg_occupancy(&self, q: QueueKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.queue_occupancy_sum[q.index()] as f64 / self.cycles as f64
        }
    }

    /// "% times `<unit>` is full (ratio to the final commit cycle)" — Table 4.
    pub fn fu_full_pct(&self, c: FuClass) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.fu_full_cycles[class_idx(c)] as f64 / self.cycles as f64
        }
    }

    /// Fraction of conditional branches predicted correctly.
    pub fn branch_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    pub fn icache_hit_rate(&self) -> f64 {
        ratio(self.icache_hits, self.icache_misses)
    }

    pub fn dcache_hit_rate(&self) -> f64 {
        ratio(self.dcache_hits, self.dcache_misses)
    }

    pub fn btb_hit_rate(&self) -> f64 {
        ratio(self.btb_hits, self.btb_misses)
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let t = hits + misses;
    if t == 0 {
        0.0
    } else {
        hits as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats::default();
        s.cycles = 1000;
        s.committed = 640;
        s.queue_full_cycles[QueueKind::Branch.index()] = 139;
        s.fu_full_cycles[class_idx(FuClass::Alu)] = 7;
        s.cond_branches = 200;
        s.mispredicts = 16;
        assert!((s.ipc() - 0.64).abs() < 1e-12);
        assert!((s.rs_full_pct(QueueKind::Branch) - 13.9).abs() < 1e-9);
        assert!((s.fu_full_pct(FuClass::Alu) - 0.7).abs() < 1e-9);
        assert!((s.branch_accuracy() - 0.92).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rs_full_pct(QueueKind::Integer), 0.0);
        assert_eq!(s.fu_full_pct(FuClass::Shift), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.icache_hit_rate(), 0.0);
    }
}
