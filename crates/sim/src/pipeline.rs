//! The out-of-order pipeline: fetch → dispatch → issue → execute → commit.

use crate::cache::Cache;
use crate::config::{class_idx, MachineConfig, QueueKind};
use crate::observe::{CycleBucket, SimObserver};
use crate::stats::SimStats;
use guardspec_interp::stream::{StreamObserver, TraceReader};
use guardspec_interp::{SharedTrace, StaticLayout, TraceEntry};
use guardspec_ir::{FuClass, Opcode, Program, Reg};
use guardspec_predict::{BranchKind, Btb, Scheme, TwoBitTable};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Maximum source operands per instruction (two register operands plus the
/// guard predicate), so dependence lists fit inline without heap traffic.
pub(crate) const MAX_SRCS: usize = 3;

/// Simulation failure (indicates a model bug or absurd input, not a
/// program error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline failed to drain within the cycle budget.
    CycleBudgetExceeded { cycles: u64, retired: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleBudgetExceeded { cycles, retired } => {
                write!(
                    f,
                    "pipeline did not drain: {cycles} cycles, {retired} committed"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Static per-site information the pipeline needs, precomputed once.
struct SiteInfo {
    class: FuClass,
    queue: QueueKind,
    /// Dense register indices read (including guard predicate); the dense
    /// register space (144 names) fits in a `u8`.
    uses: [u8; MAX_SRCS],
    nuses: u8,
    /// Dense register index written.
    def: Option<u8>,
    kind: Option<BranchKind>,
    /// PC of the taken-target block's first instruction (direct branches
    /// and jumps only).
    target_pc: Option<u64>,
}

impl SiteInfo {
    fn uses(&self) -> &[u8] {
        &self.uses[..self.nuses as usize]
    }
}

fn build_site_infos(prog: &Program, layout: &StaticLayout) -> Vec<SiteInfo> {
    debug_assert!(Reg::DENSE_COUNT <= u8::MAX as usize + 1);
    let mut infos = Vec::with_capacity(layout.num_sites());
    for id in 0..layout.num_sites() as u32 {
        let site = layout.site(id);
        let insn = prog.insn(site);
        let target_pc = match &insn.op {
            Opcode::Branch { target, .. } | Opcode::Jump { target } => {
                Some(layout.pc(layout.block_start(site.func, *target)))
            }
            _ => None,
        };
        let mut uses = [0u8; MAX_SRCS];
        let mut nuses = 0u8;
        for r in insn.uses() {
            let r: Reg = r;
            uses[nuses as usize] = r.dense_index() as u8;
            nuses += 1;
        }
        infos.push(SiteInfo {
            class: insn.fu_class(),
            queue: QueueKind::for_class(insn.fu_class()),
            uses,
            nuses,
            def: insn
                .def()
                .filter(|d| !d.is_int_zero())
                .map(|d| d.dense_index() as u8),
            kind: BranchKind::of(insn),
            target_pc,
        });
    }
    infos
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EState {
    InQueue,
    Executing,
    Complete,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub(crate) seq: u64,
    pub(crate) id: u32,
    pub(crate) class: FuClass,
    pub(crate) queue: QueueKind,
    pub(crate) state: EState,
    pub(crate) disp_cycle: u64,
    pub(crate) finish: u64,
    /// Seqs of producing instructions (ready when committed or Complete),
    /// deduplicated at dispatch; inline since an op has at most
    /// [`MAX_SRCS`] sources.
    pub(crate) deps: [u64; MAX_SRCS],
    pub(crate) ndeps: u8,
    pub(crate) mem_addr: Option<u32>,
    /// This entry has fetch stalled until it resolves.
    pub(crate) blocks_fetch: bool,
    /// Conditional branch (counts against the shadow-map limit).
    pub(crate) is_cond: bool,
    pub(crate) annulled: bool,
    /// Missed the D-cache at issue (observer bookkeeping; only written
    /// when an observer is enabled).
    pub(crate) dmiss: bool,
    /// Next `InQueue` seq in the compiled engine's issue list
    /// (`u64::MAX` = end; unused by the interpreted path).
    pub(crate) nextq: u64,
}

impl Entry {
    pub(crate) fn deps(&self) -> &[u64] {
        &self.deps[..self.ndeps as usize]
    }

    /// Inert slot filler for the compiled engine's window ring — every
    /// live slot is rewritten by dispatch before it is read.
    pub(crate) fn filler() -> Entry {
        Entry {
            seq: 0,
            id: 0,
            class: FuClass::Nop,
            queue: QueueKind::Integer,
            state: EState::Complete,
            disp_cycle: 0,
            finish: 0,
            deps: [0; MAX_SRCS],
            ndeps: 0,
            mem_addr: None,
            blocks_fetch: false,
            is_cond: false,
            annulled: false,
            dmiss: false,
            nextq: u64::MAX,
        }
    }
}

/// One cycle's activity snapshot, for pipeline visualization.
#[derive(Clone, Copy, Debug, Default)]
pub struct CycleRecord {
    pub cycle: u64,
    /// Instructions fetched+dispatched this cycle.
    pub fetched: u8,
    /// Issues per functional-unit class (dense `FuClass` index).
    pub issued: [u8; 8],
    /// Instructions committed this cycle.
    pub committed: u8,
    /// Reservation-station occupancy at end of cycle (QueueKind index).
    pub queue_len: [u8; 4],
    /// Fetch was stalled this cycle (mispredict/indirect/bubble).
    pub fetch_stalled: bool,
}

/// A bounded per-cycle activity log.
#[derive(Clone, Debug, Default)]
pub struct CycleLog {
    pub records: Vec<CycleRecord>,
    pub limit: usize,
}

impl CycleLog {
    pub fn new(limit: usize) -> CycleLog {
        CycleLog {
            records: Vec::with_capacity(limit.min(1 << 16)),
            limit,
        }
    }

    fn push(&mut self, r: CycleRecord) {
        if self.records.len() < self.limit {
            self.records.push(r);
        }
    }
}

/// Where the pipeline's retired-instruction stream comes from: either a
/// fully materialized slice, or a bounded channel fed by a concurrently
/// running interpreter.
///
/// The read head is persistent: `cur()` returns the same entry until
/// `advance()` consumes it (fetch may stall on an entry for many cycles).
pub trait TraceSource {
    /// Entry at the read head, or `None` once the trace is exhausted.
    /// A streaming source blocks until the entry is available.
    fn cur(&mut self) -> Option<TraceEntry>;

    /// Consume the entry at the read head.
    fn advance(&mut self);

    /// Whether `now` is past the drain budget of 64 cycles per trace entry
    /// plus fixed slack.  A streaming source may block until enough of the
    /// trace has arrived to decide.
    fn budget_exceeded(&mut self, now: u64) -> bool;

    /// The last cycle the budget check is known to allow — a (possibly
    /// conservative) lower bound used by the compiled engine to cap its
    /// stall-cycle jumps so a budget overrun errors on exactly the same
    /// cycle as the per-cycle check would.
    fn budget_limit(&mut self) -> u64;
}

pub(crate) const BUDGET_SLACK: u64 = 100_000;
pub(crate) const BUDGET_PER_ENTRY: u64 = 64;

/// A fully materialized trace.
pub struct SliceSource<'a> {
    trace: &'a [TraceEntry],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    pub fn new(trace: &'a [TraceEntry]) -> SliceSource<'a> {
        SliceSource { trace, pos: 0 }
    }
}

impl TraceSource for SliceSource<'_> {
    fn cur(&mut self) -> Option<TraceEntry> {
        self.trace.get(self.pos).copied()
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn budget_exceeded(&mut self, now: u64) -> bool {
        now > BUDGET_PER_ENTRY * self.trace.len() as u64 + BUDGET_SLACK
    }

    fn budget_limit(&mut self) -> u64 {
        BUDGET_PER_ENTRY * self.trace.len() as u64 + BUDGET_SLACK
    }
}

/// A trace arriving incrementally over a [`TraceReader`].
///
/// Chunks pulled ahead of the read head (by the budget check) are parked in
/// `pending`, so pulling never drops entries; consumed chunk buffers are
/// recycled back to the producer.
pub struct StreamSource {
    reader: TraceReader,
    pending: VecDeque<Arc<Vec<TraceEntry>>>,
    /// Index into `pending.front()`.
    idx: usize,
    /// Entries received so far — a lower bound on the trace length, exact
    /// once `done`.
    received: u64,
    done: bool,
}

impl StreamSource {
    pub fn new(reader: TraceReader) -> StreamSource {
        StreamSource {
            reader,
            pending: VecDeque::new(),
            idx: 0,
            received: 0,
            done: false,
        }
    }

    /// Blocking-receive one more chunk; false once the channel is closed.
    fn pull(&mut self) -> bool {
        match self.reader.recv() {
            Some(chunk) => {
                self.received += chunk.len() as u64;
                self.pending.push_back(chunk);
                true
            }
            None => {
                self.done = true;
                false
            }
        }
    }
}

impl TraceSource for StreamSource {
    fn cur(&mut self) -> Option<TraceEntry> {
        loop {
            if let Some(front) = self.pending.front() {
                if self.idx < front.len() {
                    return Some(front[self.idx]);
                }
                let spent = self.pending.pop_front().unwrap();
                self.reader.recycle(spent);
                self.idx = 0;
                continue;
            }
            if self.done {
                return None;
            }
            self.pull();
        }
    }

    fn advance(&mut self) {
        self.idx += 1;
    }

    fn budget_exceeded(&mut self, now: u64) -> bool {
        // Same semantics as the slice check against the *full* trace
        // length.  While the producer is still running, `received` is only
        // a lower bound, so buffer further chunks (which also frees channel
        // capacity — the producer can never deadlock against this loop)
        // until the bound clears `now` or becomes exact.
        loop {
            if now <= BUDGET_PER_ENTRY * self.received + BUDGET_SLACK {
                return false;
            }
            if self.done {
                return true;
            }
            self.pull();
        }
    }

    fn budget_limit(&mut self) -> u64 {
        // `received` is a lower bound until `done`, so this limit is
        // conservative; the jump cap re-evaluates `budget_exceeded` (which
        // pulls) at the capped cycle, preserving exact error timing.
        BUDGET_PER_ENTRY * self.received + BUDGET_SLACK
    }
}

/// A per-consumer cursor over the refcounted chunks of a [`SharedTrace`].
///
/// Many simulator instances can hold a `ChunkSource` over the same trace
/// concurrently: each cursor is independent and the chunk data is shared,
/// never copied.  This is the fan-out consumption path — the trace is
/// materialized once (by the harness trace stage or decoded from the trace
/// cache) and every dependent sim cell reads it through one of these.
pub struct ChunkSource<'a> {
    /// Chunks not yet entered; the head moves into `cur` on rollover.
    chunks: &'a [Arc<Vec<TraceEntry>>],
    /// The chunk being consumed, borrowed as a plain slice so the hot
    /// `cur()` path costs the same as [`SliceSource`] — one bounds check,
    /// no `Arc`/`Vec` double indirection (it is called several times per
    /// simulated cycle).
    cur: &'a [TraceEntry],
    idx: usize,
    total: u64,
}

impl<'a> ChunkSource<'a> {
    pub fn new(trace: &'a SharedTrace) -> ChunkSource<'a> {
        ChunkSource {
            chunks: trace.chunks(),
            cur: &[],
            idx: 0,
            total: trace.len(),
        }
    }
}

impl TraceSource for ChunkSource<'_> {
    fn cur(&mut self) -> Option<TraceEntry> {
        loop {
            if let Some(&e) = self.cur.get(self.idx) {
                return Some(e);
            }
            let (head, rest) = self.chunks.split_first()?;
            self.cur = head;
            self.chunks = rest;
            self.idx = 0;
        }
    }

    fn advance(&mut self) {
        self.idx += 1;
    }

    fn budget_exceeded(&mut self, now: u64) -> bool {
        now > BUDGET_PER_ENTRY * self.total + BUDGET_SLACK
    }

    fn budget_limit(&mut self) -> u64 {
        BUDGET_PER_ENTRY * self.total + BUDGET_SLACK
    }
}

/// Reusable simulator state: the prediction structures, cache models, and
/// window scratch whose allocations survive across simulations.  Passing
/// one context to many [`simulate_trace_in`] calls skips per-run
/// construction; every run still starts from the architectural reset state.
pub struct SimContext {
    pub(crate) bht: TwoBitTable,
    pub(crate) btb: Btb,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) window: VecDeque<Entry>,
    /// Last dispatched writer (seq) per dense register index.
    pub(crate) reg_writer: Vec<Option<u64>>,
    /// The compiled engine's re-order window: a power-of-two ring indexed
    /// by `seq & (len-1)` (live seqs span `[head_seq, next_seq)`, at most
    /// `rob_size` wide).  Slots are rewritten by dispatch before any read,
    /// so stale contents never need clearing.  The interpreted path keeps
    /// using `window`.
    pub(crate) ring: Vec<Entry>,
    /// Completion timing wheel: `wheel[cycle & mask]` holds the seqs of
    /// in-flight executions finishing at `cycle`.  Sized by the compiled
    /// engine to cover every latency the config can produce; unused (and
    /// empty) on the interpreted path.
    pub(crate) wheel: Vec<Vec<u64>>,
    /// Overflow for completion events whose latency exceeds the wheel span
    /// (possible only under extreme custom configs) — `(finish, seq)`
    /// min-heap, normally empty.
    pub(crate) events: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
}

impl SimContext {
    pub fn new(cfg: &MachineConfig) -> SimContext {
        SimContext {
            bht: TwoBitTable::new(cfg.bht_entries),
            btb: Btb::new(cfg.btb_sets),
            icache: Cache::new(cfg.icache.0, cfg.icache.1, cfg.icache.2),
            dcache: Cache::new(cfg.dcache.0, cfg.dcache.1, cfg.dcache.2),
            window: VecDeque::with_capacity(cfg.rob_size),
            reg_writer: vec![None; Reg::DENSE_COUNT],
            ring: Vec::new(),
            wheel: Vec::new(),
            events: std::collections::BinaryHeap::new(),
        }
    }

    /// Reset to the architectural initial state for `cfg`, reallocating
    /// only the structures whose geometry changed.
    pub(crate) fn prepare(&mut self, cfg: &MachineConfig) {
        if self.bht.entries() == cfg.bht_entries {
            self.bht.reset();
        } else {
            self.bht = TwoBitTable::new(cfg.bht_entries);
        }
        if self.btb.sets() == cfg.btb_sets {
            self.btb.reset();
        } else {
            self.btb = Btb::new(cfg.btb_sets);
        }
        if self
            .icache
            .has_shape(cfg.icache.0, cfg.icache.1, cfg.icache.2)
        {
            self.icache.reset();
        } else {
            self.icache = Cache::new(cfg.icache.0, cfg.icache.1, cfg.icache.2);
        }
        if self
            .dcache
            .has_shape(cfg.dcache.0, cfg.dcache.1, cfg.dcache.2)
        {
            self.dcache.reset();
        } else {
            self.dcache = Cache::new(cfg.dcache.0, cfg.dcache.1, cfg.dcache.2);
        }
        self.window.clear();
        self.reg_writer.fill(None);
        for b in &mut self.wheel {
            b.clear();
        }
        self.events.clear();
    }
}

impl Default for SimContext {
    fn default() -> SimContext {
        SimContext::new(&MachineConfig::r10000())
    }
}

/// Why `fetch_resume` was last set (observer bookkeeping; only
/// maintained when an observer is enabled, and only read while
/// `now < fetch_resume`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallKind {
    None,
    /// Post-resolution recovery bubble of a blocking branch.
    Recovery,
    /// I-cache miss refill.
    Icache,
    /// Decode redirect (BTB miss or call bubble).
    Redirect,
}

/// The pipeline simulator.
struct Pipeline<'a, S: TraceSource, O: SimObserver> {
    cfg: &'a MachineConfig,
    infos: &'a [SiteInfo],
    layout: &'a StaticLayout,
    source: S,
    scheme: Scheme,

    now: u64,
    head_seq: u64,
    next_seq: u64,
    queue_len: [usize; 4],
    unresolved_branches: usize,
    fetch_resume: u64,
    /// Fetch is stalled until this entry (by seq) resolves.
    fetch_blocked_by: Option<u64>,
    fpdiv_free_at: u64,
    /// Window index of the oldest entry that may still be `InQueue`.
    /// States only advance (`InQueue` → `Executing` → `Complete`), so the
    /// wake-up scan can skip the already-issued prefix — the dominant cost
    /// when a full reorder buffer drains through narrow issue ports.
    issue_head: usize,

    ctx: &'a mut SimContext,
    stats: SimStats,
    log: Option<CycleLog>,
    cycle_rec: CycleRecord,

    obs: &'a mut O,
    /// Observer bookkeeping (dead stores when `O::ENABLED` is false):
    /// why the pending `fetch_resume` was set, the site that caused it,
    /// the site of the branch currently blocking fetch and whether that
    /// block is a misprediction (vs an indirect transfer), and whether
    /// fetch broke on window/queue/shadow capacity this cycle.
    resume_kind: StallKind,
    resume_site: u32,
    block_site: u32,
    block_misp: bool,
    capacity_stall: bool,
}

impl<'a, S: TraceSource, O: SimObserver> Pipeline<'a, S, O> {
    fn entry(&self, seq: u64) -> Option<&Entry> {
        if seq < self.head_seq {
            return None; // committed
        }
        self.ctx.window.get((seq - self.head_seq) as usize)
    }

    fn dep_ready(&self, seq: u64) -> bool {
        match self.entry(seq) {
            None => true, // committed long ago
            Some(e) => e.state == EState::Complete,
        }
    }

    /// Stage 1: mark finished executions complete; resolve fetch blocks.
    fn complete_stage(&mut self) {
        let now = self.now;
        let mut resume: Option<u64> = None;
        let recovery = self.cfg.mispredict_recovery;
        for e in self.ctx.window.iter_mut() {
            if e.state == EState::Executing && e.finish <= now {
                e.state = EState::Complete;
                if e.is_cond {
                    self.unresolved_branches -= 1;
                }
                if e.blocks_fetch {
                    resume = Some(now + 1 + recovery);
                    e.blocks_fetch = false;
                }
            }
        }
        if let Some(r) = resume {
            self.fetch_blocked_by = None;
            if O::ENABLED && r >= self.fetch_resume {
                // The recovery bubble outlasts any pending refill/redirect,
                // so the remaining stall is attributed to the branch.
                self.resume_kind = StallKind::Recovery;
                self.resume_site = self.block_site;
            }
            self.fetch_resume = self.fetch_resume.max(r);
        }
    }

    /// Stage 2: in-order commit of up to `commit_width`.
    fn commit_stage(&mut self) {
        for _ in 0..self.cfg.commit_width {
            match self.ctx.window.front() {
                Some(e) if e.state == EState::Complete => {
                    let e = self.ctx.window.pop_front().unwrap();
                    self.head_seq = e.seq + 1;
                    self.issue_head = self.issue_head.saturating_sub(1);
                    // Reservation-station entries are held until graduation
                    // (the R10000 address queue keeps loads/stores until
                    // they graduate) — this is what makes Table 3's
                    // occupancy metric meaningful.
                    self.queue_len[e.queue.index()] -= 1;
                    self.stats.committed_total += 1;
                    self.cycle_rec.committed = self.cycle_rec.committed.saturating_add(1);
                    if e.annulled {
                        self.stats.annulled += 1;
                    } else {
                        self.stats.committed += 1;
                    }
                    // Clear stale writer pointers.
                    if let Some(d) = self.infos[e.id as usize].def {
                        if self.ctx.reg_writer[d as usize] == Some(e.seq) {
                            self.ctx.reg_writer[d as usize] = None;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Stage 3: wake-up/select per reservation station, oldest first.
    fn issue_stage(&mut self) {
        let mut issued = [0usize; 8];
        let now = self.now;
        // Entries below `issue_head` have already left `InQueue`; scanning
        // in index order from there preserves oldest-first select exactly.
        let mut new_head: Option<usize> = None;
        let still_in_queue = |new_head: &mut Option<usize>, i: usize| {
            if new_head.is_none() {
                *new_head = Some(i);
            }
        };
        for i in self.issue_head..self.ctx.window.len() {
            let (ready, class) = {
                let e = &self.ctx.window[i];
                if e.state != EState::InQueue {
                    continue;
                }
                if now <= e.disp_cycle + self.cfg.frontend_depth {
                    still_in_queue(&mut new_head, i);
                    continue;
                }
                let ready = e.deps().iter().all(|&d| self.dep_ready(d));
                (ready, e.class)
            };
            if !ready {
                still_in_queue(&mut new_head, i);
                continue;
            }
            let ci = class_idx(class);
            let fus = self.cfg.fu_count[ci];
            if class != FuClass::Nop {
                if issued[ci] >= fus {
                    still_in_queue(&mut new_head, i);
                    continue; // structural hazard this cycle
                }
                if class == FuClass::FpDiv && now < self.fpdiv_free_at {
                    still_in_queue(&mut new_head, i);
                    continue; // blocking divider
                }
            }
            // Latency, including D-cache for memory ops.
            let mut lat = self.cfg.latencies.for_class(class);
            let (is_mem, addr, annulled) = {
                let e = &self.ctx.window[i];
                (e.class == FuClass::LoadStore, e.mem_addr, e.annulled)
            };
            let mut dmiss = false;
            if is_mem && !annulled {
                let byte = (addr.unwrap_or(0) as u64) << 2;
                if !self.ctx.dcache.access(byte) {
                    lat += self.cfg.latencies.cache_miss_penalty;
                    self.stats.dcache_misses += 1;
                    dmiss = true;
                } else {
                    self.stats.dcache_hits += 1;
                }
            }
            let e = &mut self.ctx.window[i];
            e.state = EState::Executing;
            e.finish = now + lat;
            if O::ENABLED {
                e.dmiss = dmiss;
            }
            if class != FuClass::Nop {
                issued[ci] += 1;
                self.stats.fu_issues[ci] += 1;
                self.cycle_rec.issued[ci] = self.cycle_rec.issued[ci].saturating_add(1);
                if class == FuClass::FpDiv {
                    self.fpdiv_free_at = e.finish;
                }
            }
        }
        self.issue_head = new_head.unwrap_or(self.ctx.window.len());
        // A class is "full" this cycle if every unit of the class issued.
        for (ci, &n) in issued.iter().enumerate() {
            let fus = self.cfg.fu_count[ci];
            if fus != usize::MAX && fus > 0 && n == fus {
                self.stats.fu_full_cycles[ci] += 1;
            }
        }
    }

    /// Stage 4: fetch + dispatch up to `fetch_width` correct-path
    /// instructions, applying the branch-prediction policy.
    fn fetch_stage(&mut self) {
        if self.source.cur().is_none() {
            return;
        }
        if self.fetch_blocked_by.is_some() || self.now < self.fetch_resume {
            self.stats.fetch_stall_cycles += 1;
            self.cycle_rec.fetch_stalled = true;
            return;
        }
        // Copy of the shared-slice reference so `info` borrows the site
        // table, not `self`.
        let infos = self.infos;
        for _ in 0..self.cfg.fetch_width {
            let Some(te) = self.source.cur() else {
                break;
            };
            let info = &infos[te.id as usize];
            let pc = self.layout.pc(te.id);

            // Structural checks before consuming.
            if self.ctx.window.len() >= self.cfg.rob_size {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                break;
            }
            let qi = info.queue.index();
            if self.queue_len[qi] >= self.cfg.queue_size[qi] {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                break;
            }
            let is_cond = matches!(
                info.kind,
                Some(BranchKind::CondDirect) | Some(BranchKind::CondLikely)
            );
            if is_cond && self.unresolved_branches >= self.cfg.max_inflight_branches {
                if O::ENABLED {
                    self.capacity_stall = true;
                }
                break;
            }
            // I-cache probe: a miss delays fetch; the probe fills the line
            // so the retry hits.
            if !self.ctx.icache.access(pc) {
                self.stats.icache_misses += 1;
                self.fetch_resume = self.now + self.cfg.latencies.cache_miss_penalty;
                if O::ENABLED {
                    self.resume_kind = StallKind::Icache;
                }
                break;
            }
            self.stats.icache_hits += 1;

            // Dispatch.
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut deps = [0u64; MAX_SRCS];
            let mut ndeps = 0u8;
            for &u in info.uses() {
                if let Some(s) = self.ctx.reg_writer[u as usize] {
                    if !self.dep_ready(s) && !deps[..ndeps as usize].contains(&s) {
                        deps[ndeps as usize] = s;
                        ndeps += 1;
                    }
                }
            }
            if let Some(d) = info.def {
                self.ctx.reg_writer[d as usize] = Some(seq);
            }
            self.queue_len[qi] += 1;
            if is_cond {
                self.unresolved_branches += 1;
            }
            let mut entry = Entry {
                seq,
                id: te.id,
                class: info.class,
                queue: info.queue,
                state: EState::InQueue,
                disp_cycle: self.now,
                finish: 0,
                deps,
                ndeps,
                mem_addr: te.mem_addr(),
                blocks_fetch: false,
                is_cond,
                annulled: te.annulled(),
                dmiss: false,
                nextq: u64::MAX,
            };
            self.source.advance();

            // Branch policy.  An *annulled* predicated branch (guard false)
            // never redirects fetch: the predicate hardware squashes it at
            // dispatch, so it flows through the branch queue/unit but makes
            // no prediction and costs no bubble.
            let mut stop_group = false;
            if let Some(kind) = info.kind.filter(|_| !te.annulled()) {
                let taken = te.taken();
                if O::ENABLED && matches!(kind, BranchKind::CondDirect | BranchKind::CondLikely) {
                    self.obs.on_branch(te.id);
                }
                match kind {
                    BranchKind::CondDirect => {
                        let actual = taken.unwrap_or(false);
                        self.stats.cond_branches += 1;
                        if self.scheme.is_perfect() {
                            stop_group = actual;
                        } else {
                            let pred = self.ctx.bht.predict(pc);
                            self.ctx.bht.update(pc, actual);
                            if pred == actual {
                                if actual {
                                    // Taken, correctly predicted: BTB hit is
                                    // free, miss costs a decode redirect.
                                    match self.ctx.btb.lookup(pc) {
                                        Some(_) => {
                                            self.stats.btb_hits += 1;
                                        }
                                        None => {
                                            self.stats.btb_misses += 1;
                                            self.fetch_resume = self.now + 2;
                                            if O::ENABLED {
                                                self.resume_kind = StallKind::Redirect;
                                            }
                                            if let Some(t) = info.target_pc {
                                                self.ctx.btb.install(pc, t);
                                            }
                                        }
                                    }
                                    stop_group = true;
                                }
                            } else {
                                self.stats.mispredicts += 1;
                                entry.blocks_fetch = true;
                                self.fetch_blocked_by = Some(seq);
                                if O::ENABLED {
                                    self.obs.on_mispredict(te.id, false);
                                    self.block_site = te.id;
                                    self.block_misp = true;
                                }
                                if actual {
                                    if let Some(t) = info.target_pc {
                                        self.ctx.btb.install(pc, t);
                                    }
                                }
                                stop_group = true;
                            }
                        }
                    }
                    BranchKind::CondLikely => {
                        let actual = taken.unwrap_or(false);
                        self.stats.cond_branches += 1;
                        self.stats.likely_branches += 1;
                        if self.scheme.is_perfect() {
                            stop_group = actual;
                        } else if actual {
                            // Statically predicted taken, target in the
                            // instruction: fetch group ends, no bubble.
                            stop_group = true;
                        } else {
                            self.stats.mispredicts += 1;
                            self.stats.likely_mispredicts += 1;
                            entry.blocks_fetch = true;
                            self.fetch_blocked_by = Some(seq);
                            if O::ENABLED {
                                self.obs.on_mispredict(te.id, true);
                                self.block_site = te.id;
                                self.block_misp = true;
                            }
                            stop_group = true;
                        }
                    }
                    BranchKind::DirectJump => {
                        // `j`: always taken, absolute target, BTB-eligible.
                        // A BTB hit redirects fetch for free; a miss costs
                        // one decode-redirect bubble and installs the entry.
                        if !self.scheme.is_perfect() {
                            match self.ctx.btb.lookup(pc) {
                                Some(_) => {
                                    self.stats.btb_hits += 1;
                                }
                                None => {
                                    self.stats.btb_misses += 1;
                                    self.fetch_resume = self.now + 2;
                                    if O::ENABLED {
                                        self.resume_kind = StallKind::Redirect;
                                    }
                                    if let Some(t) = info.target_pc {
                                        self.ctx.btb.install(pc, t);
                                    }
                                }
                            }
                        }
                        stop_group = true;
                    }
                    BranchKind::Call => {
                        // Calls are not BTB-registered (Section 6): one
                        // decode-redirect bubble unless perfect.
                        if !self.scheme.is_perfect() {
                            self.fetch_resume = self.now + 2;
                            if O::ENABLED {
                                self.resume_kind = StallKind::Redirect;
                            }
                        }
                        stop_group = true;
                    }
                    BranchKind::Indirect => {
                        if self.scheme.is_perfect() {
                            stop_group = true;
                        } else {
                            self.stats.indirect_stalls += 1;
                            entry.blocks_fetch = true;
                            self.fetch_blocked_by = Some(seq);
                            if O::ENABLED {
                                self.block_site = te.id;
                                self.block_misp = false;
                            }
                            stop_group = true;
                        }
                    }
                }
            }

            self.ctx.window.push_back(entry);
            self.cycle_rec.fetched = self.cycle_rec.fetched.saturating_add(1);
            if stop_group {
                break;
            }
        }
    }

    /// Attribute the cycle that just ran to exactly one [`CycleBucket`].
    ///
    /// The priority chain makes the buckets exhaustive and mutually
    /// exclusive by construction (see [`CycleBucket`] for the order), so
    /// the observer's bucket sums equal `stats.cycles` without any
    /// residual category.  Runs after `fetch_stage` and before
    /// `sample_stage` (which resets `cycle_rec`).
    fn classify_cycle(&mut self) {
        let (bucket, site) = if self.cycle_rec.committed > 0 {
            (CycleBucket::UsefulCommit, None)
        } else if self.source.cur().is_none() {
            // Trace exhausted: the remaining zero-commit cycles are the
            // pipeline draining, whatever the in-flight entries wait on.
            (CycleBucket::Drain, None)
        } else if self.fetch_blocked_by.is_some() {
            // Unresolved blocking branch: mispredict repair if it was a
            // misprediction, plain fetch stall for an indirect transfer.
            if self.block_misp {
                (CycleBucket::MispredictRecovery, Some(self.block_site))
            } else {
                (CycleBucket::FetchStall, Some(self.block_site))
            }
        } else if self.now < self.fetch_resume {
            match self.resume_kind {
                StallKind::Recovery if self.block_misp => {
                    (CycleBucket::MispredictRecovery, Some(self.resume_site))
                }
                StallKind::Recovery => (CycleBucket::FetchStall, Some(self.resume_site)),
                StallKind::Icache => (CycleBucket::IcacheMiss, None),
                _ => (CycleBucket::FetchStall, None),
            }
        } else if self.capacity_stall {
            (CycleBucket::IssueWindowFull, None)
        } else {
            // Head-of-window diagnosis.  The head cannot be `Complete`
            // here: complete runs before commit, so a complete head would
            // have committed this cycle (the first arm above).
            match self.ctx.window.front() {
                None => (CycleBucket::FetchStall, None), // frontend fill
                Some(e) if e.state == EState::Executing => {
                    if e.dmiss {
                        (CycleBucket::DcacheMiss, None)
                    } else {
                        (CycleBucket::FuContention, None)
                    }
                }
                Some(e) if self.now <= e.disp_cycle + self.cfg.frontend_depth => {
                    (CycleBucket::FetchStall, None) // frontend fill
                }
                // InQueue past the frontend depth: the head's producers
                // have all committed, so it is waiting on a functional
                // unit (structural hazard or the blocking divider).
                Some(_) => (CycleBucket::FuContention, None),
            }
        };
        self.obs.on_cycle(bucket, site);
    }

    /// Stage 5: end-of-cycle statistics sampling.
    fn sample_stage(&mut self) {
        for q in 0..4 {
            self.stats.queue_occupancy_sum[q] += self.queue_len[q] as u64;
            if self.queue_len[q] >= self.cfg.queue_size[q] {
                self.stats.queue_full_cycles[q] += 1;
            }
        }
        if let Some(log) = &mut self.log {
            let mut rec = std::mem::take(&mut self.cycle_rec);
            rec.cycle = self.now;
            for q in 0..4 {
                rec.queue_len[q] = self.queue_len[q].min(255) as u8;
            }
            log.push(rec);
        } else {
            self.cycle_rec = CycleRecord::default();
        }
    }

    fn run_logged(mut self) -> Result<(SimStats, Option<CycleLog>), SimError> {
        while self.source.cur().is_some() || !self.ctx.window.is_empty() {
            self.now += 1;
            if O::ENABLED {
                self.capacity_stall = false;
            }
            self.complete_stage();
            self.commit_stage();
            self.issue_stage();
            self.fetch_stage();
            if O::ENABLED {
                self.classify_cycle();
            }
            self.sample_stage();
            if self.source.budget_exceeded(self.now) {
                return Err(SimError::CycleBudgetExceeded {
                    cycles: self.now,
                    retired: self.stats.committed_total,
                });
            }
        }
        self.stats.cycles = self.now;
        Ok((self.stats, self.log))
    }
}

/// Run one simulation over `source` using the reusable state in `ctx`,
/// reporting cycle attribution and branch events to `obs` (pass `&mut ()`
/// for the zero-overhead disabled observer).
#[allow(clippy::too_many_arguments)]
fn simulate_source<S: TraceSource, O: SimObserver>(
    ctx: &mut SimContext,
    infos: &[SiteInfo],
    layout: &StaticLayout,
    source: S,
    scheme: Scheme,
    cfg: &MachineConfig,
    log_cycles: usize,
    obs: &mut O,
) -> Result<(SimStats, Option<CycleLog>), SimError> {
    ctx.prepare(cfg);
    if O::ENABLED {
        obs.on_run_start(infos.len());
    }
    let pipe = Pipeline {
        cfg,
        infos,
        layout,
        source,
        scheme,
        now: 0,
        head_seq: 0,
        next_seq: 0,
        queue_len: [0; 4],
        unresolved_branches: 0,
        fetch_resume: 0,
        fetch_blocked_by: None,
        fpdiv_free_at: 0,
        issue_head: 0,
        ctx,
        stats: SimStats::default(),
        log: (log_cycles > 0).then(|| CycleLog::new(log_cycles)),
        cycle_rec: CycleRecord::default(),
        obs,
        resume_kind: StallKind::None,
        resume_site: 0,
        block_site: 0,
        block_misp: false,
        capacity_stall: false,
    };
    pipe.run_logged()
}

/// Simulate a pre-recorded trace under `scheme` on `cfg`.
pub fn simulate_trace(
    prog: &Program,
    layout: &StaticLayout,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<SimStats, SimError> {
    simulate_trace_logged(prog, layout, trace, scheme, cfg, 0).map(|(s, _)| s)
}

/// Like [`simulate_trace`], but reusing the allocations in `ctx` (caches,
/// BHT, BTB, window scratch) instead of constructing fresh state.
pub fn simulate_trace_in(
    ctx: &mut SimContext,
    prog: &Program,
    layout: &StaticLayout,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<SimStats, SimError> {
    let infos = build_site_infos(prog, layout);
    simulate_source(
        ctx,
        &infos,
        layout,
        SliceSource::new(trace),
        scheme,
        cfg,
        0,
        &mut (),
    )
    .map(|(s, _)| s)
}

/// Like [`simulate_trace_in`], but reporting cycle attribution and
/// per-site branch events to `obs`.  The returned stats are identical to
/// the unobserved run's.
pub fn simulate_trace_observed_in(
    ctx: &mut SimContext,
    prog: &Program,
    layout: &StaticLayout,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<SimStats, SimError> {
    let infos = build_site_infos(prog, layout);
    simulate_source(
        ctx,
        &infos,
        layout,
        SliceSource::new(trace),
        scheme,
        cfg,
        0,
        obs,
    )
    .map(|(s, _)| s)
}

/// [`simulate_trace_observed_in`] with fresh simulator state.
pub fn simulate_trace_observed(
    prog: &Program,
    layout: &StaticLayout,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<SimStats, SimError> {
    let mut ctx = SimContext::new(cfg);
    simulate_trace_observed_in(&mut ctx, prog, layout, trace, scheme, cfg, obs)
}

/// Like [`simulate_trace`], but also records a per-cycle activity log of up
/// to `log_cycles` cycles (0 disables logging).
pub fn simulate_trace_logged(
    prog: &Program,
    layout: &StaticLayout,
    trace: &[TraceEntry],
    scheme: Scheme,
    cfg: &MachineConfig,
    log_cycles: usize,
) -> Result<(SimStats, Option<CycleLog>), SimError> {
    let infos = build_site_infos(prog, layout);
    let mut ctx = SimContext::new(cfg);
    simulate_source(
        &mut ctx,
        &infos,
        layout,
        SliceSource::new(trace),
        scheme,
        cfg,
        log_cycles,
        &mut (),
    )
}

/// Static per-program simulation inputs (layout + site table), computed
/// once and shared by every cell simulating the same program.  Rebuilding
/// these per cell is cheap next to interpretation, but sharing them keeps
/// the fan-out path allocation-light and makes the dependency explicit.
pub struct PreparedSim {
    layout: StaticLayout,
    infos: Vec<SiteInfo>,
}

impl PreparedSim {
    pub fn layout(&self) -> &StaticLayout {
        &self.layout
    }
}

/// Precompute the static tables [`simulate_shared_in`] needs for `prog`.
pub fn prepare_program(prog: &Program) -> PreparedSim {
    let layout = StaticLayout::build(prog);
    let infos = build_site_infos(prog, &layout);
    PreparedSim { layout, infos }
}

/// Simulate a [`SharedTrace`] under `scheme` on `cfg`, reusing `ctx`
/// allocations.  Safe to call concurrently from many threads over the same
/// `prep`/`trace` (each call only reads them); produces stats identical to
/// [`simulate_trace_in`] over the flattened trace.
pub fn simulate_shared_in(
    ctx: &mut SimContext,
    prep: &PreparedSim,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<SimStats, SimError> {
    simulate_source(
        ctx,
        &prep.infos,
        &prep.layout,
        ChunkSource::new(trace),
        scheme,
        cfg,
        0,
        &mut (),
    )
    .map(|(s, _)| s)
}

/// Like [`simulate_shared_in`], but reporting cycle attribution and
/// per-site branch events to `obs`.
pub fn simulate_shared_observed_in(
    ctx: &mut SimContext,
    prep: &PreparedSim,
    trace: &SharedTrace,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<SimStats, SimError> {
    simulate_source(
        ctx,
        &prep.infos,
        &prep.layout,
        ChunkSource::new(trace),
        scheme,
        cfg,
        0,
        obs,
    )
    .map(|(s, _)| s)
}

/// Run `prog` functionally **once**, broadcasting the trace over a bounded
/// SPMC ring to one simulator thread per `(scheme, config)` cell.  All
/// consumers see the identical entry sequence, so the stats match the
/// per-cell [`simulate_program`] path exactly while interpretation cost is
/// paid once instead of `cells.len()` times.
pub fn simulate_program_fanout(
    prog: &Program,
    cells: &[(Scheme, MachineConfig)],
) -> Result<(Vec<SimStats>, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    if cells.is_empty() {
        let res = guardspec_interp::run(prog)?;
        return Ok((Vec::new(), res));
    }
    let prep = prepare_program(prog);
    let (writer, readers) = guardspec_interp::stream::broadcast_channel(cells.len());
    let (sims, exec) = std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let mut obs = StreamObserver::new(&prep.layout, writer);
            let res = guardspec_interp::Interp::new(prog).run_with(&mut obs);
            if res.is_ok() {
                obs.finish();
            }
            res
        });
        let consumers: Vec<_> = cells
            .iter()
            .zip(readers)
            .map(|((scheme, cfg), reader)| {
                let prep = &prep;
                s.spawn(move || {
                    let mut ctx = SimContext::new(cfg);
                    simulate_source(
                        &mut ctx,
                        &prep.infos,
                        &prep.layout,
                        StreamSource::new(reader),
                        *scheme,
                        cfg,
                        0,
                        &mut (),
                    )
                    .map(|(s, _)| s)
                })
            })
            .collect();
        let sims: Vec<_> = consumers
            .into_iter()
            .map(|h| h.join().expect("fan-out simulator panicked"))
            .collect();
        let exec = producer.join().expect("trace producer panicked");
        (sims, exec)
    });
    let exec = exec?;
    let stats = sims.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((stats, exec))
}

/// Run `prog` functionally, then simulate its trace.  Returns the timing
/// statistics together with the functional result (so callers can check
/// semantics and dynamic counts in one shot).
pub fn simulate_program(
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let (layout, trace, res) = guardspec_interp::trace::trace_program(prog)?;
    let stats = simulate_trace(prog, &layout, &trace, scheme, cfg)?;
    Ok((stats, res))
}

/// Like [`simulate_program`], but the interpreter streams the trace over a
/// bounded channel to the pipeline running on this thread, so the two
/// phases overlap and the trace is never materialized in full.  Produces
/// exactly the stats of the two-phase path.
pub fn simulate_program_streamed(
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let mut ctx = SimContext::new(cfg);
    simulate_program_streamed_in(&mut ctx, prog, scheme, cfg)
}

/// [`simulate_program_streamed`] with caller-owned reusable state.
pub fn simulate_program_streamed_in(
    ctx: &mut SimContext,
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    simulate_program_streamed_observed_in(ctx, prog, scheme, cfg, &mut ())
}

/// [`simulate_program_streamed_in`] with an observer: the interpreter
/// streams the trace to the pipeline while cycle attribution and per-site
/// branch events are reported to `obs`.
pub fn simulate_program_streamed_observed_in(
    ctx: &mut SimContext,
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let layout = StaticLayout::build(prog);
    let infos = build_site_infos(prog, &layout);
    let (writer, reader) = guardspec_interp::stream::trace_channel();
    let (sim, exec) = std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let mut sobs = StreamObserver::new(&layout, writer);
            let res = guardspec_interp::Interp::new(prog).run_with(&mut sobs);
            if res.is_ok() {
                sobs.finish();
            }
            // On error the writer is dropped unflushed, which closes the
            // channel; the truncated simulation result is discarded below.
            res
        });
        let sim = simulate_source(
            ctx,
            &infos,
            &layout,
            StreamSource::new(reader),
            scheme,
            cfg,
            0,
            obs,
        );
        let exec = producer.join().expect("trace producer panicked");
        (sim, exec)
    });
    let exec = exec?;
    let (stats, _) = sim?;
    Ok((stats, exec))
}

/// [`simulate_program`] with an observer over the materialized-trace path.
pub fn simulate_program_observed(
    prog: &Program,
    scheme: Scheme,
    cfg: &MachineConfig,
    obs: &mut impl SimObserver,
) -> Result<(SimStats, guardspec_interp::ExecResult), Box<dyn std::error::Error>> {
    let (layout, trace, res) = guardspec_interp::trace::trace_program(prog)?;
    let stats = simulate_trace_observed(prog, &layout, &trace, scheme, cfg, obs)?;
    Ok((stats, res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    pub(super) fn count_loop(n: i64) -> Program {
        let mut fb = FuncBuilder::new("loop");
        fb.block("e");
        fb.li(r(1), n);
        fb.block("body");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "body");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    #[test]
    fn pipeline_drains_and_counts_commits() {
        let prog = count_loop(100);
        let cfg = MachineConfig::r10000();
        let (stats, res) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        assert_eq!(stats.committed_total, res.summary.retired);
        assert_eq!(stats.committed, res.summary.retired); // nothing annulled
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0 && stats.ipc() <= 4.0);
    }

    #[test]
    fn perfect_is_at_least_as_fast_as_twobit() {
        let prog = count_loop(500);
        let cfg = MachineConfig::r10000();
        let (two, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        let (perf, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        assert!(
            perf.cycles <= two.cycles,
            "perfect {} > twobit {}",
            perf.cycles,
            two.cycles
        );
        assert_eq!(perf.mispredicts, 0);
    }

    #[test]
    fn biased_loop_branch_predicts_well_after_warmup() {
        let prog = count_loop(1000);
        let cfg = MachineConfig::r10000();
        let (stats, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        // Loop-closing branch: taken 999 times, not taken once.
        assert!(
            stats.branch_accuracy() > 0.99,
            "accuracy {}",
            stats.branch_accuracy()
        );
    }

    #[test]
    fn alternating_branch_mispredicts_under_twobit_not_perfect() {
        // if (i & 1) x++ inside a loop: the inner branch alternates TFTF.
        let mut fb = FuncBuilder::new("alt");
        fb.block("e");
        fb.li(r(1), 0);
        fb.li(r(5), 200);
        fb.block("loop");
        fb.andi(r(2), r(1), 1);
        fb.beq(r(2), r(0), "skip");
        fb.block("odd");
        fb.addi(r(3), r(3), 1);
        fb.block("skip");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(5), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (two, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        let (perf, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        assert!(two.mispredicts > 50, "mispredicts {}", two.mispredicts);
        assert_eq!(perf.mispredicts, 0);
        assert!(perf.ipc() > two.ipc());
    }

    #[test]
    fn annulled_instructions_excluded_from_ipc() {
        use guardspec_ir::reg::p;
        use guardspec_ir::SetCond;
        let mut fb = FuncBuilder::new("g");
        fb.block("e");
        fb.li(r(1), 100);
        fb.block("loop");
        fb.setpi(SetCond::Gt, p(1), r(1), 50);
        fb.cmov(r(2), r(1), p(1), true); // annulled half the time
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (stats, res) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        assert_eq!(stats.annulled, res.summary.annulled);
        assert_eq!(stats.committed + stats.annulled, stats.committed_total);
        assert!(stats.annulled == 50, "annulled {}", stats.annulled);
    }

    #[test]
    fn indirect_jump_stalls_fetch_under_twobit() {
        let mut fb = FuncBuilder::new("ind");
        fb.block("e");
        fb.li(r(1), 0);
        fb.li(r(5), 100);
        fb.block("loop");
        fb.andi(r(2), r(1), 1);
        fb.jtab(r(2), &["c0", "c1"]);
        fb.block("c0");
        fb.addi(r(3), r(3), 1);
        fb.jump("next");
        fb.block("c1");
        fb.addi(r(3), r(3), 2);
        fb.block("next");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(5), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (two, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        let (perf, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        assert_eq!(two.indirect_stalls, 100);
        assert_eq!(perf.indirect_stalls, 0);
        assert!(perf.cycles < two.cycles);
    }

    #[test]
    fn dependent_chain_bounded_by_latency() {
        // Loop a 24-instruction body 40 times so the I-cache is warm.
        // Serial body: every add depends on the previous -> >= 1 cycle/add.
        // Parallel body: independent adds -> bounded by the 2 ALUs.
        let build = |serial: bool| {
            let mut fb = FuncBuilder::new("k");
            fb.block("e");
            fb.li(r(9), 40);
            fb.block("loop");
            for i in 0..24u8 {
                if serial {
                    fb.addi(r(1), r(1), 1);
                } else {
                    fb.addi(r(1 + (i % 8)), r(20 + (i % 8)), 1);
                }
            }
            fb.subi(r(9), r(9), 1);
            fb.bgtz(r(9), "loop");
            fb.block("done");
            fb.halt();
            single_func_program(fb)
        };
        let cfg = MachineConfig::r10000();
        let (serial, _) = simulate_program(&build(true), Scheme::Perfect, &cfg).expect("sim");
        let (par, _) = simulate_program(&build(false), Scheme::Perfect, &cfg).expect("sim");
        assert!(serial.cycles >= 40 * 24, "serial {}", serial.cycles);
        assert!(
            par.cycles * 3 < serial.cycles * 2,
            "parallel {} serial {}",
            par.cycles,
            serial.cycles
        );
    }

    #[test]
    fn dcache_misses_slow_strided_loads() {
        // Stride of 16 words = 64 bytes: every load a fresh line.
        let mk = |stride: i64| {
            let mut fb = FuncBuilder::new("ld");
            fb.block("e");
            fb.li(r(1), 0);
            fb.li(r(5), 256);
            fb.block("loop");
            fb.lw(r(2), r(1), 0);
            fb.add(r(3), r(3), r(2));
            fb.addi(r(1), r(1), stride);
            fb.slt(r(4), r(1), r(5));
            fb.bne(r(4), r(0), "loop");
            fb.block("done");
            fb.halt();
            let mut p = single_func_program(fb);
            p.mem_words = 1 << 12;
            p
        };
        let cfg = MachineConfig::r10000();
        let (unit, _) = simulate_program(&mk(1), Scheme::Perfect, &cfg).expect("sim");
        let (strided, _) = simulate_program(&mk(16), Scheme::Perfect, &cfg).expect("sim");
        // The strided run touches fewer words but should still suffer many
        // more misses per load.
        let unit_mr = unit.dcache_misses as f64 / (unit.dcache_misses + unit.dcache_hits) as f64;
        let str_mr =
            strided.dcache_misses as f64 / (strided.dcache_misses + strided.dcache_hits) as f64;
        assert!(str_mr > 0.9, "strided miss rate {str_mr}");
        assert!(unit_mr < 0.2, "unit miss rate {unit_mr}");
    }

    #[test]
    fn rs_occupancy_sampled() {
        let prog = count_loop(200);
        let cfg = MachineConfig::r10000();
        let (stats, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        // Something must have flowed through the integer queue.
        assert!(stats.queue_occupancy_sum[QueueKind::Integer.index()] > 0);
        assert!(stats.rs_full_pct(QueueKind::Integer) <= 100.0);
    }

    #[test]
    fn streamed_stats_match_materialized_for_every_scheme() {
        let prog = count_loop(1000);
        let cfg = MachineConfig::r10000();
        for scheme in [Scheme::TwoBit, Scheme::Proposed, Scheme::Perfect] {
            let (mat, mat_res) = simulate_program(&prog, scheme, &cfg).expect("materialized");
            let (str_, str_res) = simulate_program_streamed(&prog, scheme, &cfg).expect("streamed");
            assert_eq!(mat, str_, "stats diverge under {scheme:?}");
            assert_eq!(mat_res.summary.retired, str_res.summary.retired);
        }
    }

    #[test]
    fn shared_trace_stats_match_slice_for_every_scheme() {
        let prog = count_loop(1000);
        let cfg = MachineConfig::r10000();
        let (layout, flat, _) = guardspec_interp::trace::trace_program(&prog).expect("trace");
        let shared = SharedTrace::from_entries(flat.iter().copied());
        let prep = prepare_program(&prog);
        let mut ctx = SimContext::new(&cfg);
        for scheme in [Scheme::TwoBit, Scheme::Proposed, Scheme::Perfect] {
            let slice = simulate_trace(&prog, &layout, &flat, scheme, &cfg).expect("slice");
            let chunked =
                simulate_shared_in(&mut ctx, &prep, &shared, scheme, &cfg).expect("shared");
            assert_eq!(slice, chunked, "stats diverge under {scheme:?}");
        }
    }

    #[test]
    fn fanout_stats_match_per_cell_simulation() {
        let prog = count_loop(2000);
        let big = MachineConfig::r10000();
        let mut small = MachineConfig::r10000();
        small.bht_entries = 64;
        let cells = vec![
            (Scheme::TwoBit, big.clone()),
            (Scheme::Proposed, big.clone()),
            (Scheme::Perfect, big.clone()),
            (Scheme::TwoBit, small.clone()),
        ];
        let (fanned, fan_res) = simulate_program_fanout(&prog, &cells).expect("fanout");
        assert_eq!(fanned.len(), cells.len());
        for ((scheme, cfg), fan) in cells.iter().zip(&fanned) {
            let (solo, solo_res) = simulate_program(&prog, *scheme, cfg).expect("solo");
            assert_eq!(&solo, fan, "fan-out diverges under {scheme:?}");
            assert_eq!(solo_res.summary.retired, fan_res.summary.retired);
        }
    }

    #[test]
    fn fanout_with_no_cells_still_executes() {
        let prog = count_loop(10);
        let (stats, res) = simulate_program_fanout(&prog, &[]).expect("runs");
        assert!(stats.is_empty());
        assert!(res.summary.retired > 0);
    }

    #[test]
    fn reused_context_matches_fresh_state() {
        // One SimContext reused across programs and schemes must reproduce
        // the fresh-construction results exactly (reset leaves no residue).
        let progs = [count_loop(300), count_loop(1000)];
        let cfg = MachineConfig::r10000();
        let mut ctx = SimContext::new(&cfg);
        for _round in 0..2 {
            for prog in &progs {
                for scheme in [Scheme::TwoBit, Scheme::Perfect] {
                    let layout = StaticLayout::build(prog);
                    let (_, trace, _) =
                        guardspec_interp::trace::trace_program(prog).expect("trace");
                    let fresh = simulate_trace(prog, &layout, &trace, scheme, &cfg).expect("sim");
                    let reused = simulate_trace_in(&mut ctx, prog, &layout, &trace, scheme, &cfg)
                        .expect("sim");
                    assert_eq!(fresh, reused, "context reuse diverged under {scheme:?}");
                }
            }
        }
    }

    #[test]
    fn context_reshapes_across_configs() {
        // Reuse the same context under a different machine geometry: prepare
        // must rebuild what changed and results must match fresh state.
        let prog = count_loop(400);
        let layout = StaticLayout::build(&prog);
        let (_, trace, _) = guardspec_interp::trace::trace_program(&prog).expect("trace");
        let big = MachineConfig::r10000();
        let mut small = MachineConfig::r10000();
        small.bht_entries = 64;
        small.icache = (4 * 1024, 32, 2);
        small.dcache = (4 * 1024, 32, 2);
        let mut ctx = SimContext::new(&big);
        for cfg in [&big, &small, &big] {
            let fresh = simulate_trace(&prog, &layout, &trace, Scheme::TwoBit, cfg).expect("sim");
            let reused = simulate_trace_in(&mut ctx, &prog, &layout, &trace, Scheme::TwoBit, cfg)
                .expect("sim");
            assert_eq!(fresh, reused, "reshape diverged");
        }
    }
}

#[cfg(test)]
mod observe_tests {
    use super::*;
    use crate::observe::CycleAccounting;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn alt_program(iters: i64) -> Program {
        // Loop with an alternating inner branch (mispredict-heavy under
        // TwoBit) plus a strided load (D-cache misses).
        let mut fb = FuncBuilder::new("alt");
        fb.block("e");
        fb.li(r(1), 0);
        fb.li(r(5), iters);
        fb.block("loop");
        fb.andi(r(2), r(1), 1);
        fb.beq(r(2), r(0), "skip");
        fb.block("odd");
        fb.addi(r(3), r(3), 1);
        fb.block("skip");
        fb.lw(r(4), r(1), 0);
        fb.addi(r(1), r(1), 16);
        fb.slt(r(6), r(1), r(5));
        fb.bne(r(6), r(0), "loop");
        fb.block("done");
        fb.halt();
        let mut p = single_func_program(fb);
        p.mem_words = 1 << 14;
        p
    }

    #[test]
    fn observed_stats_match_unobserved_and_buckets_sum() {
        for prog in [alt_program(4000), tests::count_loop(700)] {
            let (layout, trace, _) = guardspec_interp::trace::trace_program(&prog).unwrap();
            let cfg = MachineConfig::r10000();
            let mut acc = CycleAccounting::new();
            for scheme in [Scheme::TwoBit, Scheme::Proposed, Scheme::Perfect] {
                let plain = simulate_trace(&prog, &layout, &trace, scheme, &cfg).unwrap();
                let observed =
                    simulate_trace_observed(&prog, &layout, &trace, scheme, &cfg, &mut acc)
                        .unwrap();
                assert_eq!(plain, observed, "observer changed stats under {scheme:?}");
                acc.check(&observed);
                assert!(acc.bucket(CycleBucket::UsefulCommit) > 0);
            }
        }
    }

    #[test]
    fn accounting_agrees_across_trace_paths() {
        let prog = alt_program(2000);
        let cfg = MachineConfig::r10000();
        let (layout, flat, _) = guardspec_interp::trace::trace_program(&prog).unwrap();
        let shared = SharedTrace::from_entries(flat.iter().copied());
        let prep = prepare_program(&prog);
        let mut ctx = SimContext::new(&cfg);
        for scheme in [Scheme::TwoBit, Scheme::Proposed, Scheme::Perfect] {
            let mut slice_acc = CycleAccounting::new();
            let slice =
                simulate_trace_observed(&prog, &layout, &flat, scheme, &cfg, &mut slice_acc)
                    .unwrap();
            let mut stream_acc = CycleAccounting::new();
            let (streamed, _) = simulate_program_streamed_observed_in(
                &mut ctx,
                &prog,
                scheme,
                &cfg,
                &mut stream_acc,
            )
            .unwrap();
            let mut shared_acc = CycleAccounting::new();
            let chunked = simulate_shared_observed_in(
                &mut ctx,
                &prep,
                &shared,
                scheme,
                &cfg,
                &mut shared_acc,
            )
            .unwrap();
            assert_eq!(slice, streamed, "stats diverge (streamed) under {scheme:?}");
            assert_eq!(slice, chunked, "stats diverge (shared) under {scheme:?}");
            assert_eq!(
                slice_acc, stream_acc,
                "accounting diverges (streamed) under {scheme:?}"
            );
            assert_eq!(
                slice_acc, shared_acc,
                "accounting diverges (shared) under {scheme:?}"
            );
            slice_acc.check(&slice);
        }
    }

    #[test]
    fn mispredict_heavy_branch_dominates_site_attribution() {
        let prog = alt_program(4000);
        let cfg = MachineConfig::r10000();
        let mut acc = CycleAccounting::new();
        let stats = simulate_program_observed(&prog, Scheme::TwoBit, &cfg, &mut acc)
            .map(|(s, _)| s)
            .unwrap();
        acc.check(&stats);
        // The alternating branch owns nearly all mispredicts and therefore
        // tops the squashed-cost ranking.
        let top = acc.top_sites(1);
        assert_eq!(top.len(), 1);
        let (_, c) = top[0];
        assert!(
            c.mispredicts * 2 > stats.mispredicts,
            "top site owns {} of {} mispredicts",
            c.mispredicts,
            stats.mispredicts
        );
        assert!(c.recovery_cycles > 0);
        assert!(acc.bucket(CycleBucket::MispredictRecovery) > 0);
        // Executions are conditional-branch fetches.
        let execs: u64 = acc.nonzero_sites().map(|(_, c)| c.executions).sum();
        assert_eq!(execs, stats.cond_branches);
    }

    #[test]
    fn perfect_scheme_has_no_recovery_cycles() {
        let prog = alt_program(1000);
        let cfg = MachineConfig::r10000();
        let mut acc = CycleAccounting::new();
        let stats = simulate_program_observed(&prog, Scheme::Perfect, &cfg, &mut acc)
            .map(|(s, _)| s)
            .unwrap();
        acc.check(&stats);
        assert_eq!(acc.bucket(CycleBucket::MispredictRecovery), 0);
        // With no recovery bubbles in the way, the strided loads' misses
        // surface as head-of-window D-cache stall cycles.
        assert!(stats.dcache_misses > 0);
        assert!(acc.bucket(CycleBucket::DcacheMiss) > 0);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::{Guard, Opcode, SetCond};

    /// Annulled predicated branches flow through the BR queue but make no
    /// prediction and cost no bubble.
    #[test]
    fn annulled_predicated_branch_is_penalty_free() {
        // Loop with a predicated branch whose guard is always false.
        let mut fb = FuncBuilder::new("ann");
        fb.block("e");
        fb.li(r(1), 200);
        fb.setpi(SetCond::Lt, p(1), r(0), 0); // p1 = false forever
        fb.block("loop");
        fb.push(guardspec_ir::Instruction::guarded(
            Opcode::Branch {
                cond: guardspec_ir::BranchCond::PredT(p(1)),
                target: guardspec_ir::BlockId(2),
                likely: true,
            },
            Guard::if_true(p(1)),
        ));
        fb.block("cont");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (stats, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        // Only the latch is a *predicted* conditional; the annulled likely
        // contributes no mispredicts and no cond_branches.
        assert_eq!(stats.likely_mispredicts, 0);
        assert_eq!(stats.cond_branches, 200);
        assert!(stats.mispredicts <= 3, "mispredicts {}", stats.mispredicts);
        assert_eq!(stats.annulled, 200);
    }

    /// Unconditional direct jumps hit the BTB after the first pass and cost
    /// no fetch bubble from then on.
    #[test]
    fn jumps_warm_the_btb() {
        let mut fb = FuncBuilder::new("j");
        fb.block("e");
        fb.li(r(1), 100);
        fb.block("loop");
        fb.jump("body");
        fb.block("dead");
        fb.addi(r(9), r(9), 1);
        fb.block("body");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (stats, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).expect("sim");
        assert!(stats.btb_hits > 90, "btb hits {}", stats.btb_hits);
    }

    /// The front-end depth delays first issue after dispatch.
    #[test]
    fn frontend_depth_delays_short_programs() {
        let mut fb = FuncBuilder::new("d");
        fb.block("e");
        fb.li(r(1), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let mut cfg = MachineConfig::r10000();
        cfg.frontend_depth = 0;
        let (shallow, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        cfg.frontend_depth = 4;
        let (deep, _) = simulate_program(&prog, Scheme::Perfect, &cfg).expect("sim");
        assert!(deep.cycles > shallow.cycles);
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    #[test]
    fn cycle_log_conserves_counts() {
        let mut fb = FuncBuilder::new("l");
        fb.block("e");
        fb.li(r(1), 50);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, trace, _) = guardspec_interp::trace::trace_program(&prog).unwrap();
        let cfg = MachineConfig::r10000();
        let (stats, log) =
            simulate_trace_logged(&prog, &layout, &trace, Scheme::TwoBit, &cfg, 1 << 20)
                .expect("sim");
        let log = log.expect("log enabled");
        assert_eq!(log.records.len() as u64, stats.cycles);
        let fetched: u64 = log.records.iter().map(|r| r.fetched as u64).sum();
        let committed: u64 = log.records.iter().map(|r| r.committed as u64).sum();
        assert_eq!(fetched, trace.len() as u64);
        assert_eq!(committed, stats.committed_total);
        // Cycle numbers are strictly increasing.
        assert!(log.records.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn cycle_log_respects_limit() {
        let mut fb = FuncBuilder::new("l");
        fb.block("e");
        fb.li(r(1), 200);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, trace, _) = guardspec_interp::trace::trace_program(&prog).unwrap();
        let cfg = MachineConfig::r10000();
        let (_stats, log) =
            simulate_trace_logged(&prog, &layout, &trace, Scheme::TwoBit, &cfg, 16).expect("sim");
        assert_eq!(log.unwrap().records.len(), 16);
    }

    #[test]
    fn disabled_log_returns_none() {
        let mut fb = FuncBuilder::new("l");
        fb.block("e");
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, trace, _) = guardspec_interp::trace::trace_program(&prog).unwrap();
        let cfg = MachineConfig::r10000();
        let (_s, log) =
            simulate_trace_logged(&prog, &layout, &trace, Scheme::TwoBit, &cfg, 0).expect("sim");
        assert!(log.is_none());
    }
}
