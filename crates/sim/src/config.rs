//! Machine configuration: widths, queue sizes, functional units, latencies.

use guardspec_ir::FuClass;

/// Operation latencies — exactly Table 2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    pub alu: u64,
    pub ldst: u64,
    pub sft: u64,
    pub fp_add: u64,
    pub fp_mul: u64,
    pub fp_div: u64,
    pub cache_miss_penalty: u64,
}

impl Latencies {
    /// Table 2: alu 1, ld/st 2, sft 1, fp add 3, fp mul 3, fp div 3,
    /// cache miss penalty 6.
    pub fn table2() -> Latencies {
        Latencies {
            alu: 1,
            ldst: 2,
            sft: 1,
            fp_add: 3,
            fp_mul: 3,
            fp_div: 3,
            cache_miss_penalty: 6,
        }
    }

    /// Execution latency for a functional-unit class (before cache effects).
    pub fn for_class(&self, c: FuClass) -> u64 {
        match c {
            FuClass::Alu => self.alu,
            FuClass::Shift => self.sft,
            FuClass::LoadStore => self.ldst,
            FuClass::Branch => 1,
            FuClass::FpAdd => self.fp_add,
            FuClass::FpMul => self.fp_mul,
            FuClass::FpDiv => self.fp_div,
            FuClass::Nop => 1,
        }
    }
}

/// Which reservation-station queue an instruction dispatches to.
/// These are the sub-columns of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum QueueKind {
    /// Branch reservation buffer (BR column).
    Branch,
    /// Address queue feeding the load/store unit (LDST column).
    LoadStore,
    /// Integer queue feeding the ALUs and shifter (ALU column).
    Integer,
    /// FP queue feeding the three FP pipes.
    Fp,
}

impl QueueKind {
    pub const ALL: [QueueKind; 4] = [
        QueueKind::Branch,
        QueueKind::LoadStore,
        QueueKind::Integer,
        QueueKind::Fp,
    ];

    /// Queue an instruction class dispatches to.
    pub fn for_class(c: FuClass) -> QueueKind {
        match c {
            FuClass::Branch => QueueKind::Branch,
            FuClass::LoadStore => QueueKind::LoadStore,
            FuClass::Alu | FuClass::Shift | FuClass::Nop => QueueKind::Integer,
            FuClass::FpAdd | FuClass::FpMul | FuClass::FpDiv => QueueKind::Fp,
        }
    }

    pub fn index(self) -> usize {
        QueueKind::ALL.iter().position(|q| *q == self).unwrap()
    }

    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Branch => "BR",
            QueueKind::LoadStore => "LDST",
            QueueKind::Integer => "ALU",
            QueueKind::Fp => "FP",
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Instructions fetched/dispatched per cycle ("in-order fetch and
    /// dispatch of up to four instructions per cycle").
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Active-list (reorder buffer) entries.
    pub rob_size: usize,
    /// Reservation-station capacities, indexed by [`QueueKind::index`].
    pub queue_size: [usize; 4],
    /// Functional-unit counts per class: 2 ALUs, 1 shifter, 1 load/store,
    /// 1 branch, 1 each of the FP pipes.
    pub fu_count: [usize; 8],
    /// Maximum unresolved conditional branches in flight (the R10000 keeps
    /// four shadow register maps).
    pub max_inflight_branches: usize,
    /// Extra cycles after a mispredicted branch resolves before fetch
    /// restarts (map restore).
    pub mispredict_recovery: u64,
    /// Front-end depth: cycles between fetch and earliest issue (the
    /// R10000 decodes/renames/dispatches over multiple stages).  Deepens
    /// the effective misprediction penalty.
    pub frontend_depth: u64,
    pub latencies: Latencies,
    /// Branch history table entries (power of two).
    pub bht_entries: usize,
    /// BTB sets (power of two).
    pub btb_sets: usize,
    /// Instruction cache: (total bytes, line bytes, ways).
    pub icache: (usize, usize, usize),
    /// Data cache: (total bytes, line bytes, ways).
    pub dcache: (usize, usize, usize),
}

impl MachineConfig {
    /// The R10000-like configuration of Section 6.
    pub fn r10000() -> MachineConfig {
        MachineConfig {
            fetch_width: 4,
            commit_width: 4,
            rob_size: 32,
            // BR queue = the R10000's 4-entry branch stack; 16-entry
            // address, integer and FP queues.
            queue_size: [4, 16, 16, 16],
            fu_count: fu_counts(2, 1, 1, 1, 1, 1, 1),
            max_inflight_branches: 4,
            mispredict_recovery: 3,
            frontend_depth: 2,
            latencies: Latencies::table2(),
            bht_entries: 512,
            btb_sets: 64,
            icache: (32 * 1024, 32, 2),
            dcache: (32 * 1024, 32, 2),
        }
    }

    pub fn fus_for(&self, c: FuClass) -> usize {
        self.fu_count[class_idx(c)]
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::r10000()
    }
}

/// Dense index for [`FuClass`] arrays (same order as `FuClass::ALL`).
pub fn class_idx(c: FuClass) -> usize {
    c.index()
}

fn fu_counts(
    alu: usize,
    sft: usize,
    ldst: usize,
    br: usize,
    fpadd: usize,
    fpmul: usize,
    fpdiv: usize,
) -> [usize; 8] {
    let mut out = [0; 8];
    out[class_idx(FuClass::Alu)] = alu;
    out[class_idx(FuClass::Shift)] = sft;
    out[class_idx(FuClass::LoadStore)] = ldst;
    out[class_idx(FuClass::Branch)] = br;
    out[class_idx(FuClass::FpAdd)] = fpadd;
    out[class_idx(FuClass::FpMul)] = fpmul;
    out[class_idx(FuClass::FpDiv)] = fpdiv;
    // Nops don't need a functional unit; give them "infinite" slots via a
    // sentinel handled in the pipeline (a nop issues without a unit).
    out[class_idx(FuClass::Nop)] = usize::MAX;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_latencies() {
        let l = Latencies::table2();
        assert_eq!(l.for_class(FuClass::Alu), 1);
        assert_eq!(l.for_class(FuClass::LoadStore), 2);
        assert_eq!(l.for_class(FuClass::Shift), 1);
        assert_eq!(l.for_class(FuClass::FpAdd), 3);
        assert_eq!(l.for_class(FuClass::FpMul), 3);
        assert_eq!(l.for_class(FuClass::FpDiv), 3);
        assert_eq!(l.cache_miss_penalty, 6);
    }

    #[test]
    fn queue_routing() {
        assert_eq!(QueueKind::for_class(FuClass::Alu), QueueKind::Integer);
        assert_eq!(QueueKind::for_class(FuClass::Shift), QueueKind::Integer);
        assert_eq!(
            QueueKind::for_class(FuClass::LoadStore),
            QueueKind::LoadStore
        );
        assert_eq!(QueueKind::for_class(FuClass::Branch), QueueKind::Branch);
        assert_eq!(QueueKind::for_class(FuClass::FpMul), QueueKind::Fp);
    }

    #[test]
    fn r10000_shape() {
        let c = MachineConfig::r10000();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.fus_for(FuClass::Alu), 2);
        assert_eq!(c.fus_for(FuClass::Shift), 1);
        assert_eq!(c.queue_size[QueueKind::Integer.index()], 16);
        assert_eq!(c.bht_entries, 512);
        assert_eq!(c.max_inflight_branches, 4);
    }
}
