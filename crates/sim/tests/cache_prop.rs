//! Property tests on the cache model and the pipeline's conservation laws.

use guardspec_ir::builder::*;
use guardspec_ir::reg::r;
use guardspec_predict::Scheme;
use guardspec_sim::{simulate_program, Cache, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// hits + misses == accesses, and a repeat of the same address right
    /// after an access always hits.
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..1_000_000, 1..400)) {
        let mut c = Cache::new(1024, 32, 2);
        for (i, &a) in addrs.iter().enumerate() {
            c.access(a);
            prop_assert!(c.access(a), "immediate re-access must hit");
            prop_assert_eq!(c.hits() + c.misses(), 2 * (i as u64 + 1));
        }
    }

    /// The pipeline commits exactly the functional retirement count, for
    /// arbitrary loop trip counts, under every scheme.
    #[test]
    fn commit_conservation(n in 1i64..300) {
        let mut fb = FuncBuilder::new("c");
        fb.block("e");
        fb.li(r(1), n);
        fb.block("loop");
        fb.andi(r(2), r(1), 3);
        fb.beq(r(2), r(0), "skip");
        fb.block("work");
        fb.addi(r(3), r(3), 1);
        fb.block("skip");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.sw(r(3), r(0), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        for scheme in Scheme::ALL {
            let (stats, exec) = simulate_program(&prog, scheme, &cfg).unwrap();
            prop_assert_eq!(stats.committed_total, exec.summary.retired);
            prop_assert!(stats.cycles >= exec.summary.retired / 4,
                "cannot beat the 4-wide commit bound");
        }
    }

    /// Perfect prediction is never slower than the 2-bit scheme.
    #[test]
    fn perfect_dominates_twobit(n in 1i64..200, stride in 1i64..5) {
        let mut fb = FuncBuilder::new("p");
        fb.block("e");
        fb.li(r(1), 0);
        fb.li(r(9), n);
        fb.block("loop");
        fb.mul(r(2), r(1), r(1));
        fb.andi(r(2), r(2), 1);
        fb.beq(r(2), r(0), "skip");
        fb.block("work");
        fb.addi(r(3), r(3), stride);
        fb.block("skip");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let cfg = MachineConfig::r10000();
        let (two, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).unwrap();
        let (perf, _) = simulate_program(&prog, Scheme::Perfect, &cfg).unwrap();
        prop_assert!(perf.cycles <= two.cycles);
    }
}
