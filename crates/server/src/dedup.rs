//! In-flight request dedup: concurrent clients asking the same question
//! join one job and all receive its published outcome.
//!
//! The map is keyed by [`crate::protocol::request_key`].  The first
//! arrival becomes the **owner** (it schedules the job and must eventually
//! [`FlightMap::publish`]); later arrivals while the flight is open become
//! **joiners**.  Two joining styles share one flight:
//!
//! * [`FlightMap::enter`] blocks the calling thread until the outcome
//!   lands (the historical thread-per-connection style, kept for tests);
//! * [`FlightMap::enter_async`] registers a callback instead — the event
//!   loop's style, where no thread may ever block.  Callbacks run on the
//!   publisher's thread, so they must be cheap (the server's push a
//!   completion and poke an eventfd).
//!
//! Publishing removes the entry — a request arriving *after* publication
//! starts a fresh flight, which is correct (it will hit the disk cache)
//! and keeps outcomes from pinning memory forever.
//!
//! The owner publishes *whatever happened*, including rejection: if the
//! owner's enqueue bounced off a full queue, joiners get the same 429 —
//! never a hang.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// What a flight resolved to.  Cheap to clone — the payload is shared.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The stable artifact JSON (pretty, exactly the response body).
    Done(Arc<String>),
    /// Admission control refused the job.
    Rejected { retry_after_ms: u64 },
    /// The job panicked or failed; message for the client.
    Failed(String),
    /// The server began draining before the job could be queued.
    Draining,
}

/// A callback fired exactly once with the flight's outcome.
pub type Waiter = Box<dyn FnOnce(Outcome) + Send>;

struct FlightState {
    outcome: Option<Outcome>,
    waiters: Vec<Waiter>,
    /// The owner's trace id, when the owning request is traced — joiners
    /// read it to link their `dedup.join` span to the owner's timeline.
    trace_id: Option<String>,
}

struct Flight {
    state: Mutex<FlightState>,
    published: Condvar,
}

/// The owner's handle on its own flight.  Holding the `Arc` directly means
/// the owner can [`FlightTicket::wait`] for a worker's publication without
/// re-entering the map — immune to the race where the worker publishes
/// (removing the entry) before the owner starts waiting.
pub struct FlightTicket {
    flight: Arc<Flight>,
}

impl FlightTicket {
    /// Block until someone publishes this flight's outcome.
    pub fn wait(self) -> Outcome {
        let mut st = self.flight.state.lock().unwrap();
        while st.outcome.is_none() {
            st = self.flight.published.wait(st).unwrap();
        }
        st.outcome.clone().unwrap()
    }
}

/// What `enter` decided for this arrival.
pub enum Entered {
    /// First arrival: run the job, then `publish` (or `wait` on the ticket
    /// after handing the job to a worker that will publish).
    Owner(FlightTicket),
    /// Duplicate arrival: the flight's outcome, once published.
    Joined(Outcome),
}

#[derive(Default)]
pub struct FlightMap {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightMap {
    pub fn new() -> FlightMap {
        FlightMap::default()
    }

    fn enter_flight(&self, key: &str) -> (Arc<Flight>, bool) {
        let mut map = self.flights.lock().unwrap();
        match map.get(key) {
            Some(f) => (f.clone(), false),
            None => {
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState {
                        outcome: None,
                        waiters: Vec::new(),
                        trace_id: None,
                    }),
                    published: Condvar::new(),
                });
                map.insert(key.to_string(), flight.clone());
                (flight, true)
            }
        }
    }

    /// Enter the flight for `key`.  Owners return immediately; joiners
    /// block until the owner publishes.
    pub fn enter(&self, key: &str) -> Entered {
        let (flight, owner) = self.enter_flight(key);
        if owner {
            return Entered::Owner(FlightTicket { flight });
        }
        let mut st = flight.state.lock().unwrap();
        while st.outcome.is_none() {
            st = flight.published.wait(st).unwrap();
        }
        Entered::Joined(st.outcome.clone().unwrap())
    }

    /// Non-blocking entry: `waiter` fires with the outcome whenever it
    /// publishes (immediately, on this thread, if it already has — the
    /// flight may have published between map lookup and registration).
    /// Returns whether this arrival owns the flight and must schedule the
    /// job that eventually publishes.
    pub fn enter_async(&self, key: &str, waiter: Waiter) -> bool {
        let (flight, owner) = self.enter_flight(key);
        let fire_now = {
            let mut st = flight.state.lock().unwrap();
            match st.outcome.clone() {
                Some(o) => Some((waiter, o)),
                None => {
                    st.waiters.push(waiter);
                    None
                }
            }
        };
        if let Some((w, o)) = fire_now {
            w(o);
        }
        owner
    }

    /// Publish the owner's outcome: wake every blocking joiner and fire
    /// every registered callback (on this thread, outside the locks).  The
    /// entry is removed first, so arrivals from this instant on start a
    /// new flight.
    pub fn publish(&self, key: &str, outcome: Outcome) {
        let flight = self
            .flights
            .lock()
            .unwrap()
            .remove(key)
            .expect("publish without an open flight");
        let waiters = {
            let mut st = flight.state.lock().unwrap();
            st.outcome = Some(outcome.clone());
            std::mem::take(&mut st.waiters)
        };
        flight.published.notify_all();
        for w in waiters {
            w(outcome.clone());
        }
    }

    /// Flights currently open (owned, not yet published).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }

    /// Tag the open flight for `key` with its owner's trace id (no-op if
    /// the flight already published).
    pub fn set_trace(&self, key: &str, trace_id: &str) {
        if let Some(f) = self.flights.lock().unwrap().get(key) {
            f.state.lock().unwrap().trace_id = Some(trace_id.to_string());
        }
    }

    /// The owner's trace id for the open flight on `key`, if any.
    pub fn trace_of(&self, key: &str) -> Option<String> {
        let f = self.flights.lock().unwrap().get(key)?.clone();
        let st = f.state.lock().unwrap();
        st.trace_id.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn joiners_receive_the_owners_outcome() {
        let map = Arc::new(FlightMap::new());
        let owners = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let map = map.clone();
            let owners = owners.clone();
            handles.push(std::thread::spawn(move || match map.enter("k") {
                Entered::Owner(_ticket) => {
                    owners.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    map.publish("k", Outcome::Done(Arc::new("payload".to_string())));
                    "owner".to_string()
                }
                Entered::Joined(Outcome::Done(s)) => s.as_str().to_string(),
                Entered::Joined(other) => panic!("unexpected {other:?}"),
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one owner; with the 50ms hold, at least one thread joined
        // (typically all seven — but scheduling can start threads late, so
        // only the ownership invariant is asserted strictly).
        assert_eq!(owners.load(Ordering::SeqCst), 1);
        assert!(results.iter().filter(|r| *r == "owner").count() == 1);
        assert!(results.iter().all(|r| r == "owner" || r == "payload"));
        assert_eq!(map.in_flight(), 0);
    }

    #[test]
    fn publication_closes_the_flight() {
        let map = FlightMap::new();
        assert!(matches!(map.enter("k"), Entered::Owner(_)));
        assert_eq!(map.in_flight(), 1);
        map.publish("k", Outcome::Rejected { retry_after_ms: 9 });
        assert_eq!(map.in_flight(), 0);
        // The next arrival is a fresh owner, not a joiner of stale state.
        assert!(matches!(map.enter("k"), Entered::Owner(_)));
        map.publish("k", Outcome::Draining);
    }

    #[test]
    fn owner_ticket_survives_publication_racing_ahead_of_wait() {
        // The worker may publish (removing the map entry) before the owner
        // starts waiting; the ticket's Arc still carries the outcome.
        let map = Arc::new(FlightMap::new());
        let Entered::Owner(ticket) = map.enter("k") else {
            panic!("first arrival must own");
        };
        map.publish("k", Outcome::Done(Arc::new("late".to_string())));
        match ticket.wait() {
            Outcome::Done(s) => assert_eq!(s.as_str(), "late"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn async_waiters_fire_on_publish_in_registration_order() {
        let map = FlightMap::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let push = |tag: &'static str| {
            let log = log.clone();
            Box::new(move |o: Outcome| {
                log.lock()
                    .unwrap()
                    .push((tag, matches!(o, Outcome::Done(_))));
            }) as Waiter
        };
        assert!(map.enter_async("k", push("owner")));
        assert!(!map.enter_async("k", push("join1")));
        assert!(!map.enter_async("k", push("join2")));
        assert!(
            log.lock().unwrap().is_empty(),
            "nothing fires before publish"
        );
        map.publish("k", Outcome::Done(Arc::new("x".to_string())));
        assert_eq!(
            log.lock().unwrap().as_slice(),
            [("owner", true), ("join1", true), ("join2", true)]
        );
        assert_eq!(map.in_flight(), 0);
    }

    #[test]
    fn flight_trace_ids_live_and_die_with_the_flight() {
        let map = FlightMap::new();
        assert!(map.enter_async("k", Box::new(|_| {})));
        assert_eq!(map.trace_of("k"), None);
        map.set_trace("k", "ab12cd34-s0");
        assert_eq!(map.trace_of("k"), Some("ab12cd34-s0".to_string()));
        map.publish("k", Outcome::Draining);
        assert_eq!(map.trace_of("k"), None);
        // Tagging a published (absent) flight is a no-op, not a panic.
        map.set_trace("k", "zz");
        assert_eq!(map.trace_of("k"), None);
    }

    #[test]
    fn mixed_blocking_and_async_joiners_share_one_flight() {
        let map = Arc::new(FlightMap::new());
        assert!(map.enter_async("k", Box::new(|_| {})));
        let blocked = {
            let map = map.clone();
            std::thread::spawn(move || match map.enter("k") {
                Entered::Joined(Outcome::Done(s)) => s.as_str().to_string(),
                _ => panic!("must join the async-owned flight"),
            })
        };
        // Give the blocking joiner a moment to park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        map.publish("k", Outcome::Done(Arc::new("both".to_string())));
        assert_eq!(blocked.join().unwrap(), "both");
    }
}
