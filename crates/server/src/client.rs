//! Client-side fan-out and merge (the `gsc` binary's engine).
//!
//! Given `M` servers, each cell of a sweep is routed to shard
//! `cell_shard_hash % M` — the same pure function the daemons enforce —
//! and the `M` partial stable artifacts are reassembled into one artifact
//! **byte-identical** to what a single offline run of the full sweep
//! emits.  The merge is possible because every sub-request carries the
//! full workload list (profiles are cheap and cached), so all shards agree
//! on the `workloads` array and only the `cells` arrays differ.

use crate::http;
use crate::protocol::{request_to_json, RunRequest};
use crate::shard::split_request;
use guardspec_harness::{json, Json};
use std::time::Duration;

/// How many 429s a single sub-request tolerates before giving up.
const MAX_RETRIES: u32 = 20;

/// POST `req` to `addr`, honouring 429 retry hints.  Returns the response
/// body (the stable artifact JSON) on 200.
pub fn post_run(addr: &str, req: &RunRequest) -> Result<String, String> {
    let body = request_to_json(req).to_compact();
    for _ in 0..MAX_RETRIES {
        let (status, resp) = http::post_json(addr, "/run", &body)
            .map_err(|e| format!("POST {addr}/run failed: {e}"))?;
        match status {
            200 => return Ok(resp),
            429 => {
                let wait_ms = json::parse(&resp)
                    .ok()
                    .and_then(|j| j.get("retry_after_ms").and_then(Json::as_u64))
                    .unwrap_or(250);
                std::thread::sleep(Duration::from_millis(wait_ms.clamp(10, 5_000)));
            }
            _ => return Err(format!("{addr}/run returned {status}: {resp}")),
        }
    }
    Err(format!(
        "{addr}/run still refusing after {MAX_RETRIES} retries"
    ))
}

/// Fan `req` across `servers` (shard `k` of `servers.len()` goes to
/// `servers[k]`) and merge the partial artifacts back into one stable
/// artifact, byte-identical to an offline run of the whole sweep.
pub fn run_fanout(servers: &[String], req: &RunRequest) -> Result<String, String> {
    if servers.is_empty() {
        return Err("no servers given".to_string());
    }
    if servers.len() == 1 {
        return post_run(&servers[0], req);
    }
    let (parts, indices) = split_request(req, servers.len() as u64);
    let handles: Vec<_> = parts
        .into_iter()
        .zip(servers.iter().cloned())
        .map(|(part, addr)| std::thread::spawn(move || post_run(&addr, &part)))
        .collect();
    let mut bodies = Vec::with_capacity(handles.len());
    for h in handles {
        bodies.push(
            h.join()
                .map_err(|_| "client thread panicked".to_string())??,
        );
    }
    merge_shard_bodies(&bodies, &indices)
}

/// Reassemble `M` partial stable artifacts into the full one.  `indices[k]`
/// maps shard `k`'s cells back to their positions in the original sweep.
pub fn merge_shard_bodies(bodies: &[String], indices: &[Vec<usize>]) -> Result<String, String> {
    assert_eq!(bodies.len(), indices.len());
    let parsed: Vec<Json> = bodies
        .iter()
        .map(|b| json::parse(b))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("unparseable shard response: {e}"))?;
    let field = |j: &Json, name: &str| -> Result<Json, String> {
        j.get(name)
            .cloned()
            .ok_or_else(|| format!("shard response lacks {name:?}"))
    };
    let first = &parsed[0];
    let (experiment, scale) = (field(first, "experiment")?, field(first, "scale")?);
    let workloads = field(first, "workloads")?;
    for (k, j) in parsed.iter().enumerate().skip(1) {
        for name in ["experiment", "scale", "workloads"] {
            if field(j, name)?.to_compact() != field(first, name)?.to_compact() {
                return Err(format!("shard {k} disagrees on {name:?}"));
            }
        }
    }
    let total: usize = indices.iter().map(Vec::len).sum();
    let mut cells: Vec<Option<Json>> = vec![None; total];
    for (k, (j, idx)) in parsed.iter().zip(indices).enumerate() {
        let got = field(j, "cells")?;
        let got = got
            .as_arr()
            .ok_or_else(|| format!("shard {k} cells is not an array"))?;
        if got.len() != idx.len() {
            return Err(format!(
                "shard {k} returned {} cells, expected {}",
                got.len(),
                idx.len()
            ));
        }
        for (cell, &orig) in got.iter().zip(idx) {
            cells[orig] = Some(cell.clone());
        }
    }
    let cells: Vec<Json> = cells
        .into_iter()
        .map(|c| c.ok_or_else(|| "merge left a cell unfilled".to_string()))
        .collect::<Result<_, _>>()?;
    Ok(Json::obj(vec![
        ("experiment", experiment),
        ("scale", scale),
        ("workloads", workloads),
        ("cells", Json::Arr(cells)),
    ])
    .to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_body(cells: &[(&str, u64)]) -> String {
        Json::obj(vec![
            ("experiment", Json::str("t")),
            ("scale", Json::str("test")),
            ("workloads", Json::Arr(vec![Json::str("w")])),
            (
                "cells",
                Json::Arr(
                    cells
                        .iter()
                        .map(|(l, v)| {
                            Json::obj(vec![("label", Json::str(*l)), ("v", Json::U64(*v))])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    #[test]
    fn merge_restores_original_cell_order() {
        // Original order: a(0) b(1) c(2) d(3); shard 0 owns {b, d},
        // shard 1 owns {c, a}.
        let b0 = shard_body(&[("b", 1), ("d", 3)]);
        let b1 = shard_body(&[("c", 2), ("a", 0)]);
        let merged = merge_shard_bodies(&[b0, b1], &[vec![1, 3], vec![2, 0]]).unwrap();
        let j = json::parse(&merged).unwrap();
        let labels: Vec<&str> = j
            .get("cells")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|c| c.get("label").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(labels, ["a", "b", "c", "d"]);
    }

    #[test]
    fn merge_rejects_disagreeing_shards() {
        let b0 = shard_body(&[("a", 0)]);
        let mut b1 = shard_body(&[("b", 1)]);
        b1 = b1.replace("\"test\"", "\"small\"");
        let err = merge_shard_bodies(&[b0, b1], &[vec![0], vec![1]]).unwrap_err();
        assert!(err.contains("disagrees on \"scale\""), "{err}");
    }

    #[test]
    fn merge_rejects_wrong_cell_count() {
        let b0 = shard_body(&[("a", 0), ("b", 1)]);
        let err = merge_shard_bodies(&[b0], &[vec![0]]).unwrap_err();
        assert!(err.contains("returned 2 cells, expected 1"), "{err}");
    }
}
