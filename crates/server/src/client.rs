//! Client-side fan-out and merge (the `gsc` binary's engine).
//!
//! Given `M` servers, each cell of a sweep is routed to shard
//! `cell_shard_hash % M` — the same pure function the daemons enforce —
//! and the `M` partial stable artifacts are reassembled into one artifact
//! **byte-identical** to what a single offline run of the full sweep
//! emits.  The merge is possible because every sub-request carries the
//! full workload list (profiles are cheap and cached), so all shards agree
//! on the `workloads` array and only the `cells` arrays differ.

use crate::http::ClientConn;
use crate::protocol::{request_to_json, RunRequest};
use crate::shard::split_request;
use guardspec_harness::hash::StableHasher;
use guardspec_harness::{json, Json};
use std::time::Duration;

/// How many 429s a single sub-request tolerates before giving up.
const MAX_RETRIES: u32 = 20;

/// What a fan-out cost beyond the artifact itself: ammunition for the
/// `gsc` stderr summary and the loadgen benchmark.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// 429-triggered retries across all shards.
    pub retries: u64,
    /// TCP connections opened across all shards (1 per shard on a healthy
    /// keep-alive run, regardless of retries).
    pub connections_opened: u64,
}

/// The server's `retry_after_ms` hint, plus deterministic jitter (up to
/// +25%, from a stable hash of the attempt and address) so a herd of
/// rejected clients doesn't re-arrive in lockstep and bounce again.
fn backoff_ms(hint_ms: u64, attempt: u32, addr: &str) -> u64 {
    let base = hint_ms.clamp(10, 5_000);
    let mut h = StableHasher::new();
    h.write_str("retry-jitter");
    h.write_str(addr);
    h.write_u64(attempt as u64);
    let jitter = u64::from_str_radix(&h.finish_hex()[..8], 16).unwrap_or(0) % (base / 4 + 1);
    base + jitter
}

/// POST `req` to the server behind `conn` (reusing its keep-alive
/// connection), honouring 429 `retry_after_ms` hints with jitter.
/// Returns the response body (the stable artifact JSON) on 200 and
/// accumulates 429 retries into `retries`.
pub fn post_run_on(
    conn: &mut ClientConn,
    addr: &str,
    req: &RunRequest,
    retries: &mut u64,
) -> Result<String, String> {
    let body = request_to_json(req).to_compact();
    for attempt in 0..MAX_RETRIES {
        let resp = conn
            .request("POST", "/run", body.as_bytes())
            .map_err(|e| format!("POST {addr}/run failed: {e}"))?;
        let text = String::from_utf8_lossy(&resp.body).to_string();
        match resp.status {
            200 => return Ok(text),
            429 => {
                *retries += 1;
                let hint = json::parse(&text)
                    .ok()
                    .and_then(|j| j.get("retry_after_ms").and_then(Json::as_u64))
                    .unwrap_or(250);
                std::thread::sleep(Duration::from_millis(backoff_ms(hint, attempt, addr)));
            }
            status => return Err(format!("{addr}/run returned {status}: {text}")),
        }
    }
    Err(format!(
        "{addr}/run still refusing after {MAX_RETRIES} retries"
    ))
}

/// POST `req` to `addr` on a fresh connection.  Kept for one-shot callers;
/// fan-out uses [`post_run_on`] with a per-shard keep-alive connection.
pub fn post_run(addr: &str, req: &RunRequest) -> Result<String, String> {
    let mut conn = ClientConn::new(addr);
    post_run_on(&mut conn, addr, req, &mut 0)
}

/// Fan `req` across `servers` (shard `k` of `servers.len()` goes to
/// `servers[k]`) and merge the partial artifacts back into one stable
/// artifact, byte-identical to an offline run of the full sweep.
pub fn run_fanout(servers: &[String], req: &RunRequest) -> Result<String, String> {
    run_fanout_stats(servers, req).map(|(body, _)| body)
}

/// [`run_fanout`] plus [`ClientStats`].  Each shard gets one keep-alive
/// connection for its whole request/retry conversation.
pub fn run_fanout_stats(
    servers: &[String],
    req: &RunRequest,
) -> Result<(String, ClientStats), String> {
    if servers.is_empty() {
        return Err("no servers given".to_string());
    }
    let one_shard = |addr: &str, part: &RunRequest| -> Result<(String, ClientStats), String> {
        let mut conn = ClientConn::new(addr);
        let mut retries = 0u64;
        let body = post_run_on(&mut conn, addr, part, &mut retries)?;
        Ok((
            body,
            ClientStats {
                retries,
                connections_opened: conn.connections_opened(),
            },
        ))
    };
    if servers.len() == 1 {
        return one_shard(&servers[0], req);
    }
    let (parts, indices) = split_request(req, servers.len() as u64);
    let handles: Vec<_> = parts
        .into_iter()
        .zip(servers.iter().cloned())
        .map(|(part, addr)| std::thread::spawn(move || one_shard(&addr, &part)))
        .collect();
    let mut bodies = Vec::with_capacity(handles.len());
    let mut stats = ClientStats::default();
    for h in handles {
        let (body, s) = h
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        stats.retries += s.retries;
        stats.connections_opened += s.connections_opened;
        bodies.push(body);
    }
    Ok((merge_shard_bodies(&bodies, &indices)?, stats))
}

/// Reassemble `M` partial stable artifacts into the full one.  `indices[k]`
/// maps shard `k`'s cells back to their positions in the original sweep.
pub fn merge_shard_bodies(bodies: &[String], indices: &[Vec<usize>]) -> Result<String, String> {
    assert_eq!(bodies.len(), indices.len());
    let parsed: Vec<Json> = bodies
        .iter()
        .map(|b| json::parse(b))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("unparseable shard response: {e}"))?;
    let field = |j: &Json, name: &str| -> Result<Json, String> {
        j.get(name)
            .cloned()
            .ok_or_else(|| format!("shard response lacks {name:?}"))
    };
    let first = &parsed[0];
    let (experiment, scale) = (field(first, "experiment")?, field(first, "scale")?);
    let workloads = field(first, "workloads")?;
    for (k, j) in parsed.iter().enumerate().skip(1) {
        for name in ["experiment", "scale", "workloads"] {
            if field(j, name)?.to_compact() != field(first, name)?.to_compact() {
                return Err(format!("shard {k} disagrees on {name:?}"));
            }
        }
    }
    let total: usize = indices.iter().map(Vec::len).sum();
    let mut cells: Vec<Option<Json>> = vec![None; total];
    for (k, (j, idx)) in parsed.iter().zip(indices).enumerate() {
        let got = field(j, "cells")?;
        let got = got
            .as_arr()
            .ok_or_else(|| format!("shard {k} cells is not an array"))?;
        if got.len() != idx.len() {
            return Err(format!(
                "shard {k} returned {} cells, expected {}",
                got.len(),
                idx.len()
            ));
        }
        for (cell, &orig) in got.iter().zip(idx) {
            cells[orig] = Some(cell.clone());
        }
    }
    let cells: Vec<Json> = cells
        .into_iter()
        .map(|c| c.ok_or_else(|| "merge left a cell unfilled".to_string()))
        .collect::<Result<_, _>>()?;
    Ok(Json::obj(vec![
        ("experiment", experiment),
        ("scale", scale),
        ("workloads", workloads),
        ("cells", Json::Arr(cells)),
    ])
    .to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_body(cells: &[(&str, u64)]) -> String {
        Json::obj(vec![
            ("experiment", Json::str("t")),
            ("scale", Json::str("test")),
            ("workloads", Json::Arr(vec![Json::str("w")])),
            (
                "cells",
                Json::Arr(
                    cells
                        .iter()
                        .map(|(l, v)| {
                            Json::obj(vec![("label", Json::str(*l)), ("v", Json::U64(*v))])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    #[test]
    fn merge_restores_original_cell_order() {
        // Original order: a(0) b(1) c(2) d(3); shard 0 owns {b, d},
        // shard 1 owns {c, a}.
        let b0 = shard_body(&[("b", 1), ("d", 3)]);
        let b1 = shard_body(&[("c", 2), ("a", 0)]);
        let merged = merge_shard_bodies(&[b0, b1], &[vec![1, 3], vec![2, 0]]).unwrap();
        let j = json::parse(&merged).unwrap();
        let labels: Vec<&str> = j
            .get("cells")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|c| c.get("label").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(labels, ["a", "b", "c", "d"]);
    }

    #[test]
    fn merge_rejects_disagreeing_shards() {
        let b0 = shard_body(&[("a", 0)]);
        let mut b1 = shard_body(&[("b", 1)]);
        b1 = b1.replace("\"test\"", "\"small\"");
        let err = merge_shard_bodies(&[b0, b1], &[vec![0], vec![1]]).unwrap_err();
        assert!(err.contains("disagrees on \"scale\""), "{err}");
    }

    #[test]
    fn backoff_honours_the_hint_with_bounded_jitter() {
        // Deterministic (same inputs, same wait), within [hint, hint*1.25],
        // and clamped away from silly hints.
        assert_eq!(
            backoff_ms(1000, 3, "127.0.0.1:80"),
            backoff_ms(1000, 3, "127.0.0.1:80")
        );
        for attempt in 0..10 {
            let w = backoff_ms(1000, attempt, "a:1");
            assert!((1000..=1250).contains(&w), "{w}");
        }
        assert!(backoff_ms(0, 0, "a:1") >= 10);
        assert!(backoff_ms(u64::MAX, 0, "a:1") <= 6_250);
        // Different attempts/addresses de-synchronise the herd.
        let spread: std::collections::HashSet<u64> =
            (0..10).map(|a| backoff_ms(1000, a, "a:1")).collect();
        assert!(spread.len() > 1, "jitter must actually vary");
    }

    #[test]
    fn merge_rejects_wrong_cell_count() {
        let b0 = shard_body(&[("a", 0), ("b", 1)]);
        let err = merge_shard_bodies(&[b0], &[vec![0]]).unwrap_err();
        assert!(err.contains("returned 2 cells, expected 1"), "{err}");
    }
}
