//! Single-threaded epoll event loop: the connection plane of `gsd`.
//!
//! The previous service layer spent a thread per connection and paid a
//! full TCP handshake per request.  This module replaces it with one
//! event-loop thread multiplexing every connection over `epoll` (raw
//! syscalls via the same thin-FFI style as `gsd`'s `signal()` drain —
//! no async runtime, no crates), plus the existing worker pool for the
//! actual simulation jobs.
//!
//! Division of labour:
//!
//! * **This thread** accepts, reads, parses (incrementally, via
//!   [`http::try_parse`]), dispatches to the [`Service`], and writes
//!   responses.  It never blocks on a socket and never computes.
//! * **Workers** run jobs and *complete* requests by pushing a
//!   [`Completion`] through the [`Wakeup`] (a mutexed vector plus an
//!   `eventfd` poke).  A [`Responder`] is the cloneable capability to do
//!   so for one specific request.
//!
//! Per-connection state machine:
//!
//! ```text
//!   read → rbuf → try_parse ─┬─ Partial   → wait for more bytes
//!                            ├─ Complete  → dispatch slot(seq), repeat
//!                            └─ Error     → synthetic error slot, close
//!   completions → slots[seq].done
//!   pump: slots flushed strictly in seq order  (pipelining keeps order)
//! ```
//!
//! Keep-alive is the default (HTTP/1.1 semantics, see
//! [`HttpRequest::keep_alive`]); a connection closes when the client
//! asks, after `max_conn_requests`, on a parse error, while draining, or
//! after `idle_timeout_ms` with nothing in flight.  Pipelining is
//! bounded by `pipeline_depth`: at the cap the connection's `EPOLLIN`
//! interest is dropped, so a flooding client is back-pressured by TCP
//! instead of ballooning `rbuf`.
//!
//! Streaming responses (`POST /run?stream=1`) hold their slot open:
//! `Responder::event` lines are flushed as chunked NDJSON the moment
//! they arrive, and the final [`Completion::Reply`] becomes a
//! `{"event":"result",...}` delimiter chunk followed by the artifact
//! body.  The HTTP status is always 200 on a stream; the real status
//! rides in the result event.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::raw::c_int;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::http::{self, HttpRequest, Parsed};

mod ffi {
    use std::os::raw::c_int;

    // x86-64 is the one ABI where the kernel's epoll_event is packed.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

/// Tuning knobs for the loop, all settable from `gsd` flags.
#[derive(Clone, Copy, Debug)]
pub struct EventLoopConfig {
    /// Close keep-alive connections idle (no request in flight) this long.
    pub idle_timeout_ms: u64,
    /// Close a connection after serving this many requests.
    pub max_conn_requests: u64,
    /// Per-connection cap on dispatched-but-unanswered pipelined requests.
    pub pipeline_depth: usize,
}

impl Default for EventLoopConfig {
    fn default() -> EventLoopConfig {
        EventLoopConfig {
            idle_timeout_ms: 30_000,
            max_conn_requests: 1000,
            pipeline_depth: 16,
        }
    }
}

/// What the application hands back to the loop for one request.
pub enum Completion {
    /// The final response.  For streaming slots this closes the stream
    /// with a result-event chunk + body chunks; `headers` are ignored
    /// there (chunked framing owns the wire format).
    Reply {
        token: u64,
        seq: u64,
        status: u16,
        headers: Vec<(String, String)>,
        body: Vec<u8>,
    },
    /// One NDJSON progress line for a streaming slot (ignored on
    /// non-streaming slots and on connections that already died).
    Event { token: u64, seq: u64, line: String },
}

/// Completion queue + `eventfd` doorbell.  Workers push from any thread;
/// the loop drains on wake-up.  `notify()` alone (no completion) is how
/// `begin_shutdown` kicks the loop into re-checking its drain condition.
pub struct Wakeup {
    queue: Mutex<Vec<Completion>>,
    efd: c_int,
}

impl Wakeup {
    pub fn new() -> io::Result<Wakeup> {
        let efd = unsafe { ffi::eventfd(0, ffi::EFD_NONBLOCK | ffi::EFD_CLOEXEC) };
        if efd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Wakeup {
            queue: Mutex::new(Vec::new()),
            efd,
        })
    }

    fn push(&self, c: Completion) {
        self.queue.lock().unwrap().push(c);
        self.notify();
    }

    /// Poke the loop without enqueuing anything.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe { ffi::write(self.efd, &one as *const u64 as *const u8, 8) };
    }

    fn drain(&self) -> Vec<Completion> {
        let mut buf = [0u8; 8];
        // Nonblocking: read until the counter is clear.
        while unsafe { ffi::read(self.efd, buf.as_mut_ptr(), 8) } == 8 {}
        std::mem::take(&mut *self.queue.lock().unwrap())
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        unsafe { ffi::close(self.efd) };
    }
}

/// The capability to answer one specific request.  Cloneable so the
/// application can stash it in a progress hook *and* a flight waiter.
#[derive(Clone)]
pub struct Responder {
    wake: Arc<Wakeup>,
    token: u64,
    seq: u64,
}

impl Responder {
    pub fn reply(&self, status: u16, headers: Vec<(String, String)>, body: Vec<u8>) {
        self.wake.push(Completion::Reply {
            token: self.token,
            seq: self.seq,
            status,
            headers,
            body,
        });
    }

    pub fn event(&self, line: &str) {
        self.wake.push(Completion::Event {
            token: self.token,
            seq: self.seq,
            line: line.to_string(),
        });
    }
}

/// What the loop needs from the application.  Implemented by the
/// server's `Shared`.
pub trait Service: Send + Sync + 'static {
    /// Handle one parsed request.  Must eventually cause exactly one
    /// `responder.reply(..)` (synchronously or from a worker); streaming
    /// requests may interleave `responder.event(..)` before it.
    fn handle(&self, req: HttpRequest, peer: SocketAddr, responder: Responder);
    /// True once shutdown began: new connections stop keeping alive.
    fn draining(&self) -> bool;
    /// True once the application side has no queued/executing work left.
    fn drained(&self) -> bool;
    fn metric_incr(&self, name: &str);
    fn metric_max(&self, name: &str, value: u64);
    /// Record a duration sample (nanoseconds) into a latency histogram.
    fn metric_time(&self, name: &str, ns: u64);
}

/// A finished response: status, extra headers, body.
type Reply = (u16, Vec<(String, String)>, Vec<u8>);

/// One request's place in the response order.
struct Slot {
    stream: bool,
    close_after: bool,
    /// Stream head bytes already emitted.
    started: bool,
    events: Vec<String>,
    done: Option<Reply>,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Dispatched-but-not-fully-written requests, keyed by sequence.
    slots: BTreeMap<u64, Slot>,
    next_seq: u64,
    next_write: u64,
    /// Requests dispatched over the connection's lifetime.
    dispatched: u64,
    last_activity: Instant,
    /// No more reads; close once every slot has flushed.
    closing: bool,
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            slots: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            dispatched: 0,
            last_activity: Instant::now(),
            closing: false,
            interest: ffi::EPOLLIN,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    fn quiescent(&self) -> bool {
        self.slots.is_empty() && self.flushed()
    }
}

fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
    let mut ev = ffi::EpollEvent { events, data };
    let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKEUP: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Run the loop until the service reports itself drained.  Owns the
/// listener; every connection socket lives and dies on this thread.
pub fn run_event_loop(
    listener: TcpListener,
    service: Arc<dyn Service>,
    wake: Arc<Wakeup>,
    cfg: EventLoopConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
    if epfd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Ensure the fd is released on every exit path below.
    struct EpollFd(c_int);
    impl Drop for EpollFd {
        fn drop(&mut self) {
            unsafe { ffi::close(self.0) };
        }
    }
    let epfd = EpollFd(epfd);

    epoll_ctl(
        epfd.0,
        ffi::EPOLL_CTL_ADD,
        listener.as_raw_fd(),
        ffi::EPOLLIN,
        TOKEN_LISTENER,
    )?;
    epoll_ctl(
        epfd.0,
        ffi::EPOLL_CTL_ADD,
        wake.efd,
        ffi::EPOLLIN,
        TOKEN_WAKEUP,
    )?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![ffi::EpollEvent { events: 0, data: 0 }; 64];

    loop {
        let n = unsafe { ffi::epoll_wait(epfd.0, events.as_mut_ptr(), events.len() as c_int, 100) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        // Wake-to-dispatch latency is measured from here: how long a
        // parsed request sits behind this iteration's other work.
        let t_wake = Instant::now();

        for ev in events.iter().take(n as usize) {
            let token = ev.data; // copy out: the struct may be packed
            match token {
                TOKEN_LISTENER => {
                    accept_all(&listener, epfd.0, &mut conns, &mut next_token, &*service)
                }
                TOKEN_WAKEUP => {} // drained below, every iteration
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        let bits = ev.events;
                        if bits & (ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP) != 0 {
                            read_conn(conn);
                        }
                        if bits & ffi::EPOLLOUT != 0 {
                            conn.last_activity = Instant::now();
                        }
                    }
                }
            }
        }

        for done in wake.drain() {
            match done {
                Completion::Reply {
                    token,
                    seq,
                    status,
                    headers,
                    body,
                } => {
                    if let Some(slot) = conns.get_mut(&token).and_then(|c| c.slots.get_mut(&seq)) {
                        slot.done = Some((status, headers, body));
                    }
                }
                Completion::Event { token, seq, line } => {
                    if let Some(slot) = conns.get_mut(&token).and_then(|c| c.slots.get_mut(&seq)) {
                        if slot.stream && slot.done.is_none() {
                            slot.events.push(line);
                        }
                    }
                }
            }
        }

        let now = Instant::now();
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            parse_loop(conn, token, &*service, &wake, &cfg, t_wake);
            let (alive, flush_ns) = pump(conn);
            if flush_ns > 0 {
                service.metric_time("conn.flush", flush_ns);
            }
            if !alive || (conn.closing && conn.quiescent()) {
                dead.push(token);
                continue;
            }
            // Reap idle keep-alive connections.
            if conn.quiescent()
                && !conn.closing
                && now.duration_since(conn.last_activity).as_millis() as u64 >= cfg.idle_timeout_ms
            {
                service.metric_incr("connections.reaped");
                dead.push(token);
                continue;
            }
            let mut want = 0u32;
            if !conn.closing && conn.slots.len() < cfg.pipeline_depth {
                want |= ffi::EPOLLIN;
            }
            if !conn.flushed() {
                want |= ffi::EPOLLOUT;
            }
            if want != conn.interest {
                let _ = epoll_ctl(
                    epfd.0,
                    ffi::EPOLL_CTL_MOD,
                    conn.stream.as_raw_fd(),
                    want,
                    token,
                );
                conn.interest = want;
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = epoll_ctl(epfd.0, ffi::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
            }
        }

        if service.draining() && service.drained() && conns.values().all(|c| c.quiescent()) {
            // Remaining connections are idle keep-alives; dropping the map
            // closes them.
            return Ok(());
        }
    }
}

fn accept_all(
    listener: &TcpListener,
    epfd: c_int,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    service: &dyn Service,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll_ctl(
                    epfd,
                    ffi::EPOLL_CTL_ADD,
                    stream.as_raw_fd(),
                    ffi::EPOLLIN,
                    token,
                )
                .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
                service.metric_incr("connections.opened");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Pull everything the socket has; never blocks.
fn read_conn(conn: &mut Conn) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closing = true;
                break;
            }
        }
    }
}

/// Dispatch every complete request in `rbuf`, up to the pipeline cap.
fn parse_loop(
    conn: &mut Conn,
    token: u64,
    service: &dyn Service,
    wake: &Arc<Wakeup>,
    cfg: &EventLoopConfig,
    t_wake: Instant,
) {
    while !conn.closing && conn.slots.len() < cfg.pipeline_depth {
        match http::try_parse(&conn.rbuf) {
            Parsed::Partial => break,
            Parsed::Complete { req, consumed } => {
                conn.rbuf.drain(..consumed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.dispatched += 1;
                if conn.dispatched > 1 {
                    service.metric_incr("connections.reused");
                }
                service.metric_max("pipeline.depth_max", conn.slots.len() as u64 + 1);
                let stream = req.method == "POST" && req.path == "/run" && req.query_flag("stream");
                let keep = req.keep_alive()
                    && conn.dispatched < cfg.max_conn_requests
                    && !service.draining();
                conn.slots.insert(
                    seq,
                    Slot {
                        stream,
                        close_after: !keep,
                        started: false,
                        events: Vec::new(),
                        done: None,
                    },
                );
                if !keep {
                    conn.closing = true;
                }
                let peer = conn
                    .stream
                    .peer_addr()
                    .unwrap_or_else(|_| "0.0.0.0:0".parse().unwrap());
                service.metric_time("loop.dispatch", t_wake.elapsed().as_nanos() as u64);
                service.handle(
                    req,
                    peer,
                    Responder {
                        wake: wake.clone(),
                        token,
                        seq,
                    },
                );
            }
            Parsed::Error { status, msg } => {
                // Answer what we can make sense of, then hang up: bytes
                // after a framing error are garbage.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let body = format!("{{\"error\":\"{msg}\"}}\n").into_bytes();
                conn.slots.insert(
                    seq,
                    Slot {
                        stream: false,
                        close_after: true,
                        started: false,
                        events: Vec::new(),
                        done: Some((
                            status,
                            vec![("Content-Type".to_string(), "application/json".to_string())],
                            body,
                        )),
                    },
                );
                conn.closing = true;
                conn.rbuf.clear();
                break;
            }
        }
    }
}

/// Encode finished slots (strictly in sequence order) into `wbuf` and
/// flush as much as the socket accepts.  Returns `(alive, flush_ns)`:
/// `alive` is false if the peer died; `flush_ns` is the time spent in
/// the write loop when any bytes actually moved (0 otherwise), so the
/// loop can histogram its per-connection flush cost.
fn pump(conn: &mut Conn) -> (bool, u64) {
    while let Some(slot) = conn.slots.get_mut(&conn.next_write) {
        if slot.stream {
            if !slot.started && (!slot.events.is_empty() || slot.done.is_some()) {
                conn.wbuf
                    .extend_from_slice(&http::encode_stream_head(!slot.close_after));
                slot.started = true;
            }
            for line in slot.events.drain(..) {
                let mut framed = line.into_bytes();
                framed.push(b'\n');
                conn.wbuf.extend_from_slice(&http::encode_chunk(&framed));
            }
            let Some((status, _headers, body)) = slot.done.take() else {
                break; // stream still open; later slots must wait
            };
            let result = format!("{{\"event\":\"result\",\"status\":{status}}}\n");
            conn.wbuf
                .extend_from_slice(&http::encode_chunk(result.as_bytes()));
            if !body.is_empty() {
                conn.wbuf.extend_from_slice(&http::encode_chunk(&body));
            }
            conn.wbuf.extend_from_slice(http::encode_last_chunk());
        } else {
            let Some((status, headers, body)) = slot.done.take() else {
                break;
            };
            let hdrs: Vec<(&str, String)> = headers
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let keep = !slot.close_after;
            conn.wbuf
                .extend_from_slice(&http::encode_response(status, &hdrs, &body, keep));
        }
        conn.slots.remove(&conn.next_write);
        conn.next_write += 1;
    }

    let t_flush = Instant::now();
    let wpos_before = conn.wpos;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return (false, 0),
            Ok(n) => {
                conn.wpos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return (false, 0),
        }
    }
    let flush_ns = if conn.wpos > wpos_before {
        t_flush.elapsed().as_nanos() as u64
    } else {
        0
    };
    if conn.flushed() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    (true, flush_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_queues_and_drains() {
        let wake = Wakeup::new().unwrap();
        wake.push(Completion::Event {
            token: 7,
            seq: 0,
            line: "a".to_string(),
        });
        wake.push(Completion::Reply {
            token: 7,
            seq: 0,
            status: 200,
            headers: Vec::new(),
            body: b"ok".to_vec(),
        });
        let drained = wake.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(&drained[0], Completion::Event { line, .. } if line == "a"));
        assert!(matches!(&drained[1], Completion::Reply { status: 200, .. }));
        assert!(wake.drain().is_empty());
    }

    #[test]
    fn pump_orders_pipelined_responses_by_sequence() {
        // Answer seq 1 before seq 0: nothing may flush until 0 lands.
        let (a, mut b) = local_pair();
        let mut conn = Conn::new(a);
        for seq in [0u64, 1] {
            conn.slots.insert(
                seq,
                Slot {
                    stream: false,
                    close_after: false,
                    started: false,
                    events: Vec::new(),
                    done: None,
                },
            );
        }
        conn.slots.get_mut(&1).unwrap().done = Some((200, Vec::new(), b"second".to_vec()));
        let (alive, flush_ns) = pump(&mut conn);
        assert!(alive);
        assert_eq!(flush_ns, 0, "no bytes moved, no flush sample");
        assert!(conn.wbuf.is_empty(), "seq 1 must wait for seq 0");
        conn.slots.get_mut(&0).unwrap().done = Some((200, Vec::new(), b"first".to_vec()));
        let (alive, flush_ns) = pump(&mut conn);
        assert!(alive);
        assert!(flush_ns > 0, "both responses flushed, sample recorded");
        assert!(conn.slots.is_empty());
        b.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .unwrap();
        let mut wire = Vec::new();
        let mut buf = [0u8; 4096];
        while !String::from_utf8_lossy(&wire).contains("second") {
            let n = b.read(&mut buf).expect("both responses on the wire");
            assert!(n > 0, "peer closed before both responses arrived");
            wire.extend_from_slice(&buf[..n]);
        }
        let wire = String::from_utf8_lossy(&wire).to_string();
        let first = wire.find("first").expect("first response on the wire");
        let second = wire.find("second").expect("second response on the wire");
        assert!(first < second, "responses must flush in request order");
    }

    fn local_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = l.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        (a, b)
    }
}
