//! The wire protocol: experiment requests as JSON, their canonical keys,
//! and resolution into the harness's [`ExperimentSpec`].
//!
//! A `/run` request body:
//!
//! ```json
//! {
//!   "name": "table3",
//!   "scale": "test",
//!   "client": "gsc",
//!   "observe": false,
//!   "sample": {"detail": 1000, "warmup": 1000, "interval": 20000},
//!   "workloads": [
//!     {"builtin": "compress"},
//!     {"name": "mine", "program": "<textual assembly>"},
//!     {"name": "mine2", "bin": "<hex-encoded words>"}
//!   ],
//!   "cells": [
//!     {"workload": 0, "label": "2-bit BP", "scheme": "2-bit BP",
//!      "options": "proposed" | {<every DriverOptions field>} | null,
//!      "config": "r10000" | {<every MachineConfig field>}}
//!   ]
//! }
//! ```
//!
//! The response body for a successful run is exactly the **stable** artifact
//! payload the bench binaries write with `--stable-json` — byte-identical,
//! because both sides render the same [`guardspec_harness::stable_json`]
//! value with the same writer.
//!
//! Two request hashes matter:
//!
//! * [`request_key`] — the in-flight dedup identity: a stable hash over the
//!   *resolved* request description (name, scale, observe, sampling
//!   parameters, every workload's program source, every cell's
//!   scheme/options/config).  Two concurrent
//!   clients posting semantically identical requests (whatever their JSON
//!   field order) produce one simulation job.
//! * [`cell_shard_hash`] — the sharding identity of one cell, computable by
//!   the client *without* running anything (it hashes request-level
//!   descriptors, not transformed program text, which only the server ever
//!   sees).  `gsc` routes each cell to shard `hash % M`.

use guardspec_core::{DriverOptions, FeedbackParams};
use guardspec_harness::args::parse_scale;
use guardspec_harness::hash::StableHasher;
use guardspec_harness::key::scale_tag;
use guardspec_harness::{codec, Json};
use guardspec_harness::{CellSpec, ExperimentSpec};
use guardspec_predict::Scheme;
use guardspec_sim::{Latencies, MachineConfig, SampleParams};
use guardspec_workloads::{extended_workloads, Scale, Workload};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// One workload slot of a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadReq {
    /// A named paper workload (`compress`, `espresso`, `xlisp`, `grep`,
    /// `ocean`), built at the request's scale with its golden results.
    Builtin(String),
    /// Ad-hoc textual assembly (no golden verification).
    Text { name: String, program: String },
    /// Ad-hoc binary-encoded program, hex words (no golden verification).
    Bin { name: String, hex: String },
}

impl WorkloadReq {
    /// Display name of the slot.
    pub fn name(&self) -> &str {
        match self {
            WorkloadReq::Builtin(n) => n,
            WorkloadReq::Text { name, .. } | WorkloadReq::Bin { name, .. } => name,
        }
    }

    /// The canonical source descriptor fed to both hashes.  Builtins hash
    /// by name (their text is a pure function of name + scale); ad-hoc
    /// programs hash by their full source.
    fn descriptor(&self) -> String {
        match self {
            WorkloadReq::Builtin(n) => format!("builtin:{n}"),
            WorkloadReq::Text { program, .. } => format!("text:{program}"),
            WorkloadReq::Bin { hex, .. } => format!("bin:{hex}"),
        }
    }
}

/// One cell of a request.
#[derive(Clone, Debug)]
pub struct CellReq {
    /// Index into [`RunRequest::workloads`].
    pub workload: usize,
    pub label: String,
    pub scheme: Scheme,
    /// Transform options; `None` simulates the untransformed program.
    pub options: Option<DriverOptions>,
    pub config: MachineConfig,
}

/// A parsed `/run` request.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Experiment name (the stable payload's `experiment` field).
    pub name: String,
    pub scale: Scale,
    /// Fairness identity for the admission queue (optional; the server
    /// falls back to the peer address).
    pub client: Option<String>,
    pub observe: bool,
    /// SMARTS-style interval sampling parameters; `None` runs the exact
    /// whole-trace simulation.  Sampled responses carry per-cell `sampling`
    /// estimate objects in the stable payload.
    pub sample: Option<SampleParams>,
    pub workloads: Vec<WorkloadReq>,
    pub cells: Vec<CellReq>,
}

// --- JSON encoding -------------------------------------------------------

/// Scheme from its stable label (the same string the tables print).
pub fn scheme_from_label(s: &str) -> Result<Scheme, String> {
    Scheme::ALL
        .into_iter()
        .find(|sch| sch.label() == s)
        .ok_or_else(|| format!("bad scheme {s:?} (want \"2-bit BP\"|\"Proposed\"|\"Perfect BP\")"))
}

/// Preset name → options, mirroring the ablation presets.
pub fn options_preset(name: &str) -> Result<DriverOptions, String> {
    match name {
        "baseline" => Ok(DriverOptions::baseline()),
        "speculation" => Ok(DriverOptions::speculation_only()),
        "guarded" => Ok(DriverOptions::guarded_only()),
        "conventional" => Ok(DriverOptions::conventional()),
        "proposed" => Ok(DriverOptions::proposed()),
        other => Err(format!(
            "bad options preset {other:?} (want baseline|speculation|guarded|conventional|proposed)"
        )),
    }
}

/// Every `DriverOptions` field, explicitly.  [`options_from_json`] requires
/// every field — a request that omits one is rejected rather than silently
/// defaulted, so a client and server disagreeing on defaults can never
/// alias two different experiments.
pub fn options_to_json(o: &DriverOptions) -> Json {
    let f = &o.feedback;
    Json::obj(vec![
        ("likely_threshold", Json::F64(f.likely_threshold)),
        ("convert_threshold", Json::F64(f.convert_threshold)),
        ("monotonic_toggle_max", Json::F64(f.monotonic_toggle_max)),
        ("seg_window", Json::U64(f.seg_window as u64)),
        ("seg_bias", Json::F64(f.seg_bias)),
        ("max_segments", Json::U64(f.max_segments as u64)),
        ("min_segment_frac", Json::F64(f.min_segment_frac)),
        ("max_period", Json::U64(f.max_period as u64)),
        ("period_agreement", Json::F64(f.period_agreement)),
        ("enable_likely", Json::Bool(o.enable_likely)),
        ("enable_ifconvert", Json::Bool(o.enable_ifconvert)),
        ("enable_split", Json::Bool(o.enable_split)),
        ("enable_speculation", Json::Bool(o.enable_speculation)),
        ("max_arm_len", Json::U64(o.max_arm_len as u64)),
        ("max_speculate_ops", Json::U64(o.max_speculate_ops as u64)),
        (
            "allow_speculative_loads",
            Json::Bool(o.allow_speculative_loads),
        ),
        (
            "max_likelies_per_site",
            Json::U64(o.max_likelies_per_site as u64),
        ),
        ("mispredict_penalty", Json::F64(o.mispredict_penalty)),
    ])
}

pub fn options_from_json(j: &Json) -> Result<DriverOptions, String> {
    if let Some(preset) = j.as_str() {
        return options_preset(preset);
    }
    Ok(DriverOptions {
        feedback: FeedbackParams {
            likely_threshold: f(j, "likely_threshold")?,
            convert_threshold: f(j, "convert_threshold")?,
            monotonic_toggle_max: f(j, "monotonic_toggle_max")?,
            seg_window: u(j, "seg_window")? as usize,
            seg_bias: f(j, "seg_bias")?,
            max_segments: u(j, "max_segments")? as usize,
            min_segment_frac: f(j, "min_segment_frac")?,
            max_period: u(j, "max_period")? as usize,
            period_agreement: f(j, "period_agreement")?,
        },
        enable_likely: b(j, "enable_likely")?,
        enable_ifconvert: b(j, "enable_ifconvert")?,
        enable_split: b(j, "enable_split")?,
        enable_speculation: b(j, "enable_speculation")?,
        max_arm_len: u(j, "max_arm_len")? as usize,
        max_speculate_ops: u(j, "max_speculate_ops")? as usize,
        allow_speculative_loads: b(j, "allow_speculative_loads")?,
        max_likelies_per_site: u(j, "max_likelies_per_site")? as usize,
        mispredict_penalty: f(j, "mispredict_penalty")?,
    })
}

/// Every `MachineConfig` field, explicitly (same no-defaults contract as
/// [`options_to_json`]; the string `"r10000"` is the one blessed shorthand).
pub fn config_to_json(c: &MachineConfig) -> Json {
    let l = &c.latencies;
    let usz = |v: usize| Json::U64(v as u64);
    let triple = |(a, b, c): (usize, usize, usize)| Json::Arr(vec![usz(a), usz(b), usz(c)]);
    Json::obj(vec![
        ("fetch_width", usz(c.fetch_width)),
        ("commit_width", usz(c.commit_width)),
        ("rob_size", usz(c.rob_size)),
        (
            "queue_size",
            Json::Arr(c.queue_size.iter().map(|&v| usz(v)).collect()),
        ),
        (
            "fu_count",
            Json::Arr(c.fu_count.iter().map(|&v| usz(v)).collect()),
        ),
        ("max_inflight_branches", usz(c.max_inflight_branches)),
        ("mispredict_recovery", Json::U64(c.mispredict_recovery)),
        ("frontend_depth", Json::U64(c.frontend_depth)),
        ("alu", Json::U64(l.alu)),
        ("ldst", Json::U64(l.ldst)),
        ("sft", Json::U64(l.sft)),
        ("fp_add", Json::U64(l.fp_add)),
        ("fp_mul", Json::U64(l.fp_mul)),
        ("fp_div", Json::U64(l.fp_div)),
        ("cache_miss_penalty", Json::U64(l.cache_miss_penalty)),
        ("bht_entries", usz(c.bht_entries)),
        ("btb_sets", usz(c.btb_sets)),
        ("icache", triple(c.icache)),
        ("dcache", triple(c.dcache)),
    ])
}

pub fn config_from_json(j: &Json) -> Result<MachineConfig, String> {
    if let Some(s) = j.as_str() {
        return match s {
            "r10000" => Ok(MachineConfig::r10000()),
            other => Err(format!("bad config preset {other:?} (want \"r10000\")")),
        };
    }
    let usz = |k: &str| -> Result<usize, String> { Ok(u(j, k)? as usize) };
    let arr = |k: &str| -> Result<Vec<u64>, String> {
        j.get(k)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("no array field {k:?}"))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| format!("bad entry in {k:?}")))
            .collect()
    };
    let quad = |k: &str| -> Result<[usize; 4], String> {
        let v = arr(k)?;
        if v.len() != 4 {
            return Err(format!("{k:?} wants 4 entries"));
        }
        Ok([v[0] as usize, v[1] as usize, v[2] as usize, v[3] as usize])
    };
    let oct = |k: &str| -> Result<[usize; 8], String> {
        let v = arr(k)?;
        if v.len() != 8 {
            return Err(format!("{k:?} wants 8 entries"));
        }
        let mut out = [0usize; 8];
        for (o, x) in out.iter_mut().zip(v) {
            *o = x as usize;
        }
        Ok(out)
    };
    let triple = |k: &str| -> Result<(usize, usize, usize), String> {
        let v = arr(k)?;
        if v.len() != 3 {
            return Err(format!("{k:?} wants 3 entries"));
        }
        Ok((v[0] as usize, v[1] as usize, v[2] as usize))
    };
    Ok(MachineConfig {
        fetch_width: usz("fetch_width")?,
        commit_width: usz("commit_width")?,
        rob_size: usz("rob_size")?,
        queue_size: quad("queue_size")?,
        fu_count: oct("fu_count")?,
        max_inflight_branches: usz("max_inflight_branches")?,
        mispredict_recovery: u(j, "mispredict_recovery")?,
        frontend_depth: u(j, "frontend_depth")?,
        latencies: Latencies {
            alu: u(j, "alu")?,
            ldst: u(j, "ldst")?,
            sft: u(j, "sft")?,
            fp_add: u(j, "fp_add")?,
            fp_mul: u(j, "fp_mul")?,
            fp_div: u(j, "fp_div")?,
            cache_miss_penalty: u(j, "cache_miss_penalty")?,
        },
        bht_entries: usz("bht_entries")?,
        btb_sets: usz("btb_sets")?,
        icache: triple("icache")?,
        dcache: triple("dcache")?,
    })
}

fn workload_to_json(w: &WorkloadReq) -> Json {
    match w {
        WorkloadReq::Builtin(n) => Json::obj(vec![("builtin", Json::str(n))]),
        WorkloadReq::Text { name, program } => Json::obj(vec![
            ("name", Json::str(name)),
            ("program", Json::str(program)),
        ]),
        WorkloadReq::Bin { name, hex } => {
            Json::obj(vec![("name", Json::str(name)), ("bin", Json::str(hex))])
        }
    }
}

fn workload_from_json(j: &Json) -> Result<WorkloadReq, String> {
    if let Some(n) = j.get("builtin").and_then(Json::as_str) {
        return Ok(WorkloadReq::Builtin(n.to_string()));
    }
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or("workload wants \"builtin\" or \"name\"")?
        .to_string();
    if let Some(p) = j.get("program").and_then(Json::as_str) {
        return Ok(WorkloadReq::Text {
            name,
            program: p.to_string(),
        });
    }
    if let Some(h) = j.get("bin").and_then(Json::as_str) {
        return Ok(WorkloadReq::Bin {
            name,
            hex: h.to_string(),
        });
    }
    Err("workload wants \"program\" or \"bin\"".to_string())
}

fn cell_to_json(c: &CellReq) -> Json {
    let mut fields = vec![
        ("workload", Json::U64(c.workload as u64)),
        ("label", Json::str(&c.label)),
        ("scheme", Json::str(c.scheme.label())),
    ];
    match &c.options {
        Some(o) => fields.push(("options", options_to_json(o))),
        None => fields.push(("options", Json::Null)),
    }
    fields.push(("config", config_to_json(&c.config)));
    Json::obj(fields)
}

fn cell_from_json(j: &Json, n_workloads: usize) -> Result<CellReq, String> {
    let workload = u(j, "workload")? as usize;
    if workload >= n_workloads {
        return Err(format!(
            "cell references workload {workload}, request has {n_workloads}"
        ));
    }
    let options = match j.get("options") {
        None | Some(Json::Null) => None,
        Some(o) => Some(options_from_json(o)?),
    };
    let config = match j.get("config") {
        None => MachineConfig::r10000(),
        Some(c) => config_from_json(c)?,
    };
    Ok(CellReq {
        workload,
        label: s(j, "label")?.to_string(),
        scheme: scheme_from_label(s(j, "scheme")?)?,
        options,
        config,
    })
}

/// Serialize a request (the body `gsc` posts).
pub fn request_to_json(r: &RunRequest) -> Json {
    let mut fields = vec![
        ("name", Json::str(&r.name)),
        ("scale", Json::str(scale_tag(r.scale))),
    ];
    if let Some(c) = &r.client {
        fields.push(("client", Json::str(c)));
    }
    if r.observe {
        fields.push(("observe", Json::Bool(true)));
    }
    if let Some(p) = &r.sample {
        fields.push((
            "sample",
            Json::obj(vec![
                ("detail", Json::U64(p.detail)),
                ("warmup", Json::U64(p.warmup)),
                ("interval", Json::U64(p.interval)),
            ]),
        ));
    }
    fields.push((
        "workloads",
        Json::Arr(r.workloads.iter().map(workload_to_json).collect()),
    ));
    fields.push((
        "cells",
        Json::Arr(r.cells.iter().map(cell_to_json).collect()),
    ));
    Json::obj(fields)
}

/// Parse and validate a request body.
pub fn request_from_json(j: &Json) -> Result<RunRequest, String> {
    let name = s(j, "name")?.to_string();
    let scale = parse_scale(s(j, "scale")?)?;
    let client = j.get("client").and_then(Json::as_str).map(str::to_string);
    let observe = j.get("observe").and_then(Json::as_bool).unwrap_or(false);
    let sample = match j.get("sample") {
        None | Some(Json::Null) => None,
        Some(obj) => Some(SampleParams {
            detail: u(obj, "detail")?,
            warmup: u(obj, "warmup")?,
            interval: u(obj, "interval")?,
        }),
    };
    let workloads: Vec<WorkloadReq> = j
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or("no workloads array")?
        .iter()
        .map(workload_from_json)
        .collect::<Result<_, _>>()?;
    if workloads.is_empty() {
        return Err("request has no workloads".to_string());
    }
    let cells = j
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("no cells array")?
        .iter()
        .map(|c| cell_from_json(c, workloads.len()))
        .collect::<Result<_, _>>()?;
    Ok(RunRequest {
        name,
        scale,
        client,
        observe,
        sample,
        workloads,
        cells,
    })
}

// --- Canonical hashes ----------------------------------------------------

/// The in-flight dedup identity of a request: everything that determines
/// the response bytes, nothing that doesn't (`client` is fairness metadata,
/// not science, so it is excluded — two tenants asking the same question
/// share one job).
pub fn request_key(r: &RunRequest) -> String {
    let mut h = StableHasher::new();
    h.write_str("run-request");
    h.write_str(&r.name);
    h.write_str(scale_tag(r.scale));
    h.write_bool(r.observe);
    match &r.sample {
        Some(p) => h.write_str(&guardspec_harness::key::describe_sample(p)),
        None => h.write_str("no-sample"),
    };
    h.write_u64(r.workloads.len() as u64);
    for w in &r.workloads {
        h.write_str(w.name());
        h.write_str(&w.descriptor());
    }
    h.write_u64(r.cells.len() as u64);
    for c in &r.cells {
        h.write_u64(c.workload as u64);
        h.write_str(&c.label);
        h.write_str(c.scheme.label());
        match &c.options {
            Some(o) => h.write_str(&guardspec_harness::key::describe_options(o)),
            None => h.write_str("no-transform"),
        };
        h.write_str(&guardspec_harness::key::describe_config(&c.config));
    }
    format!("req-{}", h.finish_hex())
}

/// The disk-cache key of a request's finished response body (the stable
/// artifact JSON).  Derived 1:1 from [`request_key`] so it inherits its
/// identity contract; the distinct prefix keeps response blobs from ever
/// colliding with stage entries, and is what peers ask each other for
/// (`GET /cache/resp-<hex>`).
pub fn response_key(request_key: &str) -> String {
    format!(
        "resp-{}",
        request_key.strip_prefix("req-").unwrap_or(request_key)
    )
}

/// The shard identity of one cell, computable client-side: a stable hash
/// of the cell's full descriptor (workload source, scale, scheme, options,
/// config).  `gsc` sends cell `i` to shard `cell_shard_hash(..) % M`; a
/// daemon running `--shard N/M` accepts only cells whose hash lands on `N`.
pub fn cell_shard_hash(workload: &WorkloadReq, scale: Scale, cell: &CellReq) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("cell-shard");
    h.write_str(&workload.descriptor());
    h.write_str(scale_tag(scale));
    h.write_str(cell.scheme.label());
    match &cell.options {
        Some(o) => h.write_str(&guardspec_harness::key::describe_options(o)),
        None => h.write_str("no-transform"),
    };
    h.write_str(&guardspec_harness::key::describe_config(&cell.config));
    // Truncate the 128-bit digest to its low 64 bits (hex tail).
    u64::from_str_radix(&h.finish_hex()[16..], 16).expect("32 hex chars")
}

// --- Resolution into an ExperimentSpec -----------------------------------

/// `Workload::name` is `&'static str`; ad-hoc names are leaked once and
/// interned so a long-running daemon serving the same request repeatedly
/// does not grow without bound.
fn intern(name: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap();
    if let Some(existing) = pool.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Resolve a request into the spec the harness runs.  Builtins are built at
/// the request scale (with golden results); ad-hoc programs are parsed or
/// decoded and validated, with no golden verification (empty `expected`).
pub fn to_spec(r: &RunRequest) -> Result<ExperimentSpec, String> {
    let mut workloads = Vec::with_capacity(r.workloads.len());
    for w in &r.workloads {
        match w {
            WorkloadReq::Builtin(name) => {
                // Workload is not Clone; build the set and pull the one out.
                // Builtin requests are resolved once per executed job (the
                // dedup layer shields repeats), so the rebuild is cheap
                // relative to the simulation it feeds.
                let mut all = extended_workloads(r.scale);
                let idx = all
                    .iter()
                    .position(|b| b.name == name)
                    .ok_or_else(|| format!("unknown builtin workload {name:?}"))?;
                workloads.push(all.swap_remove(idx));
            }
            WorkloadReq::Text { name, program } => {
                let prog = guardspec_ir::parse::parse_program(program, None)
                    .map_err(|e| format!("workload {name:?}: parse error: {e}"))?;
                let errs = guardspec_ir::validate::validate(&prog);
                if !errs.is_empty() {
                    return Err(format!("workload {name:?}: invalid program: {errs:?}"));
                }
                workloads.push(Workload {
                    name: intern(name),
                    description: "ad-hoc request program",
                    program: prog,
                    expected: Vec::new(),
                });
            }
            WorkloadReq::Bin { name, hex } => {
                let words =
                    codec::words_from_hex(hex).map_err(|e| format!("workload {name:?}: {e}"))?;
                let prog = guardspec_ir::encode::decode_program(&words)
                    .map_err(|e| format!("workload {name:?}: decode error: {e}"))?;
                let errs = guardspec_ir::validate::validate(&prog);
                if !errs.is_empty() {
                    return Err(format!("workload {name:?}: invalid program: {errs:?}"));
                }
                workloads.push(Workload {
                    name: intern(name),
                    description: "ad-hoc request program (binary)",
                    program: prog,
                    expected: Vec::new(),
                });
            }
        }
    }
    let cells = r
        .cells
        .iter()
        .map(|c| CellSpec {
            workload: c.workload,
            label: c.label.clone(),
            transform: c.options.clone(),
            scheme: c.scheme,
            cfg: c.config.clone(),
        })
        .collect();
    Ok(ExperimentSpec {
        name: r.name.clone(),
        scale: r.scale,
        workloads,
        cells,
    })
}

// --- Request builders (shared by gsc and tests) --------------------------

/// The Tables-3/4 three-scheme matrix over the four paper workloads —
/// exactly [`ExperimentSpec::three_schemes`], as a request.
pub fn three_schemes_request(name: &str, scale: Scale) -> RunRequest {
    let workloads: Vec<WorkloadReq> = ["compress", "espresso", "xlisp", "grep"]
        .iter()
        .map(|n| WorkloadReq::Builtin(n.to_string()))
        .collect();
    let cfg = MachineConfig::r10000();
    let mut cells = Vec::new();
    for w in 0..workloads.len() {
        for scheme in Scheme::ALL {
            cells.push(CellReq {
                workload: w,
                label: scheme.label().to_string(),
                scheme,
                options: (scheme == Scheme::Proposed).then(DriverOptions::proposed),
                config: cfg.clone(),
            });
        }
    }
    RunRequest {
        name: name.to_string(),
        scale,
        client: None,
        observe: false,
        sample: None,
        workloads,
        cells,
    }
}

/// The five-preset ablation matrix — exactly [`ExperimentSpec::ablation`],
/// as a request.
pub fn ablation_request(name: &str, scale: Scale) -> RunRequest {
    let workloads: Vec<WorkloadReq> = ["compress", "espresso", "xlisp", "grep"]
        .iter()
        .map(|n| WorkloadReq::Builtin(n.to_string()))
        .collect();
    let cfg = MachineConfig::r10000();
    let presets: [(&str, DriverOptions); 5] = [
        ("baseline", DriverOptions::baseline()),
        ("speculation", DriverOptions::speculation_only()),
        ("guarded", DriverOptions::guarded_only()),
        ("conventional", DriverOptions::conventional()),
        ("proposed", DriverOptions::proposed()),
    ];
    let mut cells = Vec::new();
    for w in 0..workloads.len() {
        for (label, opts) in &presets {
            cells.push(CellReq {
                workload: w,
                label: label.to_string(),
                scheme: if *label == "baseline" {
                    Scheme::TwoBit
                } else {
                    Scheme::Proposed
                },
                options: Some(opts.clone()),
                config: cfg.clone(),
            });
        }
    }
    RunRequest {
        name: name.to_string(),
        scale,
        client: None,
        observe: false,
        sample: None,
        workloads,
        cells,
    }
}

// --- tiny JSON field helpers ---------------------------------------------

fn u(j: &Json, k: &str) -> Result<u64, String> {
    j.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("no integer field {k:?}"))
}

fn f(j: &Json, k: &str) -> Result<f64, String> {
    j.get(k)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("no number field {k:?}"))
}

fn b(j: &Json, k: &str) -> Result<bool, String> {
    j.get(k)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("no boolean field {k:?}"))
}

fn s<'a>(j: &'a Json, k: &str) -> Result<&'a str, String> {
    j.get(k)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("no string field {k:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_harness::key::{describe_config, describe_options};

    #[test]
    fn options_roundtrip_every_field() {
        for preset in [
            DriverOptions::baseline(),
            DriverOptions::speculation_only(),
            DriverOptions::guarded_only(),
            DriverOptions::conventional(),
            DriverOptions::proposed(),
        ] {
            let back = options_from_json(&options_to_json(&preset)).unwrap();
            // describe_options enumerates every field with float bit
            // patterns, so equality of descriptions is field-exact equality.
            assert_eq!(describe_options(&back), describe_options(&preset));
        }
        // Preset shorthand resolves to the identical option set.
        assert_eq!(
            describe_options(&options_from_json(&Json::str("proposed")).unwrap()),
            describe_options(&DriverOptions::proposed())
        );
        // A missing field is an error, never a default.
        let mut j = options_to_json(&DriverOptions::proposed());
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "max_arm_len");
        }
        assert!(options_from_json(&j).unwrap_err().contains("max_arm_len"));
    }

    #[test]
    fn config_roundtrip_every_field() {
        let mut cfg = MachineConfig::r10000();
        cfg.rob_size = 48;
        cfg.queue_size = [2, 8, 8, 8];
        cfg.latencies.fp_div = 12;
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(describe_config(&back), describe_config(&cfg));
        assert_eq!(
            describe_config(&config_from_json(&Json::str("r10000")).unwrap()),
            describe_config(&MachineConfig::r10000())
        );
    }

    #[test]
    fn request_roundtrip_and_key_stability() {
        let mut req = three_schemes_request("table3", Scale::Test);
        req.client = Some("tester".to_string());
        let text = request_to_json(&req).to_compact();
        let back = request_from_json(&guardspec_harness::json::parse(&text).unwrap()).unwrap();
        assert_eq!(request_key(&back), request_key(&req));
        assert_eq!(back.cells.len(), 12);
        // client identity is fairness metadata, not dedup identity.
        let mut other = req.clone();
        other.client = Some("someone-else".to_string());
        assert_eq!(request_key(&other), request_key(&req));
        // but the name, scale, observe flag and any cell all are.
        let mut m = req.clone();
        m.name = "renamed".to_string();
        assert_ne!(request_key(&m), request_key(&req));
        let mut m = req.clone();
        m.observe = true;
        assert_ne!(request_key(&m), request_key(&req));
        let mut m = req.clone();
        m.cells[3].config.rob_size += 1;
        assert_ne!(request_key(&m), request_key(&req));
    }

    #[test]
    fn sample_roundtrips_and_feeds_the_key() {
        let mut req = three_schemes_request("table3", Scale::Test);
        // Exact requests serialize without a `sample` field at all.
        let exact_text = request_to_json(&req).to_compact();
        assert!(!exact_text.contains("\"sample\""));
        let exact_key = request_key(&req);

        req.sample = Some(SampleParams {
            detail: 500,
            warmup: 700,
            interval: 9000,
        });
        let text = request_to_json(&req).to_compact();
        let back = request_from_json(&guardspec_harness::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.sample, req.sample);
        assert_eq!(request_key(&back), request_key(&req));
        // Sampled and exact requests never dedup to the same job, and each
        // parameter is part of the identity.
        assert_ne!(request_key(&req), exact_key);
        for bump in [
            |p: &mut SampleParams| p.detail += 1,
            |p: &mut SampleParams| p.warmup += 1,
            |p: &mut SampleParams| p.interval += 1,
        ] {
            let mut m = req.clone();
            bump(m.sample.as_mut().unwrap());
            assert_ne!(request_key(&m), request_key(&req));
        }
        // A sample object missing a field is rejected, never defaulted.
        let j = guardspec_harness::json::parse(
            r#"{"name":"x","scale":"test","sample":{"detail":100,"warmup":100},
                "workloads":[{"builtin":"grep"}],
                "cells":[{"workload":0,"label":"l","scheme":"2-bit BP",
                          "options":null,"config":"r10000"}]}"#,
        )
        .unwrap();
        assert!(request_from_json(&j).unwrap_err().contains("interval"));
    }

    #[test]
    fn resolved_spec_matches_the_offline_builder() {
        let req = three_schemes_request("table3", Scale::Test);
        let spec = to_spec(&req).unwrap();
        let offline = ExperimentSpec::three_schemes("table3", Scale::Test);
        assert_eq!(spec.name, offline.name);
        assert_eq!(spec.workloads.len(), offline.workloads.len());
        assert_eq!(spec.cells.len(), offline.cells.len());
        for (a, b) in spec.workloads.iter().zip(&offline.workloads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.program.to_string(), b.program.to_string());
        }
        for (a, b) in spec.cells.iter().zip(&offline.cells) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.label, b.label);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(
                a.transform.as_ref().map(describe_options),
                b.transform.as_ref().map(describe_options)
            );
            assert_eq!(describe_config(&a.cfg), describe_config(&b.cfg));
        }
    }

    #[test]
    fn shard_hash_varies_by_cell_not_by_client() {
        let req = three_schemes_request("t", Scale::Test);
        let h0 = cell_shard_hash(&req.workloads[0], req.scale, &req.cells[0]);
        let h0b = cell_shard_hash(&req.workloads[0], req.scale, &req.cells[0]);
        assert_eq!(h0, h0b, "stable across calls");
        let mut distinct = std::collections::BTreeSet::new();
        for c in &req.cells {
            distinct.insert(cell_shard_hash(&req.workloads[c.workload], req.scale, c));
        }
        assert!(
            distinct.len() > 6,
            "12 distinct cells should spread over many hashes, got {}",
            distinct.len()
        );
    }

    #[test]
    fn bad_requests_name_the_problem() {
        let parse =
            |t: &str| request_from_json(&guardspec_harness::json::parse(t).unwrap()).unwrap_err();
        assert!(parse("{\"scale\":\"test\"}").contains("name"));
        assert!(parse("{\"name\":\"x\",\"scale\":\"huge\"}").contains("bad --scale"));
        assert!(
            parse("{\"name\":\"x\",\"scale\":\"test\",\"workloads\":[],\"cells\":[]}")
                .contains("no workloads")
        );
        let bad_cell = "{\"name\":\"x\",\"scale\":\"test\",\
             \"workloads\":[{\"builtin\":\"grep\"}],\
             \"cells\":[{\"workload\":3,\"label\":\"l\",\"scheme\":\"Proposed\"}]}";
        assert!(parse(bad_cell).contains("references workload 3"));
    }
}
