//! Admission control: a bounded, per-client round-robin fair queue.
//!
//! One tenant posting a 10k-cell sweep must not starve another tenant's
//! single request.  Jobs are therefore queued per client identity, and the
//! worker pops clients in round-robin order — with `k` active clients each
//! gets every `k`-th execution slot regardless of backlog skew.
//!
//! The *total* queued count is capped.  A push over the cap is refused
//! immediately ([`PushError::Full`] carries a retry hint derived from the
//! backlog) — the caller turns this into a structured 429, never a silent
//! drop.  After [`FairQueue::close`], pushes are refused as draining and
//! pops drain whatever is left, then return `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity; retry after roughly this many milliseconds.
    Full { retry_after_ms: u64 },
    /// The server is shutting down and admits no new work.
    Draining,
}

struct Inner<T> {
    /// One backlog per client, in first-appearance order.
    lanes: Vec<(String, VecDeque<T>)>,
    /// Next lane to serve (round-robin cursor).
    cursor: usize,
    queued: usize,
    closed: bool,
}

/// Bounded multi-tenant FIFO with round-robin service between tenants.
pub struct FairQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
    /// Rough per-job service-time estimate backing the retry hint.
    est_job_ms: u64,
}

impl<T> FairQueue<T> {
    pub fn new(cap: usize, est_job_ms: u64) -> FairQueue<T> {
        FairQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                cursor: 0,
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            est_job_ms: est_job_ms.max(1),
        }
    }

    /// Enqueue for `client`; refuses when full or draining.
    pub fn push(&self, client: &str, item: T) -> Result<(), PushError> {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return Err(PushError::Draining);
        }
        if q.queued >= self.cap {
            // The backlog clears at ~one job per est_job_ms; tell the
            // client when a slot should plausibly be free.
            return Err(PushError::Full {
                retry_after_ms: self.est_job_ms * (q.queued as u64),
            });
        }
        match q.lanes.iter_mut().find(|(c, _)| c == client) {
            Some((_, lane)) => lane.push_back(item),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(item);
                q.lanes.push((client.to_string(), lane));
            }
        }
        q.queued += 1;
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop in round-robin client order.  `None` means closed and
    /// fully drained — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if q.queued > 0 {
                let n = q.lanes.len();
                for step in 0..n {
                    let i = (q.cursor + step) % n;
                    if let Some(item) = q.lanes[i].1.pop_front() {
                        q.cursor = (i + 1) % n;
                        q.queued -= 1;
                        return Some(item);
                    }
                }
                unreachable!("queued > 0 but every lane empty");
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    /// Jobs currently queued (not yet popped).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queued
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refuse new pushes; queued work still drains through `pop`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_interleaves_clients() {
        let q = FairQueue::new(16, 100);
        // Tenant "bulk" floods first; "solo" arrives after with one job.
        for i in 0..5 {
            q.push("bulk", format!("bulk-{i}")).unwrap();
        }
        q.push("solo", "solo-0".to_string()).unwrap();
        let order: Vec<String> =
            std::iter::from_fn(|| if q.is_empty() { None } else { q.pop() }).collect();
        // solo's single job is served second, not sixth.
        assert_eq!(order[0], "bulk-0");
        assert_eq!(order[1], "solo-0");
        assert_eq!(order[2..], ["bulk-1", "bulk-2", "bulk-3", "bulk-4"]);
    }

    #[test]
    fn cap_refuses_with_retry_hint() {
        let q = FairQueue::new(2, 250);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        match q.push("c", 3) {
            Err(PushError::Full { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 500, "2 queued x 250ms estimate");
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        q.pop().unwrap();
        q.push("c", 3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(FairQueue::new(8, 1));
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        q.close();
        assert_eq!(q.push("a", 3), Err(PushError::Draining));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        // A blocked popper on an empty closed queue wakes with None.
        let q2 = Arc::new(FairQueue::<u32>::new(8, 1));
        let popper = {
            let q2 = q2.clone();
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        q2.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
