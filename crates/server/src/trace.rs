//! Request-scoped distributed tracing for the daemon.
//!
//! A [`RequestTrace`] is one request's span timeline: it owns a
//! [`SpanRecorder`] whose origin is the instant the request was parsed, so
//! the request phases — `admit` (loop thread), `queue.wait`, `flight`
//! (worker), `respond` (publication → bytes handed to the loop) — tile
//! exactly by sharing their boundary `Instant`s through [`Marks`].  The
//! harness runner's own stage spans are folded in with a timestamp offset
//! ([`RequestTrace::absorb`]), so one Chrome document shows the whole
//! story: admission → queue → peer pull → profile/transform/trace/
//! simulate/collect → respond.
//!
//! Trace ids are deterministic: `{key8}-s{epoch}` where `key8` is a slice
//! of the request key's stable hash and `epoch` a per-daemon counter — no
//! wall-clock entropy.  A client-originated id arrives via `X-Trace-Id`
//! and wins; the daemon forwards it on outbound peer pulls.
//!
//! Completed timelines land in a bounded [`TraceRing`]; `GET /trace`
//! drains it as one grouped Chrome document
//! ([`guardspec_harness::chrome_trace_json_grouped`]).

use guardspec_harness::{Span, SpanRecorder};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Mint a daemon-originated trace id from the request key and the
/// daemon's request epoch.  `req-<32 hex>` keys contribute 8 stable hash
/// characters; the epoch disambiguates repeats of the same request.
pub fn mint_trace_id(key: &str, epoch: u64) -> String {
    let hash = key.strip_prefix("req-").unwrap_or(key);
    let short: String = hash.chars().take(8).collect();
    format!("{short}-s{epoch}")
}

/// Phase-boundary instants, shared between the loop thread and the worker
/// so adjacent phase spans start/end on the *same* `Instant`.
#[derive(Default)]
struct Marks {
    enqueued: Option<Instant>,
    published: Option<Instant>,
    /// Set on joiner requests: the owning flight's trace id.
    joined_owner: Option<String>,
}

/// One traced request's span timeline.
pub struct RequestTrace {
    pub id: String,
    started: Instant,
    rec: SpanRecorder,
    marks: Mutex<Marks>,
}

impl RequestTrace {
    /// A trace whose clock starts now (call when the request is parsed).
    pub fn new(id: String) -> RequestTrace {
        let started = Instant::now();
        RequestTrace {
            id,
            started,
            rec: SpanRecorder::with_origin(true, started),
            marks: Mutex::new(Marks::default()),
        }
    }

    /// The instant the request arrived (the root span's start).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Record a span over `[start, end]` on the calling thread's track.
    pub fn span(&self, name: &str, cat: &'static str, start: Instant, end: Instant) {
        self.rec.record_to(name, cat, start, end, Vec::new());
    }

    /// [`RequestTrace::span`] with `args` rendered into the event.
    pub fn span_args(
        &self,
        name: &str,
        cat: &'static str,
        start: Instant,
        end: Instant,
        args: Vec<(String, String)>,
    ) {
        self.rec.record_to(name, cat, start, end, args);
    }

    /// Capture *now* as the queue-admission boundary and return it.
    pub fn mark_enqueued(&self) -> Instant {
        let t = Instant::now();
        self.marks.lock().unwrap().enqueued = Some(t);
        t
    }

    pub fn enqueued(&self) -> Option<Instant> {
        self.marks.lock().unwrap().enqueued
    }

    /// Capture *now* as the publication boundary and return it.
    pub fn mark_published(&self) -> Instant {
        let t = Instant::now();
        self.marks.lock().unwrap().published = Some(t);
        t
    }

    pub fn published(&self) -> Option<Instant> {
        self.marks.lock().unwrap().published
    }

    /// Record that this request joined an existing flight owned by
    /// `owner_trace` (empty when the owner was untraced).
    pub fn set_joined(&self, owner_trace: String) {
        self.marks.lock().unwrap().joined_owner = Some(owner_trace);
    }

    pub fn joined(&self) -> Option<String> {
        self.marks.lock().unwrap().joined_owner.clone()
    }

    /// Fold another recorder's spans (the harness runner's stage timeline,
    /// timestamped from its own origin `base`) into this trace, shifted
    /// onto this trace's clock.
    pub fn absorb(&self, spans: Vec<Span>, base: Instant) {
        let offset = base
            .saturating_duration_since(self.started)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        for mut s in spans {
            s.ts_us = s.ts_us.saturating_add(offset);
            self.rec.record_span(s);
        }
    }

    /// Drain the recorded spans, sorted for stable output.
    pub fn finish(&self) -> Vec<Span> {
        self.rec.finish()
    }
}

/// A bounded ring of recently completed request timelines; `GET /trace`
/// drains it (read-once semantics, so scrapers see each request once).
pub struct TraceRing {
    cap: usize,
    entries: Mutex<VecDeque<(String, Vec<Span>)>>,
}

impl TraceRing {
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a completed timeline, evicting the oldest beyond the cap.
    pub fn push(&self, id: String, spans: Vec<Span>) {
        let mut e = self.entries.lock().unwrap();
        if e.len() >= self.cap {
            e.pop_front();
        }
        e.push_back((id, spans));
    }

    /// Take every buffered timeline (oldest first).
    pub fn drain(&self) -> Vec<(String, Vec<Span>)> {
        self.entries.lock().unwrap().drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_harness::{chrome_trace_json, validate_chrome_trace};
    use std::time::Duration;

    #[test]
    fn trace_ids_are_deterministic_and_keyed() {
        assert_eq!(mint_trace_id("req-0123456789abcdef", 0), "01234567-s0");
        assert_eq!(mint_trace_id("req-0123456789abcdef", 7), "01234567-s7");
        assert_eq!(mint_trace_id("odd", 1), "odd-s1");
    }

    #[test]
    fn phases_tile_through_shared_marks() {
        let tr = RequestTrace::new("t-1".to_string());
        let t_enq = tr.mark_enqueued();
        std::thread::sleep(Duration::from_millis(2));
        let t_pub = tr.mark_published();
        let t_done = Instant::now();
        tr.span("admit", "queue", tr.started(), t_enq);
        tr.span("flight", "flight", tr.enqueued().unwrap(), t_pub);
        tr.span("respond", "respond", tr.published().unwrap(), t_done);
        tr.span("request", "request", tr.started(), t_done);
        let spans = tr.finish();
        let admit = spans.iter().find(|s| s.name == "admit").unwrap();
        let flight = spans.iter().find(|s| s.name == "flight").unwrap();
        let respond = spans.iter().find(|s| s.name == "respond").unwrap();
        // Shared Instants ⇒ exact microsecond tiling, no gaps or overlaps.
        assert_eq!(admit.ts_us, 0);
        assert_eq!(admit.ts_us + admit.dur_us, flight.ts_us);
        assert!(flight.ts_us + flight.dur_us <= respond.ts_us);
        assert!(respond.ts_us - (flight.ts_us + flight.dur_us) <= 1);
        validate_chrome_trace(&chrome_trace_json(&spans, &[])).unwrap();
    }

    #[test]
    fn absorb_shifts_foreign_spans_onto_the_request_clock() {
        let tr = RequestTrace::new("t-2".to_string());
        std::thread::sleep(Duration::from_millis(1));
        let base = Instant::now();
        let foreign = vec![Span {
            name: "simulate x".to_string(),
            cat: "simulate",
            ts_us: 5,
            dur_us: 10,
            tid: 3,
            args: Vec::new(),
        }];
        tr.absorb(foreign, base);
        let spans = tr.finish();
        assert_eq!(spans.len(), 1);
        assert!(
            spans[0].ts_us >= 1000 + 5,
            "ts {} not shifted",
            spans[0].ts_us
        );
    }

    #[test]
    fn ring_is_bounded_and_drains_once() {
        let ring = TraceRing::new(2);
        for i in 0..3 {
            ring.push(format!("t-{i}"), Vec::new());
        }
        assert_eq!(ring.len(), 2);
        let drained = ring.drain();
        assert_eq!(
            drained
                .iter()
                .map(|(id, _)| id.as_str())
                .collect::<Vec<_>>(),
            vec!["t-1", "t-2"]
        );
        assert!(ring.is_empty());
    }
}
