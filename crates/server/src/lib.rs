//! guardspec-as-a-service: a persistent simulation daemon (`gsd`) and its
//! fan-out client (`gsc`).
//!
//! The daemon keeps one warm content-addressed [`guardspec_harness::DiskCache`]
//! across requests, speaks a minimal hand-rolled HTTP/1.1 ([`http`]) with
//! the workspace's no-dependency JSON, dedups identical in-flight requests
//! ([`dedup`]), applies bounded fair admission control ([`queue`]), and can
//! split sweeps across several daemons by cache-key range ([`shard`]).
//! Responses are the **stable artifact JSON** — byte-identical to what the
//! offline bench binaries write with `--stable-json`, at any worker count,
//! shard count or cache temperature.

pub mod client;
pub mod dedup;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;

pub use client::run_fanout;
pub use protocol::{request_from_json, request_to_json, RunRequest};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::ShardSpec;
