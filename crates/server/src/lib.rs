//! guardspec-as-a-service: a persistent simulation daemon (`gsd`) and its
//! fan-out client (`gsc`).
//!
//! The daemon multiplexes every connection over one epoll event loop
//! ([`event_loop`]) with HTTP/1.1 keep-alive and bounded pipelining,
//! keeps one warm content-addressed [`guardspec_harness::DiskCache`]
//! across requests, speaks a minimal hand-rolled HTTP/1.1 ([`http`]) with
//! the workspace's no-dependency JSON, dedups identical in-flight requests
//! ([`dedup`]), applies bounded fair admission control ([`queue`]), can
//! split sweeps across several daemons by cache-key range ([`shard`]),
//! and lets sibling daemons serve each other finished artifacts ([`peer`]).
//! Responses are the **stable artifact JSON** — byte-identical to what the
//! offline bench binaries write with `--stable-json`, at any worker count,
//! shard count or cache temperature; `POST /run?stream=1` prefixes those
//! bytes with NDJSON stage-progress events.

pub mod client;
pub mod dedup;
pub mod event_loop;
pub mod http;
pub mod peer;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;
pub mod trace;

pub use client::{run_fanout, run_fanout_stats, ClientStats};
pub use protocol::{request_from_json, request_to_json, RunRequest};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::ShardSpec;
