//! Key-range sharding: several daemons split a sweep, the client fans out
//! and merges.
//!
//! A shard assignment is `N/M` (0-based shard `N` of `M`).  Cell ownership
//! is `cell_shard_hash(..) % M == N` — a pure function of request-level
//! descriptors, so `gsc` computes the same routing the servers enforce
//! without knowing anything about transformed program text or cache
//! internals.  A cell posted to the wrong shard is a 400 naming the shard
//! that owns it, never a silently-wrong answer.

use crate::protocol::{cell_shard_hash, RunRequest};

/// A `--shard N/M` assignment.  `ShardSpec::default()` is the unsharded
/// single-server `0/1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub index: u64,
    pub count: u64,
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        ShardSpec { index: 0, count: 1 }
    }
}

impl ShardSpec {
    /// Parse `"N/M"`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (n, m) = s
            .split_once('/')
            .ok_or_else(|| format!("bad --shard {s:?} (want N/M, e.g. 0/2)"))?;
        let index: u64 = n.parse().map_err(|_| format!("bad --shard index {n:?}"))?;
        let count: u64 = m.parse().map_err(|_| format!("bad --shard count {m:?}"))?;
        if count == 0 || index >= count {
            return Err(format!("bad --shard {s:?} (want 0 <= N < M)"));
        }
        Ok(ShardSpec { index, count })
    }

    pub fn is_sharded(&self) -> bool {
        self.count > 1
    }

    /// Which shard owns this hash.
    pub fn owner_of(&self, hash: u64) -> u64 {
        hash % self.count
    }

    /// Display form, `"N/M"`.
    pub fn tag(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

/// Validate that every cell of `req` belongs to `shard`; on a misroute,
/// name the offending cell and its owner.
pub fn check_request_routing(shard: &ShardSpec, req: &RunRequest) -> Result<(), String> {
    if !shard.is_sharded() {
        return Ok(());
    }
    for (i, cell) in req.cells.iter().enumerate() {
        let owner = shard.owner_of(cell_shard_hash(
            &req.workloads[cell.workload],
            req.scale,
            cell,
        ));
        if owner != shard.index {
            return Err(format!(
                "cell {i} ({}/{}) belongs to shard {owner}/{}, this is shard {}",
                req.workloads[cell.workload].name(),
                cell.label,
                shard.count,
                shard.tag()
            ));
        }
    }
    Ok(())
}

/// Split a request into per-shard sub-requests (client side).  Each
/// sub-request keeps the **full** workload list — so every shard's stable
/// artifact carries the identical `workloads` array — and only the cells
/// that shard owns.  Returns `count` requests, some possibly with zero
/// cells (still worth posting: the response carries the profiles).
/// `indices[k]` maps sub-request `k`'s cells back to positions in the
/// original cell order for the merge.
pub fn split_request(req: &RunRequest, count: u64) -> (Vec<RunRequest>, Vec<Vec<usize>>) {
    let count = count.max(1);
    let mut parts: Vec<RunRequest> = (0..count)
        .map(|_| RunRequest {
            cells: Vec::new(),
            ..req.clone()
        })
        .collect();
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); count as usize];
    for (i, cell) in req.cells.iter().enumerate() {
        let shard = cell_shard_hash(&req.workloads[cell.workload], req.scale, cell) % count;
        parts[shard as usize].cells.push(cell.clone());
        indices[shard as usize].push(i);
    }
    (parts, indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::three_schemes_request;
    use guardspec_workloads::Scale;

    #[test]
    fn parse_accepts_good_rejects_bad() {
        assert_eq!(
            ShardSpec::parse("0/2").unwrap(),
            ShardSpec { index: 0, count: 2 }
        );
        assert_eq!(ShardSpec::parse("1/2").unwrap().tag(), "1/2");
        assert!(ShardSpec::parse("2/2").unwrap_err().contains("0 <= N < M"));
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("nope").is_err());
        assert!(!ShardSpec::default().is_sharded());
    }

    #[test]
    fn split_covers_every_cell_exactly_once() {
        let req = three_schemes_request("t", Scale::Test);
        let (parts, indices) = split_request(&req, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.cells.len()).sum();
        assert_eq!(total, req.cells.len());
        // Every part keeps the full workload list.
        for p in &parts {
            assert_eq!(p.workloads, req.workloads);
        }
        // The index map reassembles the original order exactly.
        let mut seen: Vec<usize> = indices.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..req.cells.len()).collect::<Vec<_>>());
        // And each part passes its own shard's routing check.
        for (n, p) in parts.iter().enumerate() {
            let shard = ShardSpec {
                index: n as u64,
                count: 3,
            };
            check_request_routing(&shard, p).unwrap();
            // ...and fails some other shard's, if it has any cells.
            if !p.cells.is_empty() {
                let wrong = ShardSpec {
                    index: (n as u64 + 1) % 3,
                    count: 3,
                };
                assert!(check_request_routing(&wrong, p).is_err());
            }
        }
    }
}
