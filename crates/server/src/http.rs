//! Minimal hand-rolled HTTP/1.1 — just enough for the daemon and its
//! client, with no external dependencies.
//!
//! Supported surface: one request per connection (`Connection: close`),
//! `Content-Length` bodies (no chunked encoding), GET and POST.  Both sides
//! are strict about what they emit and tolerant about header case/extras.
//! Hard limits keep a misbehaving peer from ballooning memory: 64 KiB of
//! headers, 16 MiB of body.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Longest accepted request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Longest accepted body.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed inbound request.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A parsed inbound response (client side).
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request from the stream.  `Err` means the connection is
/// unusable (peer vanished, malformed head, limits exceeded) — the caller
/// just drops it.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<HttpRequest> {
    let (head, mut body_prefix) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(bad("malformed request line"));
    }
    let content_length = content_length(lines)?;
    read_exact_body(stream, &mut body_prefix, content_length)?;
    Ok(HttpRequest {
        method,
        path,
        body: body_prefix,
    })
}

/// Write a response and flush.  `content_type` is usually
/// `application/json`; `extra_headers` lets a 429 carry `Retry-After`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Issue one request against `addr` and read the full response.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let (head, mut body_prefix) = read_head(&mut stream)?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .clone()
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let content_length = content_length(lines)?;
    read_exact_body(&mut stream, &mut body_prefix, content_length)?;
    Ok(HttpResponse {
        status,
        headers,
        body: body_prefix,
    })
}

/// Convenience: GET `path` and return `(status, body as String)`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let r = roundtrip(addr, "GET", path, b"")?;
    Ok((r.status, String::from_utf8_lossy(&r.body).into_owned()))
}

/// Convenience: POST a JSON body to `path`.
pub fn post_json(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let r = roundtrip(addr, "POST", path, body.as_bytes())?;
    Ok((r.status, String::from_utf8_lossy(&r.body).into_owned()))
}

/// Read until the blank line; returns (head text, any body bytes already
/// pulled off the socket past the head).
fn read_head(stream: &mut TcpStream) -> std::io::Result<(String, Vec<u8>)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..end].to_vec()).map_err(|_| bad("non-UTF8 head"))?;
            let rest = buf[end + 4..].to_vec();
            return Ok((head, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length<'a>(lines: impl Iterator<Item = &'a str>) -> std::io::Result<usize> {
    let mut len = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            len = value
                .trim()
                .parse()
                .map_err(|_| bad("bad Content-Length"))?;
        }
    }
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    Ok(len)
}

fn read_exact_body(
    stream: &mut TcpStream,
    body: &mut Vec<u8>,
    content_length: usize,
) -> std::io::Result<()> {
    if body.len() > content_length {
        return Err(bad("body longer than Content-Length"));
    }
    let mut remaining = content_length - body.len();
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let n = stream.read(&mut chunk[..remaining.min(8192)])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_roundtrip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(
                &mut s,
                429,
                &[("Retry-After", "2".to_string())],
                b"{\"error\":\"queue full\"}",
            )
            .unwrap();
        });
        let resp = roundtrip(&addr, "POST", "/run", b"{\"x\":1}").unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"queue full\"}");
        assert_eq!(resp.header("retry-after"), Some("2"));
        server.join().unwrap();
    }

    #[test]
    fn get_with_empty_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            write_response(&mut s, 200, &[], b"ok").unwrap();
        });
        let (status, body) = get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));
        server.join().unwrap();
    }
}
