//! Minimal hand-rolled HTTP/1.1 — just enough for the daemon and its
//! client, with no external dependencies.
//!
//! Two parsing surfaces share the same grammar:
//!
//! * [`try_parse`] — the **incremental** parser the epoll event loop feeds
//!   from a per-connection read buffer.  It never blocks: a prefix of a
//!   request yields [`Parsed::Partial`], a complete request yields the
//!   parsed [`HttpRequest`] plus how many bytes to drain (pipelined
//!   requests simply leave the next one in the buffer), and a framing
//!   violation yields a terminal [`Parsed::Error`] with the status to send
//!   before closing.
//! * [`read_request`] — the historical blocking reader, kept for tests and
//!   simple tools.
//!
//! Responses are either `Content-Length` framed ([`encode_response`], with
//! keep-alive or close) or chunked ([`encode_stream_head`] +
//! [`encode_chunk`]) for the `POST /run?stream=1` progress stream.  The
//! client side offers one-shot helpers ([`roundtrip`], [`get`],
//! [`post_json`] — all `Connection: close`) and [`ClientConn`], a
//! keep-alive connection that reuses one TCP stream across requests,
//! reconnects transparently when the server reaped it, and can pipeline
//! several requests or decode a chunked progress stream.
//!
//! Hard limits keep a misbehaving peer from ballooning memory: 64 KiB of
//! headers, 16 MiB of body.

use guardspec_harness::{json, Json};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Longest accepted request head (request line + headers).
pub const MAX_HEAD: usize = 64 * 1024;
/// Longest accepted body.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed inbound request.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    /// Raw query string (text after `?`, undecoded); empty if absent.
    pub query: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.0` requests (keep-alive must be opted into).
    http10: bool,
}

impl HttpRequest {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 defaults to yes unless `Connection: close`; HTTP/1.0
    /// defaults to no unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => !self.http10,
        }
    }

    /// Whether the query string carries `name` or `name=1`/`name=true`.
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|kv| {
            kv == name
                || kv
                    .split_once('=')
                    .is_some_and(|(k, v)| k == name && (v == "1" || v == "true"))
        })
    }
}

/// A parsed inbound response (client side).
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

// --- incremental request parsing -----------------------------------------

/// One [`try_parse`] step over a connection's read buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request; drain `consumed` bytes from the buffer (any
    /// remainder is the start of the next pipelined request).
    Complete { req: HttpRequest, consumed: usize },
    /// The buffer holds only a prefix; read more.
    Partial,
    /// Unrecoverable framing violation: send `status`, then close.
    Error { status: u16, msg: &'static str },
}

/// Parse the longest complete request at the start of `buf` without
/// consuming it.  Never blocks, never reads.
pub fn try_parse(buf: &[u8]) -> Parsed {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Parsed::Error {
                status: 413,
                msg: "request head too large",
            };
        }
        return Parsed::Partial;
    };
    if head_end > MAX_HEAD {
        return Parsed::Error {
            status: 413,
            msg: "request head too large",
        };
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return Parsed::Error {
            status: 400,
            msg: "non-UTF8 head",
        };
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || target.is_empty() {
        return Parsed::Error {
            status: 400,
            msg: "malformed request line",
        };
    }
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let mut content_length = 0usize;
    for (k, v) in &headers {
        if k.eq_ignore_ascii_case("content-length") {
            match v.parse() {
                Ok(n) => content_length = n,
                Err(_) => {
                    return Parsed::Error {
                        status: 400,
                        msg: "bad Content-Length",
                    }
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return Parsed::Error {
            status: 413,
            msg: "body too large",
        };
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Parsed::Partial;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Parsed::Complete {
        req: HttpRequest {
            method: method.to_string(),
            path,
            query,
            headers,
            body: buf[head_end + 4..total].to_vec(),
            http10: version == "HTTP/1.0",
        },
        consumed: total,
    }
}

// --- response encoding ---------------------------------------------------

/// Encode a full `Content-Length`-framed response.  `extra_headers` lets a
/// 429 carry `Retry-After`; `keep_alive` selects the `Connection` header.
/// The default `Content-Type: application/json` yields to a caller-supplied
/// `Content-Type` in `extra_headers` (the Prometheus `/metrics` body is
/// plain text).
pub fn encode_response(
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let custom_type = extra_headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("content-type"));
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if !custom_type {
        head.push_str("Content-Type: application/json\r\n");
    }
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Head of a chunked progress stream.  The HTTP status is always 200; the
/// request's real outcome status rides in the `{"event":"result",...}`
/// delimiter line, because stage events are already on the wire before the
/// outcome is known.
pub fn encode_stream_head(keep_alive: bool) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// One chunk of a chunked body.  The server writes one chunk per event
/// line (so client-side chunk boundaries recover the line framing) and one
/// for the final artifact.
pub fn encode_chunk(data: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The zero-length terminator chunk.
pub fn encode_last_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

// --- blocking server-side reader (tests and simple tools) ----------------

/// Read one request from the stream.  `Err` means the connection is
/// unusable (peer vanished, malformed head, limits exceeded) — the caller
/// just drops it.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<HttpRequest> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match try_parse(&buf) {
            Parsed::Complete { req, .. } => return Ok(req),
            Parsed::Error { msg, .. } => return Err(bad(msg)),
            Parsed::Partial => {}
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Write a `Connection: close` response and flush.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    stream.write_all(&encode_response(status, extra_headers, body, false))?;
    stream.flush()
}

// --- one-shot client helpers (Connection: close) --------------------------

/// Issue one request against `addr` and read the full response.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    roundtrip_with(addr, method, path, &[], body)
}

/// [`roundtrip`] with extra request headers (e.g. `Accept`, `X-Trace-Id`).
pub fn roundtrip_with(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    write_request_head(
        &mut stream,
        addr,
        method,
        path,
        extra_headers,
        body.len(),
        false,
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Convenience: GET `path` and return `(status, body as String)`.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let r = roundtrip(addr, "GET", path, b"")?;
    Ok((r.status, String::from_utf8_lossy(&r.body).into_owned()))
}

/// GET `path` asking for the JSON representation (`Accept:
/// application/json`) — the `/metrics` endpoint defaults to Prometheus
/// text without it.
pub fn get_json(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let r = roundtrip_with(addr, "GET", path, &[("Accept", "application/json")], b"")?;
    Ok((r.status, String::from_utf8_lossy(&r.body).into_owned()))
}

/// Convenience: POST a JSON body to `path`.
pub fn post_json(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let r = roundtrip(addr, "POST", path, body.as_bytes())?;
    Ok((r.status, String::from_utf8_lossy(&r.body).into_owned()))
}

// --- keep-alive client connection ----------------------------------------

/// A client-side keep-alive connection: one TCP stream reused across
/// requests, reconnecting transparently when the server closed it (idle
/// reaping, max-requests cap, or a plain restart between requests).
#[derive(Debug)]
pub struct ClientConn {
    addr: String,
    stream: Option<TcpStream>,
    opened: u64,
    timeout: Option<std::time::Duration>,
}

impl ClientConn {
    pub fn new(addr: &str) -> ClientConn {
        ClientConn {
            addr: addr.to_string(),
            stream: None,
            opened: 0,
            timeout: None,
        }
    }

    /// Like [`ClientConn::new`] but with a hard bound on connect, read and
    /// write.  Used for peer fetches, where a down peer must cost at most
    /// one timeout — never a worker wedged on a dead socket.
    pub fn with_timeout(addr: &str, timeout: std::time::Duration) -> ClientConn {
        ClientConn {
            addr: addr.to_string(),
            stream: None,
            opened: 0,
            timeout: Some(timeout),
        }
    }

    /// TCP connections this handle has opened so far (1 on a healthy
    /// keep-alive session, however many requests it carried).
    pub fn connections_opened(&self) -> u64 {
        self.opened
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = match self.timeout {
                None => TcpStream::connect(&self.addr)?,
                Some(t) => {
                    use std::net::ToSocketAddrs;
                    let sa = self
                        .addr
                        .to_socket_addrs()?
                        .next()
                        .ok_or_else(|| bad("address resolved to nothing"))?;
                    let s = TcpStream::connect_timeout(&sa, t)?;
                    s.set_read_timeout(Some(t))?;
                    s.set_write_timeout(Some(t))?;
                    s
                }
            };
            // Requests go out as head + body writes; without TCP_NODELAY
            // the second small write can stall behind Nagle + the peer's
            // delayed ACK (~40ms) once the connection leaves quickack.
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
            self.opened += 1;
        }
        Ok(self.stream.as_mut().unwrap())
    }

    fn send_recv(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let addr = self.addr.clone();
        let stream = self.connect()?;
        write_request_head(stream, &addr, method, path, extra_headers, body.len(), true)?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(stream)
    }

    /// Issue one request, reusing the live connection when possible.  A
    /// failure on a **reused** stream (the server may have reaped it
    /// between requests) retries once on a fresh connection; a failure on
    /// a fresh connection is the caller's problem.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        self.request_with(method, path, &[], body)
    }

    /// [`ClientConn::request`] with extra request headers (e.g. the
    /// `X-Trace-Id` a daemon forwards on peer pulls, or `Accept`).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let reused = self.stream.is_some();
        match self.send_recv(method, path, extra_headers, body) {
            Ok(resp) => {
                if resp.wants_close() {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(_) if reused => {
                self.stream = None;
                let resp = self.send_recv(method, path, extra_headers, body)?;
                if resp.wants_close() {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Write every request back to back, then read the responses in order
    /// — bounded client-side pipelining.  The batch must fit the server's
    /// per-connection pipeline depth.
    pub fn pipeline(&mut self, reqs: &[(&str, &str, &[u8])]) -> std::io::Result<Vec<HttpResponse>> {
        let addr = self.addr.clone();
        let run = |stream: &mut TcpStream| -> std::io::Result<(Vec<HttpResponse>, bool)> {
            for (method, path, body) in reqs {
                write_request_head(stream, &addr, method, path, &[], body.len(), true)?;
                stream.write_all(body)?;
            }
            stream.flush()?;
            let mut out = Vec::with_capacity(reqs.len());
            let mut closed = false;
            for _ in reqs {
                let resp = read_response(stream)?;
                closed = resp.wants_close();
                out.push(resp);
                if closed {
                    break;
                }
            }
            Ok((out, closed))
        };
        match run(self.connect()?) {
            Ok((out, closed)) => {
                if closed {
                    self.stream = None;
                }
                if out.len() < reqs.len() {
                    return Err(bad("server closed mid-pipeline"));
                }
                Ok(out)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// POST to a streaming endpoint and decode the chunked NDJSON reply:
    /// `on_event` fires once per stage-event line; the return value is the
    /// real outcome status (from the `{"event":"result",...}` delimiter)
    /// and the final artifact bytes.  A non-chunked response (error paths,
    /// old servers) degrades to a plain request.
    pub fn post_stream(
        &mut self,
        path: &str,
        body: &[u8],
        on_event: impl FnMut(&str),
    ) -> std::io::Result<(u16, Vec<u8>)> {
        self.post_stream_with(path, &[], body, on_event)
    }

    /// [`ClientConn::post_stream`] with extra request headers.
    pub fn post_stream_with(
        &mut self,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
        mut on_event: impl FnMut(&str),
    ) -> std::io::Result<(u16, Vec<u8>)> {
        enum StreamEnd {
            Plain(u16, Vec<u8>),
            Chunked(Option<u16>, Vec<u8>, bool),
        }
        let addr = self.addr.clone();
        let mut run = |stream: &mut TcpStream| -> std::io::Result<StreamEnd> {
            write_request_head(stream, &addr, "POST", path, extra_headers, body.len(), true)?;
            stream.write_all(body)?;
            stream.flush()?;
            let (head, mut rest) = read_head(stream)?;
            let (status, headers) = parse_status_head(&head)?;
            let chunked = headers.iter().any(|(k, v)| {
                k.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
            });
            if !chunked {
                let content_length = content_length_of(&headers)?;
                read_exact_body(stream, &mut rest, content_length)?;
                return Ok(StreamEnd::Plain(status, rest));
            }
            let mut result_status: Option<u16> = None;
            let mut artifact = Vec::new();
            read_chunked(stream, &mut rest, |chunk| {
                if result_status.is_some() {
                    artifact.extend_from_slice(chunk);
                    return;
                }
                let line = String::from_utf8_lossy(chunk);
                let line = line.trim_end();
                if line.starts_with("{\"event\":\"result\"") {
                    result_status = json::parse(line)
                        .ok()
                        .and_then(|j| j.get("status").and_then(Json::as_u64))
                        .map(|s| s as u16);
                } else {
                    on_event(line);
                }
            })?;
            let close = headers.iter().any(|(k, v)| {
                k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close")
            });
            Ok(StreamEnd::Chunked(result_status, artifact, close))
        };
        match run(self.connect()?) {
            Ok(StreamEnd::Plain(status, body)) => {
                // Non-chunked replies come from error paths or old servers;
                // don't trust the connection for reuse.
                self.stream = None;
                Ok((status, body))
            }
            Ok(StreamEnd::Chunked(result_status, artifact, close)) => {
                if close {
                    self.stream = None;
                }
                match result_status {
                    Some(s) => Ok((s, artifact)),
                    None => {
                        self.stream = None;
                        Err(bad("stream ended without a result event"))
                    }
                }
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

fn write_request_head(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    content_length: usize,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {content_length}\r\nConnection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

/// Read one complete response (status line, headers, `Content-Length` or
/// chunked body) off the stream, leaving any pipelined successor in place.
fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let (head, mut rest) = read_head(stream)?;
    let (status, headers) = parse_status_head(&head)?;
    let chunked = headers.iter().any(|(k, v)| {
        k.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
    });
    let body = if chunked {
        let mut body = Vec::new();
        read_chunked(stream, &mut rest, |c| body.extend_from_slice(c))?;
        body
    } else {
        let content_length = content_length_of(&headers)?;
        read_exact_body(stream, &mut rest, content_length)?;
        rest
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn parse_status_head(head: &str) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok((status, headers))
}

fn content_length_of(headers: &[(String, String)]) -> std::io::Result<usize> {
    let mut len = 0usize;
    for (k, v) in headers {
        if k.eq_ignore_ascii_case("content-length") {
            len = v.parse().map_err(|_| bad("bad Content-Length"))?;
        }
    }
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    Ok(len)
}

/// Read until the blank line; returns (head text, any body bytes already
/// pulled off the socket past the head).
fn read_head(stream: &mut TcpStream) -> std::io::Result<(String, Vec<u8>)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..end].to_vec()).map_err(|_| bad("non-UTF8 head"))?;
            let rest = buf[end + 4..].to_vec();
            return Ok((head, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn read_exact_body(
    stream: &mut TcpStream,
    body: &mut Vec<u8>,
    content_length: usize,
) -> std::io::Result<()> {
    if body.len() > content_length {
        // Keep-alive: the excess belongs to the next pipelined response.
        body.truncate(content_length);
        return Ok(());
    }
    let mut remaining = content_length - body.len();
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let n = stream.read(&mut chunk[..remaining.min(8192)])?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(())
}

/// Decode a chunked body, invoking `on_chunk` once per data chunk (the
/// server's chunk boundaries are the event-line boundaries).  `pending`
/// holds bytes already read past the head.
fn read_chunked(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    mut on_chunk: impl FnMut(&[u8]),
) -> std::io::Result<()> {
    let mut chunk = [0u8; 8192];
    loop {
        // Find the "<hex>\r\n" size line.
        let line_end = loop {
            if let Some(p) = pending.windows(2).position(|w| w == b"\r\n") {
                break p;
            }
            if pending.len() > 32 {
                return Err(bad("bad chunk size line"));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-chunk"));
            }
            pending.extend_from_slice(&chunk[..n]);
        };
        let size_str =
            std::str::from_utf8(&pending[..line_end]).map_err(|_| bad("bad chunk size"))?;
        let size = usize::from_str_radix(size_str.trim(), 16).map_err(|_| bad("bad chunk size"))?;
        if size > MAX_BODY {
            return Err(bad("chunk too large"));
        }
        let need = line_end + 2 + size + 2; // size line + data + trailing CRLF
        while pending.len() < need {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-chunk"));
            }
            pending.extend_from_slice(&chunk[..n]);
        }
        if size > 0 {
            on_chunk(&pending[line_end + 2..line_end + 2 + size]);
        }
        pending.drain(..need);
        if size == 0 {
            return Ok(());
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_roundtrip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(
                &mut s,
                429,
                &[("Retry-After", "2".to_string())],
                b"{\"error\":\"queue full\"}",
            )
            .unwrap();
        });
        let resp = roundtrip(&addr, "POST", "/run", b"{\"x\":1}").unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"queue full\"}");
        assert_eq!(resp.header("retry-after"), Some("2"));
        server.join().unwrap();
    }

    #[test]
    fn get_with_empty_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            write_response(&mut s, 200, &[], b"ok").unwrap();
        });
        let (status, body) = get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));
        server.join().unwrap();
    }

    #[test]
    fn try_parse_walks_a_pipelined_buffer() {
        let wire = b"POST /run?stream=1 HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\n\r\n";
        let Parsed::Complete { req, consumed } = try_parse(wire) else {
            panic!("first request must parse");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "stream=1");
        assert!(req.query_flag("stream"));
        assert_eq!(req.body, b"abc");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        let Parsed::Complete { req, consumed: c2 } = try_parse(&wire[consumed..]) else {
            panic!("second request must parse");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(consumed + c2, wire.len());
    }

    #[test]
    fn try_parse_partial_and_errors() {
        assert!(matches!(try_parse(b"POST /run HT"), Parsed::Partial));
        assert!(matches!(
            try_parse(b"POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"),
            Parsed::Partial
        ));
        let Parsed::Error { status, .. } = try_parse(
            format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1).as_bytes(),
        ) else {
            panic!("oversized body must be an error");
        };
        assert_eq!(status, 413);
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(vec![b'x'; MAX_HEAD + 16]);
        let Parsed::Error { status, .. } = try_parse(&huge) else {
            panic!("oversized head must be an error");
        };
        assert_eq!(status, 413);
        assert!(matches!(
            try_parse(b"\r\n\r\n"),
            Parsed::Error { status: 400, .. }
        ));
    }

    #[test]
    fn connection_header_and_version_drive_keep_alive() {
        let parse_ok = |wire: &[u8]| match try_parse(wire) {
            Parsed::Complete { req, .. } => req,
            other => panic!("expected complete, got {other:?}"),
        };
        assert!(!parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(!parse_ok(b"GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn chunked_stream_decodes_events_then_artifact() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _req = read_request(&mut s).unwrap();
            let mut out = encode_stream_head(true);
            out.extend(encode_chunk(
                b"{\"event\":\"stage\",\"stage\":\"profile\"}\n",
            ));
            out.extend(encode_chunk(b"{\"event\":\"result\",\"status\":200}\n"));
            out.extend(encode_chunk(b"{\n  \"answer\": 42\n}"));
            out.extend(encode_last_chunk());
            s.write_all(&out).unwrap();
            // Same connection serves a follow-up plain request.
            let _req = read_request(&mut s).unwrap();
            write_response(&mut s, 200, &[], b"after").unwrap();
        });
        let mut conn = ClientConn::new(&addr);
        let mut events = Vec::new();
        let (status, body) = conn
            .post_stream("/run?stream=1", b"{}", |e| events.push(e.to_string()))
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\n  \"answer\": 42\n}");
        assert_eq!(events, ["{\"event\":\"stage\",\"stage\":\"profile\"}"]);
        // Keep-alive survived the stream: next request reuses the socket.
        let resp = conn.request("GET", "/x", b"").unwrap();
        assert_eq!(resp.body, b"after");
        assert_eq!(conn.connections_opened(), 1);
        server.join().unwrap();
    }

    #[test]
    fn extra_request_headers_reach_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.header("x-trace-id"), Some("ab12cd34-c0"));
            assert_eq!(req.header("accept"), Some("application/json"));
            write_response(&mut s, 200, &[], b"ok").unwrap();
        });
        let mut conn = ClientConn::new(&addr);
        let resp = conn
            .request_with(
                "GET",
                "/metrics",
                &[
                    ("X-Trace-Id", "ab12cd34-c0"),
                    ("Accept", "application/json"),
                ],
                b"",
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        server.join().unwrap();
    }

    #[test]
    fn encode_response_honours_a_custom_content_type() {
        let wire = encode_response(
            200,
            &[("Content-Type", "text/plain; version=0.0.4".to_string())],
            b"m 1\n",
            true,
        );
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(
            !text.contains("application/json"),
            "default type must yield: {text}"
        );
        let default = String::from_utf8(encode_response(200, &[], b"{}", true)).unwrap();
        assert!(default.contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn client_conn_reconnects_after_server_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: answer once with Connection: close semantics
            // by just dropping the socket afterwards.
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_request(&mut s).unwrap();
            s.write_all(&encode_response(200, &[], b"one", true))
                .unwrap();
            drop(s);
            // The client's retry shows up as a second connection.
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_request(&mut s).unwrap();
            s.write_all(&encode_response(200, &[], b"two", true))
                .unwrap();
        });
        let mut conn = ClientConn::new(&addr);
        assert_eq!(conn.request("GET", "/a", b"").unwrap().body, b"one");
        // Server dropped the socket; the reused-stream failure retries.
        assert_eq!(conn.request("GET", "/b", b"").unwrap().body, b"two");
        assert_eq!(conn.connections_opened(), 2);
        server.join().unwrap();
    }
}
