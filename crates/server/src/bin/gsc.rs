//! `gsc` — the guardspec sweep client.
//!
//! ```text
//! gsc --servers ADDR[,ADDR...] [--spec table3|ablation] [--name NAME]
//!     [--scale test|small|paper] [--out PATH] [--client ID] [--observe]
//!     [--stream] [--trace-out PATH] [--log-level L]
//! gsc --servers ADDR[,ADDR...] --healthz
//! gsc --servers ADDR[,ADDR...] --metrics [--prom]
//! ```
//!
//! With `M` servers the sweep is split by cache-key range — cell →
//! `cell_shard_hash % M` — each shard runs its slice, and the partial
//! artifacts are merged back into one stable artifact, byte-identical to
//! an offline `--stable-json` run of the same sweep.  The merged artifact
//! goes to `--out` (or stdout); transport diagnostics go to stderr as
//! structured JSON log lines so the artifact bytes stay pure.
//! `--stream` (single server only) asks for `POST /run?stream=1` and
//! relays the server's stage-progress events to stderr as they arrive.
//! `--trace-out PATH` (single server only) additionally requests the
//! request's span timeline (`?trace=1`, originating the trace id
//! client-side via `X-Trace-Id`), validates it as a Chrome trace
//! document, and writes it to PATH — the artifact is still recovered
//! byte-exact from the trace envelope.  `--metrics --prom` scrapes the
//! Prometheus exposition and parse-checks it instead of printing the
//! JSON document.  Unknown flags print the offending flag and exit 2.

use guardspec_harness::args::{parse_scale, take_value, unknown_argument};
use guardspec_harness::log::{self as glog, parse_log_level, LogLevel};
use guardspec_harness::{json, validate_chrome_trace, Json};
use guardspec_server::http::{self, ClientConn};
use guardspec_server::protocol::{
    ablation_request, request_key, request_to_json, three_schemes_request,
};
use guardspec_server::{run_fanout_stats, ClientStats};
use guardspec_workloads::Scale;
use std::io::Write;
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Args {
    servers: Vec<String>,
    spec: String,
    name: Option<String>,
    scale: Scale,
    out: Option<PathBuf>,
    client: Option<String>,
    observe: bool,
    healthz: bool,
    metrics: bool,
    stream: bool,
    trace_out: Option<PathBuf>,
    prom: bool,
    log_level: LogLevel,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        servers: Vec::new(),
        spec: "table3".to_string(),
        name: None,
        scale: Scale::Test,
        out: None,
        client: None,
        observe: false,
        healthz: false,
        metrics: false,
        stream: false,
        trace_out: None,
        prom: false,
        log_level: LogLevel::Info,
    };
    let mut args: Box<dyn Iterator<Item = String>> = Box::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--servers" => {
                parsed.servers = take_value(&mut args, "--servers")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--spec" => {
                let v = take_value(&mut args, "--spec")?;
                if v != "table3" && v != "ablation" {
                    return Err(format!("bad --spec {v:?} (want table3|ablation)"));
                }
                parsed.spec = v;
            }
            "--name" => parsed.name = Some(take_value(&mut args, "--name")?),
            "--scale" => parsed.scale = parse_scale(&take_value(&mut args, "--scale")?)?,
            "--out" => parsed.out = Some(PathBuf::from(take_value(&mut args, "--out")?)),
            "--client" => parsed.client = Some(take_value(&mut args, "--client")?),
            "--observe" => parsed.observe = true,
            "--healthz" => parsed.healthz = true,
            "--metrics" => parsed.metrics = true,
            "--stream" => parsed.stream = true,
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(take_value(&mut args, "--trace-out")?));
            }
            "--prom" => parsed.prom = true,
            "--log-level" => {
                parsed.log_level = parse_log_level(&take_value(&mut args, "--log-level")?)?;
            }
            other => return Err(unknown_argument(other)),
        }
    }
    if parsed.servers.is_empty() {
        return Err("--servers is required".to_string());
    }
    if parsed.stream && parsed.servers.len() > 1 {
        return Err("--stream works with exactly one server (no fan-out)".to_string());
    }
    if parsed.trace_out.is_some() && parsed.servers.len() > 1 {
        return Err(
            "--trace-out works with exactly one server (one trace, one timeline)".to_string(),
        );
    }
    if parsed.prom && !parsed.metrics {
        return Err("--prom only makes sense with --metrics".to_string());
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gsc: {e}");
            std::process::exit(2);
        }
    };
    glog::set_level(args.log_level);
    if args.healthz || args.metrics {
        std::process::exit(probe_servers(&args));
    }
    let name = args.name.clone().unwrap_or_else(|| args.spec.clone());
    let mut request = match args.spec.as_str() {
        "ablation" => ablation_request(&name, args.scale),
        _ => three_schemes_request(&name, args.scale),
    };
    request.client = args.client.clone();
    request.observe = args.observe;
    let result = if args.stream {
        run_streaming(&args.servers[0], &request, args.trace_out.as_deref())
    } else if let Some(path) = &args.trace_out {
        run_traced(&args.servers[0], &request, path)
    } else {
        run_fanout_stats(&args.servers, &request)
    };
    match result {
        Ok((body, stats)) => {
            glog::info(
                "client.summary",
                &[
                    ("shards", Json::U64(args.servers.len() as u64)),
                    ("connections", Json::U64(stats.connections_opened)),
                    ("retries", Json::U64(stats.retries)),
                ],
            );
            if let Some(out) = &args.out {
                if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).ok();
                }
                if let Err(e) = std::fs::write(out, &body) {
                    eprintln!("gsc: writing {}: {e}", out.display());
                    std::process::exit(1);
                }
                glog::info(
                    "client.wrote",
                    &[("path", Json::str(out.display().to_string()))],
                );
            } else {
                println!("{body}");
                std::io::stdout().flush().ok();
            }
        }
        Err(e) => {
            eprintln!("gsc: {e}");
            std::process::exit(1);
        }
    }
}

/// `--healthz` / `--metrics [--prom]`: probe every server, print one
/// block per server on stdout, return the process exit code.
fn probe_servers(args: &Args) -> i32 {
    let mut failed = false;
    for addr in &args.servers {
        let fetched = if args.healthz {
            http::get(addr, "/healthz")
        } else if args.prom {
            // The default exposition: Prometheus text.
            http::get(addr, "/metrics")
        } else {
            // The legacy JSON document, for eyeballs and jq.
            http::get_json(addr, "/metrics")
        };
        match fetched {
            Ok((status, body)) => {
                failed |= status != 200;
                if args.prom {
                    match guardspec_harness::parse_prometheus(&body) {
                        Ok(series) => {
                            println!("{addr}: {status} {} series", series.len());
                            print!("{body}");
                        }
                        Err(e) => {
                            println!("{addr}: {status} bad exposition: {e}");
                            failed = true;
                        }
                    }
                } else {
                    println!("{addr}: {status} {body}");
                }
            }
            Err(e) => {
                println!("{addr}: unreachable ({e})");
                failed = true;
            }
        }
    }
    i32::from(failed)
}

/// The client-originated trace id: 8 chars of the request key's stable
/// hash, suffixed `-c0` (client epoch — one id per invocation).
fn client_trace_id(request: &guardspec_server::RunRequest) -> String {
    let key = request_key(request);
    let hash = key.strip_prefix("req-").unwrap_or(&key);
    let short: String = hash.chars().take(8).collect();
    format!("{short}-c0")
}

/// Validate `doc` as a Chrome trace and write it pretty-printed.
fn write_trace(path: &Path, doc: &Json) -> Result<(), String> {
    validate_chrome_trace(doc).map_err(|e| format!("server returned an invalid trace: {e}"))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    glog::info(
        "client.trace_written",
        &[("path", Json::str(path.display().to_string()))],
    );
    Ok(())
}

/// Single-server traced (non-streaming) run: `?trace=1` wraps the
/// artifact in a `{trace_id, trace, artifact}` envelope; the artifact is
/// recovered byte-exact from the envelope's JSON string.
fn run_traced(
    addr: &str,
    request: &guardspec_server::RunRequest,
    trace_out: &Path,
) -> Result<(String, ClientStats), String> {
    let body = request_to_json(request).to_compact();
    let id = client_trace_id(request);
    let mut conn = ClientConn::new(addr);
    let resp = conn
        .request_with(
            "POST",
            "/run?trace=1",
            &[("X-Trace-Id", &id)],
            body.as_bytes(),
        )
        .map_err(|e| format!("POST {addr}/run?trace=1 failed: {e}"))?;
    let text = String::from_utf8_lossy(&resp.body).to_string();
    if resp.status != 200 {
        return Err(format!("{addr}/run returned {}: {text}", resp.status));
    }
    let envelope = json::parse(&text).map_err(|e| format!("bad trace envelope: {e}"))?;
    let artifact = envelope
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or("trace envelope carries no artifact")?
        .to_string();
    let doc = envelope
        .get("trace")
        .cloned()
        .ok_or("trace envelope carries no trace document")?;
    write_trace(trace_out, &doc)?;
    Ok((
        artifact,
        ClientStats {
            retries: 0,
            connections_opened: conn.connections_opened(),
        },
    ))
}

/// Single-server streaming run: stage events logged as they land, the
/// final artifact returned like any other run.  With `--trace-out` the
/// stream additionally requests `?trace=1`; the timeline arrives as its
/// own `{"event":"trace",...}` line just before the artifact.
fn run_streaming(
    addr: &str,
    request: &guardspec_server::RunRequest,
    trace_out: Option<&Path>,
) -> Result<(String, ClientStats), String> {
    let body = request_to_json(request).to_compact();
    let id = client_trace_id(request);
    let (path, headers): (&str, Vec<(&str, &str)>) = match trace_out {
        Some(_) => ("/run?stream=1&trace=1", vec![("X-Trace-Id", &id)]),
        None => ("/run?stream=1", Vec::new()),
    };
    let mut conn = ClientConn::new(addr);
    let mut trace_doc: Option<Json> = None;
    let (status, artifact) = conn
        .post_stream_with(path, &headers, body.as_bytes(), |line| {
            match json::parse(line) {
                Ok(ev) if ev.get("event").and_then(Json::as_str) == Some("trace") => {
                    trace_doc = ev.get("trace").cloned();
                }
                Ok(ev) => glog::info("server.event", &[("body", ev)]),
                Err(_) => glog::info("server.event", &[("line", Json::str(line))]),
            }
        })
        .map_err(|e| format!("POST {addr}{path} failed: {e}"))?;
    let text = String::from_utf8_lossy(&artifact).to_string();
    if status != 200 {
        return Err(format!("{addr}/run returned {status}: {text}"));
    }
    if let Some(out) = trace_out {
        let doc = trace_doc.ok_or("server stream never delivered a trace event")?;
        write_trace(out, &doc)?;
    }
    Ok((
        text,
        ClientStats {
            retries: 0,
            connections_opened: conn.connections_opened(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        let err = parse(&["--servers", "x:1", "--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn servers_split_on_commas() {
        let a = parse(&[
            "--servers",
            "a:1,b:2",
            "--spec",
            "ablation",
            "--scale",
            "small",
        ])
        .unwrap();
        assert_eq!(a.servers, ["a:1", "b:2"]);
        assert_eq!(a.spec, "ablation");
        assert_eq!(a.scale, Scale::Small);
    }

    #[test]
    fn stream_requires_a_single_server() {
        assert!(parse(&["--servers", "a:1", "--stream"]).unwrap().stream);
        let err = parse(&["--servers", "a:1,b:2", "--stream"]).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
    }

    #[test]
    fn trace_out_requires_a_single_server_and_prom_requires_metrics() {
        let a = parse(&["--servers", "a:1", "--trace-out", "t.json"]).unwrap();
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
        let err = parse(&["--servers", "a:1,b:2", "--trace-out", "t.json"]).unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");
        let err = parse(&["--servers", "a:1", "--prom"]).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        assert!(
            parse(&["--servers", "a:1", "--metrics", "--prom"])
                .unwrap()
                .prom
        );
    }

    #[test]
    fn log_level_parses_and_defaults_to_info() {
        assert_eq!(
            parse(&["--servers", "a:1"]).unwrap().log_level,
            LogLevel::Info
        );
        let a = parse(&["--servers", "a:1", "--log-level", "debug"]).unwrap();
        assert_eq!(a.log_level, LogLevel::Debug);
        assert!(parse(&["--servers", "a:1", "--log-level", "blaring"]).is_err());
    }

    #[test]
    fn client_trace_ids_are_deterministic() {
        let r = three_schemes_request("t", Scale::Test);
        let id = client_trace_id(&r);
        assert_eq!(id, client_trace_id(&r), "same request, same id");
        assert!(id.ends_with("-c0"), "{id}");
        assert_eq!(id.len(), 8 + 3, "{id}");
    }

    #[test]
    fn servers_are_required_and_specs_validated() {
        assert!(parse(&[]).unwrap_err().contains("--servers"));
        assert!(parse(&["--servers", "x:1", "--spec", "nope"])
            .unwrap_err()
            .contains("--spec"));
    }
}
