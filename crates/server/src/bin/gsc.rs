//! `gsc` — the guardspec sweep client.
//!
//! ```text
//! gsc --servers ADDR[,ADDR...] [--spec table3|ablation] [--name NAME]
//!     [--scale test|small|paper] [--out PATH] [--client ID] [--observe]
//!     [--stream]
//! gsc --servers ADDR[,ADDR...] --healthz
//! gsc --servers ADDR[,ADDR...] --metrics
//! ```
//!
//! With `M` servers the sweep is split by cache-key range — cell →
//! `cell_shard_hash % M` — each shard runs its slice, and the partial
//! artifacts are merged back into one stable artifact, byte-identical to
//! an offline `--stable-json` run of the same sweep.  The merged artifact
//! goes to `--out` (or stdout); a one-line transport summary (connections
//! opened, 429 retries) goes to stderr so the artifact bytes stay pure.
//! `--stream` (single server only) asks for `POST /run?stream=1` and
//! relays the server's stage-progress events to stderr as they arrive.
//! Unknown flags print the offending flag and exit 2.

use guardspec_harness::args::{parse_scale, take_value, unknown_argument};
use guardspec_server::http::{self, ClientConn};
use guardspec_server::protocol::{ablation_request, request_to_json, three_schemes_request};
use guardspec_server::{run_fanout_stats, ClientStats};
use guardspec_workloads::Scale;
use std::io::Write;
use std::path::PathBuf;

#[derive(Debug)]
struct Args {
    servers: Vec<String>,
    spec: String,
    name: Option<String>,
    scale: Scale,
    out: Option<PathBuf>,
    client: Option<String>,
    observe: bool,
    healthz: bool,
    metrics: bool,
    stream: bool,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        servers: Vec::new(),
        spec: "table3".to_string(),
        name: None,
        scale: Scale::Test,
        out: None,
        client: None,
        observe: false,
        healthz: false,
        metrics: false,
        stream: false,
    };
    let mut args: Box<dyn Iterator<Item = String>> = Box::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--servers" => {
                parsed.servers = take_value(&mut args, "--servers")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--spec" => {
                let v = take_value(&mut args, "--spec")?;
                if v != "table3" && v != "ablation" {
                    return Err(format!("bad --spec {v:?} (want table3|ablation)"));
                }
                parsed.spec = v;
            }
            "--name" => parsed.name = Some(take_value(&mut args, "--name")?),
            "--scale" => parsed.scale = parse_scale(&take_value(&mut args, "--scale")?)?,
            "--out" => parsed.out = Some(PathBuf::from(take_value(&mut args, "--out")?)),
            "--client" => parsed.client = Some(take_value(&mut args, "--client")?),
            "--observe" => parsed.observe = true,
            "--healthz" => parsed.healthz = true,
            "--metrics" => parsed.metrics = true,
            "--stream" => parsed.stream = true,
            other => return Err(unknown_argument(other)),
        }
    }
    if parsed.servers.is_empty() {
        return Err("--servers is required".to_string());
    }
    if parsed.stream && parsed.servers.len() > 1 {
        return Err("--stream works with exactly one server (no fan-out)".to_string());
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gsc: {e}");
            std::process::exit(2);
        }
    };
    if args.healthz || args.metrics {
        let path = if args.healthz { "/healthz" } else { "/metrics" };
        let mut failed = false;
        for addr in &args.servers {
            match http::get(addr, path) {
                Ok((status, body)) => {
                    println!("{addr}: {status} {body}");
                    failed |= status != 200;
                }
                Err(e) => {
                    println!("{addr}: unreachable ({e})");
                    failed = true;
                }
            }
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    let name = args.name.clone().unwrap_or_else(|| args.spec.clone());
    let mut request = match args.spec.as_str() {
        "ablation" => ablation_request(&name, args.scale),
        _ => three_schemes_request(&name, args.scale),
    };
    request.client = args.client.clone();
    request.observe = args.observe;
    let result = if args.stream {
        run_streaming(&args.servers[0], &request)
    } else {
        run_fanout_stats(&args.servers, &request)
    };
    match result {
        Ok((body, stats)) => {
            eprintln!(
                "gsc: shards={} connections={} client.retries={}",
                args.servers.len(),
                stats.connections_opened,
                stats.retries
            );
            if let Some(out) = &args.out {
                if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).ok();
                }
                if let Err(e) = std::fs::write(out, &body) {
                    eprintln!("gsc: writing {}: {e}", out.display());
                    std::process::exit(1);
                }
                eprintln!("gsc: wrote {}", out.display());
            } else {
                println!("{body}");
                std::io::stdout().flush().ok();
            }
        }
        Err(e) => {
            eprintln!("gsc: {e}");
            std::process::exit(1);
        }
    }
}

/// Single-server streaming run: stage events to stderr as they land, the
/// final artifact returned like any other run.
fn run_streaming(
    addr: &str,
    request: &guardspec_server::RunRequest,
) -> Result<(String, ClientStats), String> {
    let body = request_to_json(request).to_compact();
    let mut conn = ClientConn::new(addr);
    let (status, artifact) = conn
        .post_stream("/run?stream=1", body.as_bytes(), |line| {
            eprintln!("gsc: event {line}");
        })
        .map_err(|e| format!("POST {addr}/run?stream=1 failed: {e}"))?;
    let text = String::from_utf8_lossy(&artifact).to_string();
    if status != 200 {
        return Err(format!("{addr}/run returned {status}: {text}"));
    }
    Ok((
        text,
        ClientStats {
            retries: 0,
            connections_opened: conn.connections_opened(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        let err = parse(&["--servers", "x:1", "--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn servers_split_on_commas() {
        let a = parse(&[
            "--servers",
            "a:1,b:2",
            "--spec",
            "ablation",
            "--scale",
            "small",
        ])
        .unwrap();
        assert_eq!(a.servers, ["a:1", "b:2"]);
        assert_eq!(a.spec, "ablation");
        assert_eq!(a.scale, Scale::Small);
    }

    #[test]
    fn stream_requires_a_single_server() {
        assert!(parse(&["--servers", "a:1", "--stream"]).unwrap().stream);
        let err = parse(&["--servers", "a:1,b:2", "--stream"]).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
    }

    #[test]
    fn servers_are_required_and_specs_validated() {
        assert!(parse(&[]).unwrap_err().contains("--servers"));
        assert!(parse(&["--servers", "x:1", "--spec", "nope"])
            .unwrap_err()
            .contains("--spec"));
    }
}
