//! `gsd` — the guardspec simulation daemon.
//!
//! ```text
//! gsd [--port P] [--cache-dir DIR | --no-cache] [--workers N]
//!     [--queue-cap N] [--shard N/M] [--jobs N] [--est-job-ms MS]
//!     [--hold-ms MS] [--peers HOST:PORT,...] [--peer-timeout-ms MS]
//!     [--idle-timeout-ms MS] [--max-conn-requests N]
//!     [--pipeline-depth N] [--slow-ms MS]
//!     [--log-level off|error|warn|info|debug]
//! ```
//!
//! Binds 127.0.0.1, prints `gsd listening on ADDR shard N/M` once ready
//! (scrape the port with `--port 0`), and serves until SIGTERM/SIGINT —
//! on which it drains queued and in-flight jobs, refuses new ones with
//! 503, and exits 0.  Unknown flags print the offending flag and exit 2.
//!
//! The startup banner is the ONLY thing `gsd` ever writes to stdout;
//! diagnostics are structured JSON log lines on stderr (one object per
//! line, gated by `--log-level`, default `info`).

use guardspec_harness::args::{take_value, unknown_argument};
use guardspec_harness::log::{self as glog, parse_log_level, LogLevel};
use guardspec_server::{Server, ServerConfig, ShardSpec};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use super::*;

    pub static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install SIGINT (2) and SIGTERM (15) handlers via the libc `signal`
    /// symbol the process already links — no external crate needed.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use super::*;
    pub static SIGNALED: AtomicBool = AtomicBool::new(false);
    pub fn install() {}
}

fn parse_config(argv: impl Iterator<Item = String>) -> Result<(ServerConfig, LogLevel), String> {
    let mut config = ServerConfig::default();
    let mut level = LogLevel::Info;
    let mut args: Box<dyn Iterator<Item = String>> = Box::new(argv);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                let v = take_value(&mut args, "--port")?;
                config.port = v.parse().map_err(|_| format!("bad --port {v:?}"))?;
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(take_value(&mut args, "--cache-dir")?));
            }
            "--no-cache" => config.cache_dir = None,
            "--workers" => {
                let v = take_value(&mut args, "--workers")?;
                config.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--queue-cap" => {
                let v = take_value(&mut args, "--queue-cap")?;
                config.queue_cap = v.parse().map_err(|_| format!("bad --queue-cap {v:?}"))?;
            }
            "--shard" => {
                config.shard = ShardSpec::parse(&take_value(&mut args, "--shard")?)?;
            }
            "--jobs" => {
                let v = take_value(&mut args, "--jobs")?;
                config.jobs_per_request = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
            }
            "--est-job-ms" => {
                let v = take_value(&mut args, "--est-job-ms")?;
                config.est_job_ms = v.parse().map_err(|_| format!("bad --est-job-ms {v:?}"))?;
            }
            "--hold-ms" => {
                let v = take_value(&mut args, "--hold-ms")?;
                config.hold_ms = v.parse().map_err(|_| format!("bad --hold-ms {v:?}"))?;
            }
            "--peers" => {
                config.peers = take_value(&mut args, "--peers")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--idle-timeout-ms" => {
                let v = take_value(&mut args, "--idle-timeout-ms")?;
                config.idle_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --idle-timeout-ms {v:?}"))?;
            }
            "--max-conn-requests" => {
                let v = take_value(&mut args, "--max-conn-requests")?;
                config.max_conn_requests = v
                    .parse()
                    .map_err(|_| format!("bad --max-conn-requests {v:?}"))?;
            }
            "--pipeline-depth" => {
                let v = take_value(&mut args, "--pipeline-depth")?;
                config.pipeline_depth = v
                    .parse()
                    .map_err(|_| format!("bad --pipeline-depth {v:?}"))?;
            }
            "--peer-timeout-ms" => {
                let v = take_value(&mut args, "--peer-timeout-ms")?;
                config.peer_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --peer-timeout-ms {v:?}"))?;
            }
            "--slow-ms" => {
                let v = take_value(&mut args, "--slow-ms")?;
                config.slow_ms = Some(v.parse().map_err(|_| format!("bad --slow-ms {v:?}"))?);
            }
            "--log-level" => {
                level = parse_log_level(&take_value(&mut args, "--log-level")?)?;
            }
            other => return Err(unknown_argument(other)),
        }
    }
    Ok((config, level))
}

fn main() {
    let (config, level) = match parse_config(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gsd: {e}");
            std::process::exit(2);
        }
    };
    glog::set_level(level);
    sig::install();
    let shard = config.shard;
    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gsd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("gsd listening on {} shard {}", handle.addr(), shard.tag());
    std::io::stdout().flush().ok();
    while !sig::SIGNALED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    glog::info("daemon.draining", &[]);
    handle.shutdown();
    glog::info("daemon.drained", &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<(ServerConfig, LogLevel), String> {
        parse_config(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        let err = parse(&["--port", "0", "--frobnicate"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn known_flags_parse() {
        let (c, level) = parse(&[
            "--port",
            "8123",
            "--no-cache",
            "--workers",
            "3",
            "--queue-cap",
            "7",
            "--shard",
            "1/4",
            "--jobs",
            "2",
            "--est-job-ms",
            "50",
            "--hold-ms",
            "5",
            "--peers",
            "127.0.0.1:7001, 127.0.0.1:7002",
            "--idle-timeout-ms",
            "1500",
            "--max-conn-requests",
            "64",
            "--pipeline-depth",
            "4",
            "--peer-timeout-ms",
            "250",
            "--slow-ms",
            "900",
            "--log-level",
            "debug",
        ])
        .unwrap();
        assert_eq!(c.port, 8123);
        assert_eq!(c.cache_dir, None);
        assert_eq!(c.workers, 3);
        assert_eq!(c.queue_cap, 7);
        assert_eq!(c.shard.tag(), "1/4");
        assert_eq!(c.jobs_per_request, 2);
        assert_eq!(c.est_job_ms, 50);
        assert_eq!(c.hold_ms, 5);
        assert_eq!(c.peers, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(c.idle_timeout_ms, 1500);
        assert_eq!(c.max_conn_requests, 64);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.peer_timeout_ms, 250);
        assert_eq!(c.slow_ms, Some(900));
        assert_eq!(level, LogLevel::Debug);
    }

    #[test]
    fn telemetry_defaults_are_quietly_sane() {
        let (c, level) = parse(&[]).unwrap();
        assert_eq!(c.peer_timeout_ms, 2_000);
        assert_eq!(c.slow_ms, None);
        assert_eq!(level, LogLevel::Info);
        assert!(parse(&["--log-level", "shouty"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--port"]).is_err());
    }
}
