//! The daemon core: epoll connection plane, worker pool and the glue
//! between [`crate::dedup`], [`crate::queue`], [`crate::peer`] and the
//! harness runner.
//!
//! One [`Server`] owns one [`guardspec_harness::DiskCache`] handle shared
//! by every request, so the content-addressed cache — not the HTTP layer —
//! is what makes warm requests fast.  The request lifecycle:
//!
//! 1. the event loop ([`crate::event_loop`]) parses requests incrementally
//!    off nonblocking sockets and calls [`Service::handle`];
//! 2. [`crate::protocol::request_key`] names the flight; the first arrival
//!    becomes the owner, duplicates register completion callbacks and wait
//!    without holding a thread;
//! 3. the owner answers straight from the response cache when the finished
//!    artifact is already on disk ([`crate::protocol::response_key`]),
//!    otherwise it queues one job;
//! 4. a worker pops the job (round-robin across client lanes), consults
//!    cache peers ([`crate::peer`]) for the finished artifact, and only
//!    then runs [`guardspec_harness::run_experiment_shared`]; the published
//!    outcome fans out to every connection on the flight.
//!
//! Streaming requests (`POST /run?stream=1`) additionally wire a
//! [`ProgressHook`] from the harness into the owner's connection: stage
//! start/done events appear on the wire as they happen, then the same
//! stable artifact bytes close the stream.  The stream flag is transport
//! dressing — it is *not* part of the request key, so a streamed and a
//! plain request for the same question share one flight and one artifact.
//!
//! **Telemetry** (DESIGN.md §15): every request lands a sample in the
//! `request.latency` histogram; `?trace=1` (or an inbound `X-Trace-Id`,
//! or a configured `--slow-ms`) additionally builds a
//! [`crate::trace::RequestTrace`] whose spans tile the whole lifecycle —
//! `admit` → `queue.wait` → `flight` (containing `peer.pull` and the
//! harness runner's five stage spans, time-shifted onto the request
//! clock) → `respond`; joiners record a `dedup.join` span carrying the
//! owning flight's trace id.  Finished timelines are returned inline
//! (`?trace=1` wraps the artifact in a `{trace_id, trace, artifact}`
//! envelope; streams emit an `{"event":"trace",...}` line) and buffered
//! in a bounded ring drained by `GET /trace` as one Chrome trace
//! document.  `GET /metrics` speaks Prometheus text by default and the
//! legacy JSON under `Accept: application/json`.  None of this perturbs
//! artifact bytes: the stable JSON never contains spans or metrics.
//!
//! Shutdown is cooperative: [`ServerHandle::begin_shutdown`] closes the
//! queue (new work gets 503), the event loop keeps answering `/healthz`
//! ("draining") until every queued and in-flight job has published and
//! every response byte is flushed, then the loop exits and the workers
//! are joined.

use crate::dedup::{FlightMap, Outcome};
use crate::event_loop::{run_event_loop, EventLoopConfig, Responder, Service, Wakeup};
use crate::http::HttpRequest;
use crate::peer::PeerSet;
use crate::protocol::{self, RunRequest};
use crate::queue::{FairQueue, PushError};
use crate::shard::{check_request_routing, ShardSpec};
use crate::trace::{mint_trace_id, RequestTrace, TraceRing};
use guardspec_harness::{
    chrome_trace_json, chrome_trace_json_grouped, log as glog, registry_prometheus_text,
    run_experiment_shared, stable_json, DiskCache, Json, MetricsRegistry, ProgressEvent,
    ProgressHook, RunOptions,
};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completed request timelines kept for `GET /trace` scrapers.
const TRACE_RING_CAP: usize = 64;

/// How a [`Server`] is wired up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP port; `0` picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Disk cache root; `None` disables caching (every request simulates).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Total queued-job cap across all clients (admission control).
    pub queue_cap: usize,
    /// Testing hook: each worker sleeps this long before executing a job,
    /// widening the dedup window deterministically.
    pub hold_ms: u64,
    /// This daemon's slice of a sharded sweep.
    pub shard: ShardSpec,
    /// `RunOptions::jobs` for each experiment (intra-request parallelism).
    pub jobs_per_request: usize,
    /// Per-job service-time estimate behind the 429 `Retry-After` hint.
    pub est_job_ms: u64,
    /// Sibling daemons (`host:port`) to probe for finished artifacts
    /// before simulating.  Empty disables peering.
    pub peers: Vec<String>,
    /// Per-probe peer budget (connect + read + write), `--peer-timeout-ms`.
    pub peer_timeout_ms: u64,
    /// Close keep-alive connections idle this long (ms).
    pub idle_timeout_ms: u64,
    /// Close a connection after serving this many requests.
    pub max_conn_requests: u64,
    /// Per-connection pipelining depth cap.
    pub pipeline_depth: usize,
    /// Trace every request and log (level `warn`, with the full span
    /// tree) any that takes at least this long, `--slow-ms`.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            cache_dir: Some(PathBuf::from("results/cache")),
            workers: 2,
            queue_cap: 64,
            hold_ms: 0,
            shard: ShardSpec::default(),
            jobs_per_request: 1,
            est_job_ms: 1000,
            peers: Vec::new(),
            peer_timeout_ms: 2_000,
            idle_timeout_ms: 30_000,
            max_conn_requests: 1000,
            pipeline_depth: 16,
            slow_ms: None,
        }
    }
}

/// One unit of work.  The spec is resolved on the worker (parsing
/// programs is work; the event loop doesn't do work), so the job carries
/// the raw request.
struct Job {
    key: String,
    resp_key: String,
    request: RunRequest,
    /// Forwards harness stage events: always feeds the per-stage latency
    /// histograms, and additionally the owning connection on streams.
    progress: ProgressHook,
    /// When the owner admitted this job to the queue (`queue.wait`).
    enqueued: Instant,
    /// Present when the owning request is traced.
    trace: Option<Arc<RequestTrace>>,
}

/// State shared by the event loop and workers.
struct Shared {
    config: ServerConfig,
    cache: Arc<DiskCache>,
    metrics: Arc<MetricsRegistry>,
    queue: FairQueue<Job>,
    flights: FlightMap,
    peers: PeerSet,
    /// Completed request timelines, drained by `GET /trace`.
    traces: Arc<TraceRing>,
    /// Monotone per-daemon counter feeding deterministic trace ids.
    trace_epoch: AtomicU64,
    /// Set by `begin_shutdown`; checked by the loop and handlers.
    draining: AtomicBool,
    /// Jobs popped by a worker but not yet published.
    executing: AtomicU64,
}

pub struct Server;

/// A running daemon.  Dropping the handle does *not* stop the server —
/// call [`ServerHandle::begin_shutdown`] (or send the process SIGTERM via
/// the `gsd` binary) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    wake: Arc<Wakeup>,
    loop_thread: Option<JoinHandle<std::io::Result<()>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the event loop, return the handle.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => DiskCache::new(dir.clone()),
            None => DiskCache::disabled(),
        });
        let wake = Arc::new(Wakeup::new()?);
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_cap, config.est_job_ms),
            cache,
            metrics: Arc::new(MetricsRegistry::new()),
            flights: FlightMap::new(),
            peers: PeerSet::new(
                &config.peers,
                Duration::from_millis(config.peer_timeout_ms.max(1)),
            ),
            traces: Arc::new(TraceRing::new(TRACE_RING_CAP)),
            trace_epoch: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            executing: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let loop_cfg = EventLoopConfig {
            idle_timeout_ms: shared.config.idle_timeout_ms,
            max_conn_requests: shared.config.max_conn_requests.max(1),
            pipeline_depth: shared.config.pipeline_depth.max(1),
        };
        let loop_thread = {
            let service: Arc<dyn Service> = shared.clone();
            let wake = wake.clone();
            Some(std::thread::spawn(move || {
                run_event_loop(listener, service, wake, loop_cfg)
            }))
        };
        Ok(ServerHandle {
            addr,
            shared,
            wake,
            loop_thread,
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admitting work; queued and in-flight jobs keep draining.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.wake.notify();
    }

    /// Wait until the drain completes and every thread has exited.
    pub fn join(mut self) {
        if let Some(t) = self.loop_thread.take() {
            t.join()
                .expect("event loop panicked")
                .expect("event loop failed");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
    }

    /// `begin_shutdown` + `join` in one call.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

// --- the Service the event loop drives ------------------------------------

impl Service for Shared {
    fn handle(&self, req: HttpRequest, peer: SocketAddr, responder: Responder) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => respond(&responder, healthz(self)),
            ("GET", "/metrics") => respond(&responder, metrics(self, &req)),
            ("GET", "/trace") => respond(&responder, trace_dump(self)),
            ("GET", path) if path.starts_with("/cache/") => {
                cache_probe(self, &path["/cache/".len()..], &responder)
            }
            ("POST", "/run") => run(self, &req, peer, responder),
            _ => respond(
                &responder,
                error_reply(404, &format!("no route {} {}", req.method, req.path)),
            ),
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn drained(&self) -> bool {
        drained(self)
    }

    fn metric_incr(&self, name: &str) {
        self.metrics.incr(name);
    }

    fn metric_max(&self, name: &str, value: u64) {
        self.metrics.record_max(name, value);
    }

    fn metric_time(&self, name: &str, ns: u64) {
        self.metrics.time_ns(name, ns);
    }
}

/// Fully drained: nothing queued, nothing executing, every flight
/// published.  (Connection quiescence is the event loop's own check.)
fn drained(shared: &Shared) -> bool {
    shared.queue.is_empty()
        && shared.executing.load(Ordering::SeqCst) == 0
        && shared.flights.in_flight() == 0
}

// --- request handling (event-loop thread: parse, route, never compute) ----

type Reply = (u16, Vec<(&'static str, String)>, String);

fn respond(responder: &Responder, reply: Reply) {
    let (status, headers, body) = reply;
    let headers = headers
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    responder.reply(status, headers, body.into_bytes());
}

fn healthz(shared: &Shared) -> Reply {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let body = Json::obj(vec![
        ("status", Json::str(status)),
        ("shard", Json::str(shared.config.shard.tag())),
    ]);
    (200, Vec::new(), body.to_compact())
}

/// `GET /metrics`: Prometheus text exposition by default, the legacy
/// JSON document under `Accept: application/json`.
fn metrics(shared: &Shared, req: &HttpRequest) -> Reply {
    let gauges: [(&str, u64); 6] = [
        ("queue_depth", shared.queue.len() as u64),
        ("in_flight", shared.flights.in_flight() as u64),
        ("executing", shared.executing.load(Ordering::SeqCst)),
        ("cache_hits", shared.cache.hits()),
        ("cache_misses", shared.cache.misses()),
        ("cache_race_lost", shared.cache.race_lost()),
    ];
    let wants_json = req
        .header("accept")
        .is_some_and(|a| a.contains("application/json"));
    if !wants_json {
        let text = registry_prometheus_text("gsd", &gauges, &shared.metrics);
        return (
            200,
            vec![(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8".to_string(),
            )],
            text,
        );
    }
    let counters: Vec<(String, Json)> = shared
        .metrics
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k, Json::U64(v)))
        .collect();
    let body = Json::obj(vec![
        ("queue_depth", Json::U64(gauges[0].1)),
        ("in_flight", Json::U64(gauges[1].1)),
        ("executing", Json::U64(gauges[2].1)),
        ("cache_hits", Json::U64(gauges[3].1)),
        ("cache_misses", Json::U64(gauges[4].1)),
        ("cache_race_lost", Json::U64(gauges[5].1)),
        ("counters", Json::Obj(counters)),
    ]);
    (200, Vec::new(), body.to_pretty())
}

/// `GET /trace`: drain the ring of completed request timelines as one
/// Chrome trace document (read-once — each request appears to exactly
/// one scraper).
fn trace_dump(shared: &Shared) -> Reply {
    let groups = shared.traces.drain();
    let doc = chrome_trace_json_grouped(&groups);
    (200, Vec::new(), doc.to_pretty())
}

/// `GET /cache/<key>`: the peering endpoint.  Serves raw local cache
/// bytes counter-free (see `DiskCache::peek`) so sibling daemons probing
/// for finished artifacts never skew this daemon's cache-efficacy
/// numbers.  The key charset is locked down — a key is a hash name, not
/// a path.
fn cache_probe(shared: &Shared, key: &str, responder: &Responder) {
    let valid = !key.is_empty()
        && key.len() <= 128
        && key
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-');
    if !valid {
        return respond(responder, error_reply(400, "malformed cache key"));
    }
    match shared.cache.peek(key) {
        Some(bytes) => {
            shared.metrics.incr("cache.peer_served");
            responder.reply(200, Vec::new(), bytes);
        }
        None => respond(responder, error_reply(404, "not cached here")),
    }
}

fn run(shared: &Shared, req: &HttpRequest, peer: SocketAddr, responder: Responder) {
    let t_start = Instant::now();
    shared.metrics.incr("requests.run");
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(guardspec_harness::json::parse)
        .and_then(|j| protocol::request_from_json(&j))
        .and_then(|r| {
            check_request_routing(&shared.config.shard, &r)?;
            Ok(r)
        });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.incr("requests.bad");
            return respond(&responder, error_reply(400, &e));
        }
    };
    let key = protocol::request_key(&request);
    let resp_key = protocol::response_key(&key);
    let want_stream = req.query_flag("stream");

    // A request is traced when the client asks (`?trace=1`), when an
    // upstream daemon forwarded its id (`X-Trace-Id`), or when `--slow-ms`
    // wants every request's timeline on standby.  Client-supplied ids
    // win; minted ids are deterministic (key hash + daemon epoch).
    let want_trace = req.query_flag("trace");
    let hdr_trace = req.header("x-trace-id").map(str::to_string);
    let trace = (want_trace || hdr_trace.is_some() || shared.config.slow_ms.is_some()).then(|| {
        let id = hdr_trace.unwrap_or_else(|| {
            mint_trace_id(&key, shared.trace_epoch.fetch_add(1, Ordering::Relaxed))
        });
        Arc::new(RequestTrace::new(id))
    });
    if let Some(tr) = &trace {
        // If an open flight already carries a trace, we are about to join
        // it — remember the owner's id for the `dedup.join` span.  (Set
        // preemptively: owners simply never read it.)
        if let Some(owner_id) = shared.flights.trace_of(&key) {
            tr.set_joined(owner_id);
        }
    }

    // Everyone — owner and joiners alike — answers through the flight.
    // The flag starts "joiner" and the owner clears it right after
    // `enter_async`, before any publish can fire the waiter.
    let joined = Arc::new(AtomicBool::new(true));
    let waiter = {
        let responder = responder.clone();
        let metrics = shared.metrics.clone();
        let traces = shared.traces.clone();
        let trace = trace.clone();
        let joined = joined.clone();
        let slow_ms = shared.config.slow_ms;
        Box::new(move |outcome: Outcome| {
            let t_done = Instant::now();
            metrics.time_ns(
                "request.latency",
                t_done.duration_since(t_start).as_nanos() as u64,
            );
            let reply = outcome_reply(&outcome);
            let Some(tr) = trace else {
                return respond(&responder, reply);
            };
            if joined.load(Ordering::SeqCst) {
                metrics.time_ns(
                    "flight.wait",
                    t_done.duration_since(tr.started()).as_nanos() as u64,
                );
                let owner = tr.joined().unwrap_or_default();
                tr.span_args(
                    "dedup.join",
                    "flight",
                    tr.started(),
                    t_done,
                    vec![("owner_trace".to_string(), owner)],
                );
            } else if let Some(t_pub) = tr.published() {
                tr.span("respond", "respond", t_pub, t_done);
            }
            tr.span("request", "request", tr.started(), t_done);
            let spans = tr.finish();
            let doc = chrome_trace_json(&spans, &[]);
            let elapsed_ms = t_done.duration_since(tr.started()).as_millis() as u64;
            if slow_ms.is_some_and(|limit| elapsed_ms >= limit) {
                glog::warn(
                    "request.slow",
                    &[
                        ("trace_id", Json::str(&tr.id)),
                        ("ms", Json::U64(elapsed_ms)),
                        ("trace", doc.clone()),
                    ],
                );
            }
            traces.push(tr.id.clone(), spans);
            let (status, headers, body) = reply;
            if !(want_trace && status == 200) {
                return respond(&responder, (status, headers, body));
            }
            if want_stream {
                // The timeline rides the stream as its own event line;
                // the artifact bytes close the stream untouched.
                let line = Json::obj(vec![
                    ("event", Json::str("trace")),
                    ("trace_id", Json::str(&tr.id)),
                    ("trace", doc),
                ]);
                responder.event(&line.to_compact());
                respond(&responder, (status, headers, body));
            } else {
                // Envelope: the artifact travels as a JSON *string*, so
                // clients recover its exact bytes by unescaping — the
                // stable artifact stays byte-identical, traced or not.
                let envelope = Json::obj(vec![
                    ("trace_id", Json::str(&tr.id)),
                    ("trace", doc),
                    ("artifact", Json::str(&body)),
                ]);
                respond(&responder, (200, headers, envelope.to_pretty()));
            }
        })
    };
    let owner = shared.flights.enter_async(&key, waiter);
    if !owner {
        shared.metrics.incr("dedup.joined");
        return;
    }
    joined.store(false, Ordering::SeqCst);
    if let Some(tr) = &trace {
        shared.flights.set_trace(&key, &tr.id);
    }

    // Owner path: every exit publishes *something* so joiners never hang.
    if shared.draining.load(Ordering::SeqCst) {
        return shared.flights.publish(&key, Outcome::Draining);
    }
    // Finished-artifact fast path: a disk read, cheap enough for the loop
    // thread, and it skips the queue (and `hold_ms`) entirely.
    if let Some(body) = shared.cache.get(&resp_key) {
        shared.metrics.incr("jobs.resp_cached");
        if let Some(tr) = &trace {
            let t_hit = tr.mark_published();
            tr.span("resp_cache", "flight", tr.started(), t_hit);
        }
        return shared.flights.publish(&key, Outcome::Done(Arc::new(body)));
    }
    let progress = {
        let metrics = shared.metrics.clone();
        let stream_to = want_stream.then(|| responder.clone());
        ProgressHook(Arc::new(move |ev: &ProgressEvent| {
            if ev.done {
                metrics.time_ns(&format!("stage.{}", ev.stage), (ev.ms * 1e6) as u64);
            }
            if let Some(r) = &stream_to {
                r.event(&progress_line(ev));
            }
        }))
    };
    let client = request
        .client
        .clone()
        .unwrap_or_else(|| peer.ip().to_string());
    let enqueued = match &trace {
        Some(tr) => {
            let t_enq = tr.mark_enqueued();
            tr.span("admit", "admit", tr.started(), t_enq);
            t_enq
        }
        None => Instant::now(),
    };
    let job = Job {
        key: key.clone(),
        resp_key,
        request,
        progress,
        enqueued,
        trace: trace.clone(),
    };
    match shared.queue.push(&client, job) {
        Ok(()) => {} // a worker now owns publication
        Err(PushError::Full { retry_after_ms }) => {
            shared.metrics.incr("requests.rejected");
            shared
                .flights
                .publish(&key, Outcome::Rejected { retry_after_ms });
        }
        Err(PushError::Draining) => shared.flights.publish(&key, Outcome::Draining),
    }
}

/// One NDJSON stage event.  Schema (documented in DESIGN.md §13):
/// `{"event":"stage_start","stage":S,"unit":U}` and
/// `{"event":"stage_done","stage":S,"unit":U,"cached":B,"ms":F}`.
fn progress_line(ev: &ProgressEvent) -> String {
    let mut pairs = vec![
        (
            "event",
            Json::str(if ev.done { "stage_done" } else { "stage_start" }),
        ),
        ("stage", Json::str(ev.stage)),
        ("unit", Json::str(&ev.unit)),
    ];
    if ev.done {
        pairs.push(("cached", Json::Bool(ev.cached)));
        pairs.push(("ms", Json::F64(ev.ms)));
    }
    Json::obj(pairs).to_compact()
}

fn outcome_reply(outcome: &Outcome) -> Reply {
    match outcome {
        Outcome::Done(body) => (200, Vec::new(), body.as_str().to_string()),
        Outcome::Rejected { retry_after_ms } => {
            let secs = retry_after_ms.div_ceil(1000).max(1);
            let body = Json::obj(vec![
                ("error", Json::str("queue full")),
                ("retry_after_ms", Json::U64(*retry_after_ms)),
            ]);
            (
                429,
                vec![("Retry-After", secs.to_string())],
                body.to_compact(),
            )
        }
        Outcome::Failed(msg) => {
            let status = if msg.starts_with("bad request:") {
                400
            } else {
                500
            };
            error_reply(status, msg)
        }
        Outcome::Draining => error_reply(503, "draining: server is shutting down"),
    }
}

fn error_reply(status: u16, msg: &str) -> Reply {
    let body = Json::obj(vec![("error", Json::str(msg))]);
    (status, Vec::new(), body.to_compact())
}

// --- workers -------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.executing.fetch_add(1, Ordering::SeqCst);
        let t_pop = Instant::now();
        shared.metrics.time_ns(
            "queue.wait",
            t_pop.duration_since(job.enqueued).as_nanos() as u64,
        );
        if shared.config.hold_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.hold_ms));
        }
        let outcome = execute(&job, shared);
        if let Outcome::Done(body) = &outcome {
            // Feed the response cache (and thereby our peers) before
            // publishing, so a peer probing right after our clients see
            // the bytes finds them too.
            shared.cache.put(&job.resp_key, body);
        }
        if let Some(tr) = &job.trace {
            // Spans must land before publish — publication fires the
            // waiter, which drains the recorder.
            let t_pub = tr.mark_published();
            if let Some(t_enq) = tr.enqueued() {
                tr.span("queue.wait", "queue", t_enq, t_pop);
            }
            tr.span("flight", "flight", t_pop, t_pub);
        }
        shared.flights.publish(&job.key, outcome);
        shared.executing.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Worker path: peers first (a network read beats a simulation by orders
/// of magnitude), then the full pipeline.  Runs strictly as the flight
/// owner's delegate, so a peered fetch and a local compute for the same
/// key can never race.
fn execute(job: &Job, shared: &Shared) -> Outcome {
    if !shared.peers.is_empty() {
        let t0 = Instant::now();
        let trace_id = job.trace.as_ref().map(|t| t.id.clone());
        let fetched = fetch_from_peers(shared, &job.resp_key, trace_id.as_deref());
        if let Some(tr) = &job.trace {
            tr.span_args(
                "peer.pull",
                "peer",
                t0,
                Instant::now(),
                vec![("hit".to_string(), fetched.is_some().to_string())],
            );
        }
        match fetched {
            Some(body) => {
                shared.metrics.incr("cache.peer_hits");
                return Outcome::Done(Arc::new(body));
            }
            None => shared.metrics.incr("cache.peer_misses"),
        }
    }
    let spec = match protocol::to_spec(&job.request) {
        Ok(s) => s,
        Err(e) => {
            shared.metrics.incr("requests.bad");
            return Outcome::Failed(format!("bad request: {e}"));
        }
    };
    let opts = RunOptions {
        jobs: shared.config.jobs_per_request.max(1),
        cache_dir: None, // ignored: the shared handle wins
        observe: job.request.observe,
        sample: job.request.sample,
        progress: Some(job.progress.clone()),
        trace_spans: job.trace.is_some(),
        ..RunOptions::default()
    };
    let started = Instant::now();
    let cache = shared.cache.clone();
    let run = catch_unwind(AssertUnwindSafe(|| {
        run_experiment_shared(&spec, &opts, cache)
    }));
    match run {
        Ok(mut result) => {
            shared.metrics.incr("jobs.executed");
            shared
                .metrics
                .add("jobs.wall_us", started.elapsed().as_micros() as u64);
            let mut profile_us = 0u64;
            for w in &result.workloads {
                profile_us += (w.timing.ms * 1000.0) as u64;
            }
            let (mut transform_us, mut trace_us, mut sim_us) = (0u64, 0u64, 0u64);
            for c in &result.cells {
                if let Some(t) = c.transform_timing {
                    transform_us += (t.ms * 1000.0) as u64;
                }
                if let Some(t) = c.trace_timing {
                    trace_us += (t.ms * 1000.0) as u64;
                }
                sim_us += (c.sim_timing.ms * 1000.0) as u64;
            }
            shared.metrics.add("stage.profile_us", profile_us);
            shared.metrics.add("stage.transform_us", transform_us);
            shared.metrics.add("stage.trace_us", trace_us);
            shared.metrics.add("stage.simulate_us", sim_us);
            if let Some(tr) = &job.trace {
                // The runner's stage spans are timestamped from its own
                // origin; shift them onto the request clock.  The stable
                // artifact never contains spans, so taking them cannot
                // perturb response bytes.
                tr.absorb(std::mem::take(&mut result.spans), started);
            }
            Outcome::Done(Arc::new(stable_json(&result).to_pretty()))
        }
        Err(panic) => {
            shared.metrics.incr("jobs.failed");
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("job panicked");
            Outcome::Failed(format!("job failed: {msg}"))
        }
    }
}

/// A peer's bytes are only trusted if they parse as JSON — a truncated
/// or corrupt blob degrades to local compute, never to a bad response.
/// A traced request's id rides the probe as `X-Trace-Id`.
fn fetch_from_peers(shared: &Shared, resp_key: &str, trace_id: Option<&str>) -> Option<String> {
    let bytes = shared.peers.fetch(resp_key, trace_id, &shared.metrics)?;
    let body = String::from_utf8(bytes).ok()?;
    guardspec_harness::json::parse(&body).ok()?;
    shared.cache.put(resp_key, &body);
    Some(body)
}
