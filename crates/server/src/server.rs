//! The daemon core: accept loop, connection handlers, worker pool and the
//! glue between [`crate::dedup`], [`crate::queue`] and the harness runner.
//!
//! One [`Server`] owns one [`guardspec_harness::DiskCache`] handle shared
//! by every request, so the content-addressed cache — not the HTTP layer —
//! is what makes warm requests fast.  The request lifecycle:
//!
//! 1. the connection thread parses the body and validates shard routing;
//! 2. [`crate::protocol::request_key`] names the flight; the first arrival
//!    becomes the owner and pushes one job, duplicates join and wait;
//! 3. a worker pops the job (round-robin across client lanes), runs it via
//!    [`guardspec_harness::run_experiment_shared`] and publishes the stable
//!    artifact JSON;
//! 4. everyone blocked on the flight writes the same bytes back.
//!
//! Shutdown is cooperative: [`ServerHandle::begin_shutdown`] closes the
//! queue (new work gets 503), the accept loop keeps answering `/healthz`
//! ("draining") until every queued and in-flight job has published, then
//! the listener stops and the workers are joined.

use crate::dedup::{Entered, FlightMap, FlightTicket, Outcome};
use crate::http::{self, HttpRequest};
use crate::protocol::{self, RunRequest};
use crate::queue::{FairQueue, PushError};
use crate::shard::{check_request_routing, ShardSpec};
use guardspec_harness::{
    run_experiment_shared, stable_json, DiskCache, ExperimentSpec, Json, MetricsRegistry,
    RunOptions,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a [`Server`] is wired up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP port; `0` picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Disk cache root; `None` disables caching (every request simulates).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Total queued-job cap across all clients (admission control).
    pub queue_cap: usize,
    /// Testing hook: each worker sleeps this long before executing a job,
    /// widening the dedup window deterministically.
    pub hold_ms: u64,
    /// This daemon's slice of a sharded sweep.
    pub shard: ShardSpec,
    /// `RunOptions::jobs` for each experiment (intra-request parallelism).
    pub jobs_per_request: usize,
    /// Per-job service-time estimate behind the 429 `Retry-After` hint.
    pub est_job_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            cache_dir: Some(PathBuf::from("results/cache")),
            workers: 2,
            queue_cap: 64,
            hold_ms: 0,
            shard: ShardSpec::default(),
            jobs_per_request: 1,
            est_job_ms: 1000,
        }
    }
}

/// One unit of work: a resolved spec plus the flight it publishes to.
struct Job {
    key: String,
    spec: ExperimentSpec,
    observe: bool,
    sample: Option<guardspec_sim::SampleParams>,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: ServerConfig,
    cache: Arc<DiskCache>,
    metrics: MetricsRegistry,
    queue: FairQueue<Job>,
    flights: FlightMap,
    /// Set by `begin_shutdown`; checked by the accept loop and handlers.
    draining: AtomicBool,
    /// Jobs popped by a worker but not yet published.
    executing: AtomicU64,
}

pub struct Server;

/// A running daemon.  Dropping the handle does *not* stop the server —
/// call [`ServerHandle::begin_shutdown`] (or send the process SIGTERM via
/// the `gsd` binary) and then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, return the handle.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => DiskCache::new(dir.clone()),
            None => DiskCache::disabled(),
        });
        let shared = Arc::new(Shared {
            queue: FairQueue::new(config.queue_cap, config.est_job_ms),
            cache,
            metrics: MetricsRegistry::new(),
            flights: FlightMap::new(),
            draining: AtomicBool::new(false),
            executing: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept_thread = {
            let shared = shared.clone();
            Some(std::thread::spawn(move || accept_loop(listener, &shared)))
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept_thread,
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admitting work; queued and in-flight jobs keep draining.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Wait until the drain completes and every thread has exited.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept loop panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
    }

    /// `begin_shutdown` + `join` in one call.
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

// --- accept loop ---------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_connection(stream, peer, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst) && drained(shared) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Fully drained: nothing queued, nothing executing, every flight
/// published.
fn drained(shared: &Shared) -> bool {
    shared.queue.is_empty()
        && shared.executing.load(Ordering::SeqCst) == 0
        && shared.flights.in_flight() == 0
}

// --- connection handling -------------------------------------------------

fn handle_connection(mut stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let Ok(req) = http::read_request(&mut stream) else {
        return; // unusable connection; nothing to answer
    };
    let (status, extra, body) = route(&req, peer, shared);
    let _ = http::write_response(&mut stream, status, &extra, body.as_bytes());
}

type Reply = (u16, Vec<(&'static str, String)>, String);

fn route(req: &HttpRequest, peer: SocketAddr, shared: &Shared) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/run") => run(req, peer, shared),
        _ => error_reply(404, &format!("no route {} {}", req.method, req.path)),
    }
}

fn healthz(shared: &Shared) -> Reply {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let body = Json::obj(vec![
        ("status", Json::str(status)),
        ("shard", Json::str(shared.config.shard.tag())),
    ]);
    (200, Vec::new(), body.to_compact())
}

fn metrics(shared: &Shared) -> Reply {
    let counters: Vec<(String, Json)> = shared
        .metrics
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k, Json::U64(v)))
        .collect();
    let body = Json::obj(vec![
        ("queue_depth", Json::U64(shared.queue.len() as u64)),
        ("in_flight", Json::U64(shared.flights.in_flight() as u64)),
        (
            "executing",
            Json::U64(shared.executing.load(Ordering::SeqCst)),
        ),
        ("cache_hits", Json::U64(shared.cache.hits())),
        ("cache_misses", Json::U64(shared.cache.misses())),
        ("cache_race_lost", Json::U64(shared.cache.race_lost())),
        ("counters", Json::Obj(counters)),
    ]);
    (200, Vec::new(), body.to_pretty())
}

fn run(req: &HttpRequest, peer: SocketAddr, shared: &Shared) -> Reply {
    shared.metrics.incr("requests.run");
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_reply(400, "body is not UTF-8"),
    };
    let parsed = guardspec_harness::json::parse(body)
        .and_then(|j| protocol::request_from_json(&j))
        .and_then(|r| {
            check_request_routing(&shared.config.shard, &r)?;
            Ok(r)
        });
    let request = match parsed {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.incr("requests.bad");
            return error_reply(400, &e);
        }
    };
    let key = protocol::request_key(&request);
    match shared.flights.enter(&key) {
        Entered::Owner(ticket) => {
            let outcome = admit(ticket, &key, request, peer, shared);
            outcome_reply(&outcome)
        }
        Entered::Joined(outcome) => {
            shared.metrics.incr("dedup.joined");
            outcome_reply(&outcome)
        }
    }
}

/// Owner path: resolve the spec, enqueue the job, wait for publication.
/// Every exit publishes *something* so joiners never hang.
fn admit(
    ticket: FlightTicket,
    key: &str,
    request: RunRequest,
    peer: SocketAddr,
    shared: &Shared,
) -> Outcome {
    if shared.draining.load(Ordering::SeqCst) {
        let outcome = Outcome::Draining;
        shared.flights.publish(key, outcome.clone());
        return outcome;
    }
    let spec = match protocol::to_spec(&request) {
        Ok(s) => s,
        Err(e) => {
            shared.metrics.incr("requests.bad");
            let outcome = Outcome::Failed(format!("bad request: {e}"));
            shared.flights.publish(key, outcome.clone());
            return outcome;
        }
    };
    let client = request
        .client
        .clone()
        .unwrap_or_else(|| peer.ip().to_string());
    let job = Job {
        key: key.to_string(),
        spec,
        observe: request.observe,
        sample: request.sample,
    };
    match shared.queue.push(&client, job) {
        // A worker now owns publication; wait on our ticket (safe even if
        // the worker already published and removed the map entry).
        Ok(()) => ticket.wait(),
        Err(PushError::Full { retry_after_ms }) => {
            shared.metrics.incr("requests.rejected");
            let outcome = Outcome::Rejected { retry_after_ms };
            shared.flights.publish(key, outcome.clone());
            outcome
        }
        Err(PushError::Draining) => {
            let outcome = Outcome::Draining;
            shared.flights.publish(key, outcome.clone());
            outcome
        }
    }
}

fn outcome_reply(outcome: &Outcome) -> Reply {
    match outcome {
        Outcome::Done(body) => (200, Vec::new(), body.as_str().to_string()),
        Outcome::Rejected { retry_after_ms } => {
            let secs = retry_after_ms.div_ceil(1000).max(1);
            let body = Json::obj(vec![
                ("error", Json::str("queue full")),
                ("retry_after_ms", Json::U64(*retry_after_ms)),
            ]);
            (
                429,
                vec![("Retry-After", secs.to_string())],
                body.to_compact(),
            )
        }
        Outcome::Failed(msg) => {
            let status = if msg.starts_with("bad request:") {
                400
            } else {
                500
            };
            error_reply(status, msg)
        }
        Outcome::Draining => error_reply(503, "draining: server is shutting down"),
    }
}

fn error_reply(status: u16, msg: &str) -> Reply {
    let body = Json::obj(vec![("error", Json::str(msg))]);
    (status, Vec::new(), body.to_compact())
}

// --- workers -------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.executing.fetch_add(1, Ordering::SeqCst);
        if shared.config.hold_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.hold_ms));
        }
        let outcome = execute(&job, shared);
        shared.flights.publish(&job.key, outcome);
        shared.executing.fetch_sub(1, Ordering::SeqCst);
    }
}

fn execute(job: &Job, shared: &Shared) -> Outcome {
    let opts = RunOptions {
        jobs: shared.config.jobs_per_request.max(1),
        cache_dir: None, // ignored: the shared handle wins
        observe: job.observe,
        sample: job.sample,
        ..RunOptions::default()
    };
    let started = Instant::now();
    let cache = shared.cache.clone();
    let run = catch_unwind(AssertUnwindSafe(|| {
        run_experiment_shared(&job.spec, &opts, cache)
    }));
    match run {
        Ok(result) => {
            shared.metrics.incr("jobs.executed");
            shared
                .metrics
                .add("jobs.wall_us", started.elapsed().as_micros() as u64);
            let mut profile_us = 0u64;
            for w in &result.workloads {
                profile_us += (w.timing.ms * 1000.0) as u64;
            }
            let (mut transform_us, mut trace_us, mut sim_us) = (0u64, 0u64, 0u64);
            for c in &result.cells {
                if let Some(t) = c.transform_timing {
                    transform_us += (t.ms * 1000.0) as u64;
                }
                if let Some(t) = c.trace_timing {
                    trace_us += (t.ms * 1000.0) as u64;
                }
                sim_us += (c.sim_timing.ms * 1000.0) as u64;
            }
            shared.metrics.add("stage.profile_us", profile_us);
            shared.metrics.add("stage.transform_us", transform_us);
            shared.metrics.add("stage.trace_us", trace_us);
            shared.metrics.add("stage.simulate_us", sim_us);
            Outcome::Done(Arc::new(stable_json(&result).to_pretty()))
        }
        Err(panic) => {
            shared.metrics.incr("jobs.failed");
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("job panicked");
            Outcome::Failed(format!("job failed: {msg}"))
        }
    }
}
