//! Cross-shard cache peering: before simulating a cold request, ask the
//! other shards whether one of them already holds the finished artifact.
//!
//! Each `gsd` exposes `GET /cache/<key>`, a counter-free read of its
//! local disk cache (see `DiskCache::peek`).  A daemon started with
//! `--peers host:port,host:port` consults them — **from a worker
//! thread, never the event loop** — on a local response-cache miss,
//! after the in-flight dedup made this worker the flight owner, so a
//! peered fetch and a local compute can never race on the same key.
//!
//! Failure is soft by design: any connect/read error or non-200 just
//! means "that peer doesn't have it", and the worker falls back to the
//! next peer or to local compute.  Timeouts bound the worst case — a
//! down peer costs one short timeout per fetch, not a wedged worker.
//! Connections are keep-alive ([`ClientConn`]) so a warm peering pair
//! costs one TCP handshake, not one per fetch.

use std::sync::Mutex;
use std::time::Duration;

use crate::http::ClientConn;

/// How long a peer gets to answer a cache probe before we shrug.
const PEER_TIMEOUT: Duration = Duration::from_millis(2_000);

pub struct PeerSet {
    peers: Vec<(String, Mutex<ClientConn>)>,
}

impl PeerSet {
    /// `addrs` as given on the command line; empty means peering is off.
    pub fn new(addrs: &[String]) -> PeerSet {
        PeerSet {
            peers: addrs
                .iter()
                .map(|a| {
                    (
                        a.clone(),
                        Mutex::new(ClientConn::with_timeout(a, PEER_TIMEOUT)),
                    )
                })
                .collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    pub fn addrs(&self) -> Vec<String> {
        self.peers.iter().map(|(a, _)| a.clone()).collect()
    }

    /// Ask each peer in turn for `key`; first 200 wins.  `None` means no
    /// peer has it (or none is reachable) — compute locally.
    pub fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        for (_, conn) in &self.peers {
            let mut conn = conn.lock().unwrap();
            match conn.request("GET", &format!("/cache/{key}"), b"") {
                Ok(resp) if resp.status == 200 => return Some(resp.body),
                Ok(_) => {}  // 404: this peer ran cold too
                Err(_) => {} // down/slow peer: soft-fail to the next one
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_peer_set_is_a_cheap_no_op() {
        let peers = PeerSet::new(&[]);
        assert!(peers.is_empty());
        assert!(peers.fetch("resp-00").is_none());
    }

    #[test]
    fn unreachable_peer_degrades_to_none() {
        // A closed port answers with a fast RST; the fetch must soft-fail.
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        let peers = PeerSet::new(&[addr]);
        assert!(peers.fetch("resp-00").is_none());
    }
}
