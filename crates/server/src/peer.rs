//! Cross-shard cache peering: before simulating a cold request, ask the
//! other shards whether one of them already holds the finished artifact.
//!
//! Each `gsd` exposes `GET /cache/<key>`, a counter-free read of its
//! local disk cache (see `DiskCache::peek`).  A daemon started with
//! `--peers host:port,host:port` consults them — **from a worker
//! thread, never the event loop** — on a local response-cache miss,
//! after the in-flight dedup made this worker the flight owner, so a
//! peered fetch and a local compute can never race on the same key.
//!
//! Failure is soft by design: any connect/read error or non-200 just
//! means "that peer doesn't have it", and the worker falls back to the
//! next peer or to local compute.  Timeouts (`--peer-timeout-ms`) bound
//! the worst case — a down peer costs one short timeout per fetch, not
//! a wedged worker — and are counted separately (`cache.peer_timeouts`)
//! from plain misses so a sick topology is visible in `/metrics`.
//! Connections are keep-alive ([`ClientConn`]) so a warm peering pair
//! costs one TCP handshake, not one per fetch.
//!
//! Observability: every probe's round-trip lands in the `peer.rtt`
//! histogram, and a traced request's id rides the outbound probe as
//! `X-Trace-Id`, so the serving peer's `GET /trace` timeline can be
//! joined to the requesting daemon's.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use guardspec_harness::MetricsRegistry;

use crate::http::ClientConn;

pub struct PeerSet {
    peers: Vec<(String, Mutex<ClientConn>)>,
}

impl PeerSet {
    /// `addrs` as given on the command line; empty means peering is off.
    /// `timeout` bounds connect + read + write per probe
    /// (`--peer-timeout-ms`, default 2000).
    pub fn new(addrs: &[String], timeout: Duration) -> PeerSet {
        PeerSet {
            peers: addrs
                .iter()
                .map(|a| (a.clone(), Mutex::new(ClientConn::with_timeout(a, timeout))))
                .collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    pub fn addrs(&self) -> Vec<String> {
        self.peers.iter().map(|(a, _)| a.clone()).collect()
    }

    /// Ask each peer in turn for `key`; first 200 wins.  `None` means no
    /// peer has it (or none is reachable) — compute locally.  A traced
    /// request forwards its id so the peer's timeline links to ours.
    pub fn fetch(
        &self,
        key: &str,
        trace_id: Option<&str>,
        metrics: &MetricsRegistry,
    ) -> Option<Vec<u8>> {
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(id) = trace_id {
            headers.push(("X-Trace-Id", id));
        }
        for (_, conn) in &self.peers {
            let mut conn = conn.lock().unwrap();
            let t0 = Instant::now();
            let outcome = conn.request_with("GET", &format!("/cache/{key}"), &headers, b"");
            metrics.time_ns("peer.rtt", t0.elapsed().as_nanos() as u64);
            match outcome {
                Ok(resp) if resp.status == 200 => return Some(resp.body),
                Ok(_) => {} // 404: this peer ran cold too
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    // A slow peer is a different disease than a cold one.
                    metrics.incr("cache.peer_timeouts");
                }
                Err(_) => {} // down peer: soft-fail to the next one
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_request, write_response};
    use std::net::TcpListener;

    const FAST: Duration = Duration::from_millis(2_000);

    #[test]
    fn empty_peer_set_is_a_cheap_no_op() {
        let metrics = MetricsRegistry::new();
        let peers = PeerSet::new(&[], FAST);
        assert!(peers.is_empty());
        assert!(peers.fetch("resp-00", None, &metrics).is_none());
    }

    #[test]
    fn unreachable_peer_degrades_to_none() {
        // A closed port answers with a fast RST; the fetch must soft-fail.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        let metrics = MetricsRegistry::new();
        let peers = PeerSet::new(&[addr], FAST);
        assert!(peers.fetch("resp-00", None, &metrics).is_none());
        assert_eq!(
            metrics.get("cache.peer_timeouts"),
            0,
            "RST is not a timeout"
        );
    }

    #[test]
    fn silent_peer_counts_as_a_timeout_not_a_miss() {
        // Accept the connection, never answer: the short timeout trips
        // and is counted, distinct from a 404 miss.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || {
            let (s, _) = l.accept().unwrap();
            std::thread::sleep(Duration::from_millis(300));
            drop(s);
        });
        let metrics = MetricsRegistry::new();
        let peers = PeerSet::new(&[addr], Duration::from_millis(50));
        assert!(peers.fetch("resp-00", None, &metrics).is_none());
        assert_eq!(metrics.get("cache.peer_timeouts"), 1);
        let rtt = metrics.histogram("peer.rtt");
        assert!(rtt.count() >= 1, "every probe records an RTT sample");
        hold.join().unwrap();
    }

    #[test]
    fn trace_id_rides_the_probe_as_a_header() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            let trace = req.header("x-trace-id").map(str::to_string);
            write_response(&mut s, 200, &[], b"artifact").unwrap();
            trace
        });
        let metrics = MetricsRegistry::new();
        let peers = PeerSet::new(&[addr], FAST);
        let got = peers.fetch("resp-00", Some("ab12cd34-s3"), &metrics);
        assert_eq!(got.as_deref(), Some(b"artifact".as_slice()));
        assert_eq!(server.join().unwrap().as_deref(), Some("ab12cd34-s3"));
    }
}
