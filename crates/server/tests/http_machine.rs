//! Connection-plane tests: a real daemon on an ephemeral port, driven
//! over raw TCP at the byte level.  Where `server_e2e.rs` asserts the
//! service semantics (dedup, shard/merge, drain), this file asserts the
//! epoll state machine itself: incremental parsing under adversarial
//! write boundaries (slow-loris, split pipelines), keep-alive accounting,
//! limits (oversized heads/bodies, max-requests, idle reaping), response
//! ordering under pipelining, and the chunked progress stream.

use guardspec_harness::{json, run_experiment, Json, RunOptions};
use guardspec_server::http::{self, ClientConn};
use guardspec_server::protocol::{request_to_json, three_schemes_request, to_spec, RunRequest};
use guardspec_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "guardspec-http-machine-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn offline_stable(req: &RunRequest) -> String {
    let spec = to_spec(req).expect("request resolves");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: None,
        observe: req.observe,
        ..RunOptions::default()
    };
    guardspec_harness::stable_json(&run_experiment(&spec, &opts)).to_pretty()
}

fn counter(metrics_body: &str, name: &str) -> u64 {
    let j = json::parse(metrics_body).expect("metrics parse");
    j.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Read one `Content-Length`-framed response off a raw socket; returns
/// (status, full head, body).
fn read_raw_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut b = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut b).expect("read head");
        assert!(n > 0, "connection closed mid-head: {head:?}");
        head.push(b[0]);
        assert!(head.len() < 64 * 1024, "head never terminated");
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length = head
        .lines()
        .find_map(|l| {
            let lower = l.to_ascii_lowercase();
            lower
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse::<usize>().expect("numeric length"))
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn slow_loris_fragments_get_no_answer_until_the_head_completes() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(150)))
        .unwrap();

    // Drip the request head in five fragments with pauses; after each
    // incomplete fragment the server must stay silent (Partial parse).
    let fragments: &[&[u8]] = &[b"GET /he", b"alth", b"z HTT", b"P/1.1\r\nHost: x\r\n"];
    for frag in fragments {
        stream.write_all(frag).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut probe = [0u8; 1];
        match stream.read(&mut probe) {
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            other => panic!("server answered a partial request head: {other:?}"),
        }
    }
    stream.write_all(b"\r\n").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (status, _, body) = read_raw_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_split_at_arbitrary_boundaries_answer_in_order() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    // Three back-to-back requests as one byte stream, then re-split at
    // every stride — the parser must not care where reads land.
    let wire = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".repeat(3);
    for stride in [1usize, 3, 7, wire.len()] {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for chunk in wire.chunks(stride) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
        }
        for _ in 0..3 {
            let (status, head, body) = read_raw_response(&mut stream);
            assert_eq!(status, 200, "stride {stride}");
            assert!(
                head.to_ascii_lowercase().contains("connection: keep-alive"),
                "pipelined healthz must keep the connection alive: {head}"
            );
            assert!(body.contains("\"ok\""));
        }
    }
    handle.shutdown();
}

#[test]
fn oversized_head_is_rejected_without_harming_prior_responses() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // A good request first: its response must be intact.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (status, _, body) = read_raw_response(&mut stream);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));

    // Then a head that never ends: >64 KiB of header junk on the same
    // keep-alive connection.  Ignore write errors near the end — the
    // server may reset as soon as it has decided on 413.
    let junk = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n", "a".repeat(70 * 1024));
    let _ = stream.write_all(junk.as_bytes());
    let _ = stream.flush();
    let (status, head, _) = read_raw_response(&mut stream);
    assert_eq!(status, 413, "{head}");
    assert!(head.to_ascii_lowercase().contains("connection: close"));
    // And the connection is gone.
    let mut probe = [0u8; 16];
    assert_eq!(
        stream.read(&mut probe).unwrap_or(0),
        0,
        "must close after 413"
    );
    handle.shutdown();
}

#[test]
fn oversized_body_is_rejected_on_sight() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The Content-Length alone convicts it; no body bytes needed.
    stream
        .write_all(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 20000000\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_raw_response(&mut stream);
    assert_eq!(status, 413, "{head}");
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        idle_timeout_ms: 200,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (status, _, _) = read_raw_response(&mut stream);
    assert_eq!(status, 200);
    // Sit idle past the timeout (+ the loop's 100ms tick): the server
    // must hang up on us.
    let mut probe = [0u8; 16];
    assert_eq!(
        stream.read(&mut probe).unwrap_or(0),
        0,
        "server must close an idle connection"
    );
    let (st, metrics) = http::get_json(&addr, "/metrics").unwrap();
    assert_eq!(st, 200);
    assert!(counter(&metrics, "connections.reaped") >= 1, "{metrics}");
    handle.shutdown();
}

#[test]
fn keep_alive_reuse_is_the_default_and_is_counted() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = ClientConn::new(&addr);
    for _ in 0..5 {
        let resp = conn.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
    }
    // Read the metrics over the SAME connection, so no second connection
    // muddies the accounting: 6 requests, 1 connection, 5 reuses.
    let resp = conn
        .request_with("GET", "/metrics", &[("Accept", "application/json")], b"")
        .unwrap();
    assert_eq!(resp.status, 200);
    let metrics = String::from_utf8_lossy(&resp.body).to_string();
    assert_eq!(conn.connections_opened(), 1);
    assert_eq!(counter(&metrics, "connections.opened"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "connections.reused"), 5, "{metrics}");
    handle.shutdown();
}

#[test]
fn max_conn_requests_closes_politely_and_the_client_reconnects() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        max_conn_requests: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = ClientConn::new(&addr);
    for i in 0..6 {
        let resp = conn.request("GET", "/healthz", b"").unwrap();
        assert_eq!(resp.status, 200, "request {i}");
    }
    // Every second response carries `Connection: close`, so 6 requests
    // ride exactly 3 connections.
    assert_eq!(conn.connections_opened(), 3);
    handle.shutdown();
}

#[test]
fn pipelined_runs_answer_in_request_order_with_offline_bytes() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("pipeline")),
        workers: 1,
        hold_ms: 100, // keep the jobs queued long enough to stack slots
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("pipe", guardspec_workloads::Scale::Test);
    let body = request_to_json(&req).to_compact();
    let expected = offline_stable(&req);

    let mut conn = ClientConn::new(&addr);
    let reqs: Vec<(&str, &str, &[u8])> = vec![
        ("POST", "/run", body.as_bytes()),
        ("POST", "/run", body.as_bytes()),
        ("GET", "/healthz", b""),
    ];
    let responses = conn.pipeline(&reqs).unwrap();
    assert_eq!(responses.len(), 3);
    for r in &responses[..2] {
        assert_eq!(r.status, 200);
        assert_eq!(
            String::from_utf8_lossy(&r.body),
            expected,
            "pipelined /run must return the offline stable bytes"
        );
    }
    // The healthz queued *behind* two slow /runs still comes back last —
    // order preserved, not reordered by readiness.
    assert_eq!(responses[2].status, 200);
    assert!(String::from_utf8_lossy(&responses[2].body).contains("\"ok\""));

    let resp = conn
        .request_with("GET", "/metrics", &[("Accept", "application/json")], b"")
        .unwrap();
    let metrics = String::from_utf8_lossy(&resp.body).to_string();
    assert!(counter(&metrics, "pipeline.depth_max") >= 2, "{metrics}");
    assert_eq!(conn.connections_opened(), 1);
    handle.shutdown();
}

#[test]
fn streaming_run_emits_stage_events_then_the_exact_artifact() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("stream")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("stream", guardspec_workloads::Scale::Test);
    let body = request_to_json(&req).to_compact();
    let expected = offline_stable(&req);

    let mut conn = ClientConn::new(&addr);
    let mut events = Vec::new();
    let (status, artifact) = conn
        .post_stream("/run?stream=1", body.as_bytes(), |line| {
            events.push(line.to_string())
        })
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8_lossy(&artifact),
        expected,
        "streamed artifact must be byte-identical to the offline bytes"
    );
    assert!(!events.is_empty(), "a cold run must emit stage events");
    let mut seen_done = false;
    for line in &events {
        let j = json::parse(line).unwrap_or_else(|e| panic!("bad event {line:?}: {e}"));
        let kind = j.get("event").and_then(Json::as_str).unwrap();
        assert!(
            kind == "stage_start" || kind == "stage_done",
            "unexpected event {line}"
        );
        let stage = j.get("stage").and_then(Json::as_str).unwrap();
        assert!(
            ["profile", "transform", "trace", "simulate", "collect"].contains(&stage),
            "unexpected stage {line}"
        );
        if kind == "stage_done" {
            seen_done = true;
            assert!(j.get("ms").and_then(Json::as_f64).is_some(), "{line}");
            assert!(j.get("cached").and_then(Json::as_bool).is_some(), "{line}");
        }
    }
    assert!(seen_done, "at least one stage must complete: {events:?}");

    // Warm replay on the SAME keep-alive connection: the response cache
    // answers, so the stream carries zero stage events and the same bytes.
    let mut warm_events = Vec::new();
    let (status, warm) = conn
        .post_stream("/run?stream=1", body.as_bytes(), |line| {
            warm_events.push(line.to_string())
        })
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8_lossy(&warm), expected);
    assert!(
        warm_events.is_empty(),
        "a response-cached run has no stages to report: {warm_events:?}"
    );
    assert_eq!(
        conn.connections_opened(),
        1,
        "stream must not burn the keep-alive"
    );
    handle.shutdown();
}
