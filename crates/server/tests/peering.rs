//! Cross-shard cache peering tests: two real daemons with *separate*
//! cache directories, one warm and one cold, peered over `/cache/<key>`.
//!
//! (The daemons are deliberately unsharded: two `--shard k/2` daemons
//! have disjoint key spaces by construction and would 400 each other's
//! full requests, so peering between them never sees a shared key.  The
//! interesting topology is N replicas of the same shard — warm spares —
//! and that is what these tests build.)

use guardspec_harness::{json, run_experiment, Json, RunOptions};
use guardspec_server::http;
use guardspec_server::protocol::{request_to_json, three_schemes_request, to_spec, RunRequest};
use guardspec_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "guardspec-peering-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn offline_stable(req: &RunRequest) -> String {
    let spec = to_spec(req).expect("request resolves");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: None,
        observe: req.observe,
        ..RunOptions::default()
    };
    guardspec_harness::stable_json(&run_experiment(&spec, &opts)).to_pretty()
}

fn counter(metrics_body: &str, name: &str) -> u64 {
    let j = json::parse(metrics_body).expect("metrics parse");
    j.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn a_cold_daemon_is_satisfied_by_its_warm_peer_without_simulating() {
    // B computes the answer the old-fashioned way...
    let b = Server::start(ServerConfig {
        cache_dir: Some(scratch("warm-b")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let b_addr = b.addr().to_string();
    let req = three_schemes_request("peered", guardspec_workloads::Scale::Test);
    let body = request_to_json(&req).to_compact();
    let expected = offline_stable(&req);
    let (status, warm) = http::post_json(&b_addr, "/run", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm, expected);

    // ...then A, stone cold with its own cache dir, peers with B.
    let a = Server::start(ServerConfig {
        cache_dir: Some(scratch("cold-a")),
        workers: 1,
        peers: vec![b_addr.clone()],
        ..ServerConfig::default()
    })
    .unwrap();
    let a_addr = a.addr().to_string();
    let (status, got) = http::post_json(&a_addr, "/run", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(got, expected, "peered bytes must equal the offline bytes");

    let (_, metrics) = http::get_json(&a_addr, "/metrics").unwrap();
    assert_eq!(counter(&metrics, "cache.peer_hits"), 1, "{metrics}");
    assert_eq!(
        counter(&metrics, "jobs.executed"),
        0,
        "the peer hit must preempt the simulation: {metrics}"
    );
    let (_, b_metrics) = http::get_json(&b_addr, "/metrics").unwrap();
    assert!(counter(&b_metrics, "cache.peer_served") >= 1, "{b_metrics}");

    // The fetched artifact is now in A's own cache: a replay answers
    // locally (resp-cached), no second peer round-trip.
    let (status, again) = http::post_json(&a_addr, "/run", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(again, expected);
    let (_, metrics) = http::get_json(&a_addr, "/metrics").unwrap();
    assert_eq!(counter(&metrics, "cache.peer_hits"), 1, "{metrics}");
    assert!(counter(&metrics, "jobs.resp_cached") >= 1, "{metrics}");

    a.shutdown();
    b.shutdown();
}

#[test]
fn a_dead_peer_degrades_to_local_compute() {
    // A port with nothing behind it: bind, note the address, drop.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let a = Server::start(ServerConfig {
        cache_dir: Some(scratch("lonely-a")),
        workers: 1,
        peers: vec![dead],
        ..ServerConfig::default()
    })
    .unwrap();
    let a_addr = a.addr().to_string();
    let req = three_schemes_request("lonely", guardspec_workloads::Scale::Test);
    let body = request_to_json(&req).to_compact();
    let expected = offline_stable(&req);
    let (status, got) = http::post_json(&a_addr, "/run", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(got, expected, "peer failure must not change the answer");

    let (_, metrics) = http::get_json(&a_addr, "/metrics").unwrap();
    assert_eq!(counter(&metrics, "cache.peer_hits"), 0, "{metrics}");
    assert!(counter(&metrics, "cache.peer_misses") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "jobs.executed"), 1, "{metrics}");
    a.shutdown();
}

#[test]
fn a_silent_peer_times_out_and_is_counted_separately_from_misses() {
    // A peer that accepts the TCP connection and then says nothing: the
    // probe must hit `--peer-timeout-ms`, bump the dedicated timeout
    // counter (not just the generic miss), and fall back to computing.
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let silent = l.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || {
        let conns: Vec<_> = l.incoming().take(1).collect();
        std::thread::sleep(std::time::Duration::from_millis(600));
        drop(conns);
    });
    let a = Server::start(ServerConfig {
        cache_dir: Some(scratch("deaf-a")),
        workers: 1,
        peers: vec![silent],
        peer_timeout_ms: 100,
        ..ServerConfig::default()
    })
    .unwrap();
    let a_addr = a.addr().to_string();
    let req = three_schemes_request("deaf", guardspec_workloads::Scale::Test);
    let (status, got) =
        http::post_json(&a_addr, "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        got,
        offline_stable(&req),
        "timeout must not change the answer"
    );

    let (_, metrics) = http::get_json(&a_addr, "/metrics").unwrap();
    assert!(counter(&metrics, "cache.peer_timeouts") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "cache.peer_hits"), 0, "{metrics}");
    assert_eq!(counter(&metrics, "jobs.executed"), 1, "{metrics}");
    a.shutdown();
    hold.join().unwrap();
}

#[test]
fn a_traced_request_propagates_its_trace_id_to_peer_probes() {
    use guardspec_server::http::{read_request, write_response};
    // A hand-rolled "peer" that records the X-Trace-Id it was probed
    // with and answers 404 (an honest miss).
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let peer_addr = l.local_addr().unwrap().to_string();
    let probe = std::thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let req = read_request(&mut s).unwrap();
        let seen = req.header("x-trace-id").map(str::to_string);
        write_response(&mut s, 404, &[], b"").unwrap();
        seen
    });
    let a = Server::start(ServerConfig {
        cache_dir: Some(scratch("traced-a")),
        workers: 1,
        peers: vec![peer_addr],
        ..ServerConfig::default()
    })
    .unwrap();
    let a_addr = a.addr().to_string();
    let req = three_schemes_request("traced-peer", guardspec_workloads::Scale::Test);
    let (status, envelope) =
        http::post_json(&a_addr, "/run?trace=1", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200);
    let env = json::parse(&envelope).unwrap();
    let trace_id = env
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("trace id in envelope")
        .to_string();
    assert_eq!(
        probe.join().unwrap().as_deref(),
        Some(trace_id.as_str()),
        "the peer probe must carry the request's trace id"
    );
    // And the probe itself shows up in the request's own timeline.
    let trace = env.get("trace").unwrap().to_compact();
    assert!(trace.contains("peer.pull"), "{trace}");
    a.shutdown();
}

#[test]
fn the_cache_endpoint_validates_keys_and_misses_cleanly() {
    let h = Server::start(ServerConfig {
        cache_dir: Some(scratch("probe")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = h.addr().to_string();
    let (status, _) = http::get(&addr, "/cache/resp-0123abcd").unwrap();
    assert_eq!(status, 404, "an honest miss is a 404");
    for bad in ["/cache/", "/cache/UPPER", "/cache/a..b", "/cache/a%2Fb"] {
        let (status, body) = http::get(&addr, bad).unwrap();
        assert_eq!(status, 400, "{bad} must be rejected: {body}");
    }
    h.shutdown();
}
