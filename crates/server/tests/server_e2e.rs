//! End-to-end tests: a real daemon on an ephemeral port, driven over TCP.
//!
//! The load-bearing claims of the service layer are asserted here:
//! dedup (8 concurrent identical requests execute exactly one job),
//! byte-identity (server responses `==` the offline stable artifact at a
//! different worker count), sharded fan/merge, structured backpressure
//! (429 + retry hint, nothing silently dropped), and the `gsd` binary's
//! SIGTERM drain.

use guardspec_harness::{json, run_experiment, Json, RunOptions};
use guardspec_server::protocol::{
    request_to_json, three_schemes_request, to_spec, CellReq, RunRequest, WorkloadReq,
};
use guardspec_server::{http, run_fanout, Server, ServerConfig, ShardSpec};
use guardspec_sim::MachineConfig;
use guardspec_workloads::{extended_workloads, Scale};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A scratch cache dir unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "guardspec-server-e2e-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The offline answer: run the same request's spec in-process, no cache.
fn offline_stable(req: &RunRequest) -> String {
    let spec = to_spec(req).expect("request resolves");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: None,
        observe: req.observe,
        ..RunOptions::default()
    };
    guardspec_harness::stable_json(&run_experiment(&spec, &opts)).to_pretty()
}

fn counter(metrics_body: &str, name: &str) -> u64 {
    let j = json::parse(metrics_body).expect("metrics parse");
    j.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn gauge(metrics_body: &str, name: &str) -> u64 {
    json::parse(metrics_body)
        .expect("metrics parse")
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn eight_identical_requests_execute_one_job_and_match_offline() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("dedup")),
        workers: 1,
        hold_ms: 300, // hold the job so all eight arrivals share one flight
        jobs_per_request: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("table3", Scale::Test);
    let body = request_to_json(&req).to_compact();
    let posts: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || http::post_json(&addr, "/run", &body).unwrap())
        })
        .collect();
    let responses: Vec<(u16, String)> = posts.into_iter().map(|t| t.join().unwrap()).collect();
    let expected = offline_stable(&req);
    for (status, got) in &responses {
        assert_eq!(*status, 200);
        assert_eq!(
            got, &expected,
            "server response must be byte-identical to the offline stable artifact"
        );
    }
    let (st, metrics) = http::get_json(&addr, "/metrics").unwrap();
    assert_eq!(st, 200);
    assert_eq!(counter(&metrics, "jobs.executed"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "dedup.joined"), 7, "{metrics}");
    assert_eq!(counter(&metrics, "requests.run"), 8, "{metrics}");

    // A later identical request opens a fresh flight and is answered from
    // the response cache without re-running the pipeline — same bytes, no
    // second execution.
    let (st, again) = http::post_json(&addr, "/run", &body).unwrap();
    assert_eq!(st, 200);
    assert_eq!(again, expected);
    let (_, metrics) = http::get_json(&addr, "/metrics").unwrap();
    assert_eq!(counter(&metrics, "jobs.executed"), 1, "{metrics}");
    assert!(counter(&metrics, "jobs.resp_cached") >= 1, "{metrics}");
    assert!(gauge(&metrics, "cache_hits") > 0, "{metrics}");
    handle.shutdown();
}

#[test]
fn sharded_fanout_merges_to_the_offline_bytes() {
    let mk = |index| {
        Server::start(ServerConfig {
            cache_dir: Some(scratch("shard")),
            workers: 1,
            shard: ShardSpec { index, count: 2 },
            ..ServerConfig::default()
        })
        .unwrap()
    };
    let (h0, h1) = (mk(0), mk(1));
    let servers = vec![h0.addr().to_string(), h1.addr().to_string()];
    let req = three_schemes_request("table3", Scale::Test);
    let merged = run_fanout(&servers, &req).unwrap();
    assert_eq!(merged, offline_stable(&req));

    // A full (unsplit) sweep posted straight at one shard is a structured
    // 400 naming the misroute — never a silently partial answer.
    let (status, body) =
        http::post_json(&servers[0], "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("belongs to shard"), "{body}");
    h0.shutdown();
    h1.shutdown();
}

#[test]
fn queue_full_is_a_structured_429_and_nothing_is_dropped() {
    let handle = Server::start(ServerConfig {
        cache_dir: None,
        workers: 1,
        queue_cap: 1,
        hold_ms: 600,
        est_job_ms: 100,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    // Three *distinct* single-workload requests so no two dedup together.
    let reqs: Vec<String> = ["compress", "espresso", "xlisp"]
        .iter()
        .map(|w| {
            let mut r = three_schemes_request(&format!("probe-{w}"), Scale::Test);
            r.workloads = vec![WorkloadReq::Builtin(w.to_string())];
            r.cells.truncate(1);
            r.cells[0].workload = 0;
            request_to_json(&r).to_compact()
        })
        .collect();
    // A occupies the worker (held 600ms); B fills the one queue slot.
    let spawn = |body: String, addr: String| {
        std::thread::spawn(move || http::post_json(&addr, "/run", &body).unwrap())
    };
    let a = spawn(reqs[0].clone(), addr.clone());
    wait_until(&addr, |m| gauge(m, "executing") == 1);
    let b = spawn(reqs[1].clone(), addr.clone());
    wait_until(&addr, |m| gauge(m, "queue_depth") == 1);
    // C must bounce immediately with a retry hint, via headers and body.
    let resp = http::roundtrip(&addr, "POST", "/run", reqs[2].as_bytes()).unwrap();
    assert_eq!(resp.status, 429);
    assert!(resp.header("Retry-After").is_some());
    let parsed = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert!(parsed.get("retry_after_ms").and_then(Json::as_u64).unwrap() >= 100);
    // A and B still complete normally — refusal never cancels admitted work.
    assert_eq!(a.join().unwrap().0, 200);
    assert_eq!(b.join().unwrap().0, 200);
    let (_, metrics) = http::get_json(&addr, "/metrics").unwrap();
    assert_eq!(counter(&metrics, "requests.rejected"), 1);
    assert_eq!(counter(&metrics, "jobs.executed"), 2);
    handle.shutdown();
}

fn wait_until(addr: &str, mut pred: impl FnMut(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, m) = http::get_json(addr, "/metrics").unwrap();
        if pred(&m) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting; last: {m}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn adhoc_bin_programs_run_and_match_offline() {
    // Ship a builtin's encoded words as an ad-hoc hex program: the server
    // must produce exactly what the in-process runner produces for the
    // same request.
    let workloads = extended_workloads(Scale::Test);
    let w = &workloads[0];
    let hex =
        guardspec_harness::codec::words_to_hex(&guardspec_ir::encode::encode_program(&w.program));
    let req = RunRequest {
        name: "adhoc".to_string(),
        scale: Scale::Test,
        client: None,
        observe: false,
        sample: None,
        workloads: vec![WorkloadReq::Bin {
            name: "shipped".to_string(),
            hex,
        }],
        cells: vec![CellReq {
            workload: 0,
            label: "Proposed".to_string(),
            scheme: guardspec_predict::Scheme::Proposed,
            options: Some(guardspec_core::DriverOptions::proposed()),
            config: MachineConfig::r10000(),
        }],
    };
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("adhoc")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let (status, body) =
        http::post_json(&addr, "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, offline_stable(&req));

    // Garbage programs are a 400, not a hung flight or a 500 panic page.
    let mut bad = req.clone();
    bad.workloads = vec![WorkloadReq::Bin {
        name: "garbage".to_string(),
        hex: "zz".to_string(),
    }];
    let (status, body) =
        http::post_json(&addr, "/run", &request_to_json(&bad).to_compact()).unwrap();
    assert_eq!(status, 400, "{body}");
    handle.shutdown();
}

/// Pull the executable (`ph == "X"`) spans out of a Chrome trace doc as
/// `(name, cat, ts, end)` tuples.
fn x_spans(doc: &Json) -> Vec<(String, String, u64, u64)> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            let ts = e.get("ts").and_then(Json::as_u64).unwrap();
            let dur = e.get("dur").and_then(Json::as_u64).unwrap();
            (
                e.get("name").and_then(Json::as_str).unwrap().to_string(),
                e.get("cat").and_then(Json::as_str).unwrap().to_string(),
                ts,
                ts + dur,
            )
        })
        .collect()
}

#[test]
fn traced_request_spans_tile_the_whole_lifecycle() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("traced")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("table3", Scale::Test);
    let body = request_to_json(&req).to_compact();

    let (status, envelope) = http::post_json(&addr, "/run?trace=1", &body).unwrap();
    assert_eq!(status, 200, "{envelope}");
    let env = json::parse(&envelope).expect("trace envelope parses");
    let trace_id = env.get("trace_id").and_then(Json::as_str).unwrap();
    assert!(trace_id.ends_with("-s0"), "daemon-minted id: {trace_id}");

    // The artifact rides the envelope as a JSON string: byte-exact.
    let artifact = env.get("artifact").and_then(Json::as_str).unwrap();
    assert_eq!(
        artifact,
        offline_stable(&req),
        "tracing must not perturb artifact bytes"
    );

    let doc = env.get("trace").expect("trace document");
    guardspec_harness::validate_chrome_trace(doc).expect("valid Chrome trace");
    let spans = x_spans(doc);
    let one = |name: &str| -> (u64, u64) {
        let hits: Vec<_> = spans.iter().filter(|(n, ..)| n == name).collect();
        assert_eq!(hits.len(), 1, "exactly one {name:?} span: {spans:?}");
        (hits[0].2, hits[0].3)
    };
    // Adjacent phases share their boundary Instants, so they tile with
    // exact microsecond equality — no gaps, no overlaps.
    let admit = one("admit");
    let queue_wait = one("queue.wait");
    let flight = one("flight");
    let respond = one("respond");
    let request_span = one("request");
    assert_eq!(admit.0, 0, "admit starts on the request clock's zero");
    assert_eq!(admit.1, queue_wait.0, "admit → queue.wait tiles exactly");
    assert_eq!(queue_wait.1, flight.0, "queue.wait → flight tiles exactly");
    assert_eq!(flight.1, respond.0, "flight → respond tiles exactly");
    assert_eq!(request_span.0, 0);
    assert!(respond.1 <= request_span.1, "respond ends inside the root");

    // The harness runner's five stages all land inside the flight span.
    for stage in ["profile", "transform", "trace", "simulate", "collect"] {
        let inside: Vec<_> = spans
            .iter()
            .filter(|(_, cat, ts, end)| cat == stage && *ts >= flight.0 && *end <= flight.1)
            .collect();
        assert!(
            !inside.is_empty(),
            "stage {stage:?} span inside flight {flight:?}: {spans:?}"
        );
    }

    // The completed timeline also landed in the daemon ring: one GET
    // /trace drains it, the next finds it empty (read-once).
    let (st, ring) = http::get(&addr, "/trace").unwrap();
    assert_eq!(st, 200);
    let ring_doc = json::parse(&ring).unwrap();
    guardspec_harness::validate_chrome_trace(&ring_doc).expect("ring doc valid");
    assert!(
        !x_spans(&ring_doc).is_empty(),
        "ring must hold the request's spans: {ring}"
    );
    let (_, empty) = http::get(&addr, "/trace").unwrap();
    assert!(
        x_spans(&json::parse(&empty).unwrap()).is_empty(),
        "second drain must be empty: {empty}"
    );
    handle.shutdown();
}

#[test]
fn a_joining_duplicate_traces_the_dedup_with_the_owners_trace_id() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("joiner")),
        workers: 1,
        hold_ms: 300, // keep the owner's flight open for the duplicate
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("table3", Scale::Test);
    let body = request_to_json(&req).to_compact();
    let owner = {
        let addr = addr.clone();
        let body = body.clone();
        std::thread::spawn(move || http::post_json(&addr, "/run?trace=1", &body).unwrap())
    };
    std::thread::sleep(Duration::from_millis(120)); // owner holds the flight
    let (status, joined) = http::post_json(&addr, "/run?trace=1", &body).unwrap();
    assert_eq!(status, 200);
    let (status, owned) = owner.join().unwrap();
    assert_eq!(status, 200);

    let owner_env = json::parse(&owned).unwrap();
    let joiner_env = json::parse(&joined).unwrap();
    let owner_id = owner_env.get("trace_id").and_then(Json::as_str).unwrap();
    let joiner_id = joiner_env.get("trace_id").and_then(Json::as_str).unwrap();
    assert_ne!(owner_id, joiner_id, "two requests, two trace ids");
    assert_eq!(
        owner_env.get("artifact").and_then(Json::as_str),
        joiner_env.get("artifact").and_then(Json::as_str),
        "both arrivals get the same bytes"
    );

    // The joiner's timeline names the flight it piggybacked on.
    let joiner_trace = joiner_env.get("trace").unwrap().to_compact();
    assert!(joiner_trace.contains("dedup.join"), "{joiner_trace}");
    assert!(
        joiner_trace.contains(owner_id),
        "dedup.join must carry the owner's trace id {owner_id}: {joiner_trace}"
    );
    let owner_trace = owner_env.get("trace").unwrap().to_compact();
    assert!(
        !owner_trace.contains("dedup.join"),
        "the owner did not join anyone: {owner_trace}"
    );
    handle.shutdown();
}

#[test]
fn metrics_speak_prometheus_by_default_with_live_latency_histograms() {
    let handle = Server::start(ServerConfig {
        cache_dir: Some(scratch("prom")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let req = three_schemes_request("table3", Scale::Test);
    let (status, _) = http::post_json(&addr, "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200);

    let resp = http::roundtrip(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("Content-Type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "Prometheus content type: {:?}",
        resp.header("Content-Type")
    );
    let text = String::from_utf8(resp.body).unwrap();
    let series = guardspec_harness::parse_prometheus(&text).expect("valid exposition");
    assert!(
        series
            .get("gsd_request_latency_seconds_count")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "request latency histogram must have samples: {text}"
    );
    assert!(
        series
            .get("gsd_queue_wait_seconds_count")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "queue wait histogram must have samples: {text}"
    );
    assert!(series.contains_key("gsd_queue_depth"), "{text}");

    // The JSON document is still there for callers that ask for it.
    let (st, legacy) = http::get_json(&addr, "/metrics").unwrap();
    assert_eq!(st, 200);
    assert_eq!(counter(&legacy, "jobs.executed"), 1, "{legacy}");
    handle.shutdown();
}

#[test]
fn tracing_and_slow_logging_never_perturb_artifact_bytes() {
    // Same request against a telemetry-hot daemon (slow-ms traces every
    // request) and a telemetry-cold one: byte-identical artifacts.
    let hot = Server::start(ServerConfig {
        cache_dir: Some(scratch("hot")),
        workers: 1,
        slow_ms: Some(0), // trace and slow-log literally every request
        ..ServerConfig::default()
    })
    .unwrap();
    let cold = Server::start(ServerConfig {
        cache_dir: Some(scratch("cold")),
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let req = three_schemes_request("table3", Scale::Test);
    let body = request_to_json(&req).to_compact();
    let (st_hot, from_hot) = http::post_json(&hot.addr().to_string(), "/run", &body).unwrap();
    let (st_cold, from_cold) = http::post_json(&cold.addr().to_string(), "/run", &body).unwrap();
    assert_eq!((st_hot, st_cold), (200, 200));
    assert_eq!(from_hot, from_cold, "telemetry must not leak into bytes");
    assert_eq!(from_hot, offline_stable(&req));
    hot.shutdown();
    cold.shutdown();
}

#[test]
fn gsd_binary_drains_cleanly_on_sigterm() {
    use std::io::BufRead;
    let cache = scratch("bin");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_gsd"))
        .args(["--port", "0", "--workers", "1", "--cache-dir"])
        .arg(&cache)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    std::io::BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    // "gsd listening on 127.0.0.1:PORT shard 0/1"
    let addr = line
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();
    let (status, health) = http::get(&addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(health.contains("\"ok\""), "{health}");

    let req = three_schemes_request("table3", Scale::Test);
    let (status, body) =
        http::post_json(&addr, "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, offline_stable(&req));

    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let exit = child.wait().unwrap();
    assert!(exit.success(), "gsd must drain and exit 0, got {exit:?}");
}

#[test]
fn gsd_debug_logging_never_touches_stdout() {
    use std::io::{BufRead, Read};
    let cache = scratch("binlog");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_gsd"))
        .args(["--port", "0", "--workers", "1", "--log-level", "debug"])
        .args(["--slow-ms", "0", "--cache-dir"])
        .arg(&cache)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();

    // Drive real traffic — traced (slow-ms 0 traces everything) and debug
    // logged — then drain. Nothing beyond the banner may reach stdout.
    let req = three_schemes_request("table3", Scale::Test);
    let (status, body) =
        http::post_json(&addr, "/run", &request_to_json(&req).to_compact()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, offline_stable(&req));
    let (status, _) = http::get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);

    std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    let exit = child.wait().unwrap();
    assert!(exit.success(), "{exit:?}");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert_eq!(
        rest, "",
        "stdout must carry the banner and nothing else, got {rest:?}"
    );
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    let mut structured = 0;
    for line in stderr.lines().filter(|l| !l.trim().is_empty()) {
        let j = json::parse(line)
            .unwrap_or_else(|e| panic!("stderr line must be JSON ({e}): {line:?}"));
        assert!(j.get("level").is_some(), "leveled log line: {line}");
        assert!(j.get("event").is_some(), "named log event: {line}");
        structured += 1;
    }
    assert!(
        structured >= 2,
        "expected slow-request + drain logs on stderr, got: {stderr:?}"
    );
}
