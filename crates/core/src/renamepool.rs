//! Free-register discovery for software renaming and instrumentation.
//!
//! Software renaming "can either be from the pool of free registers (at
//! that time) or dedicated registers" (Section 1).  We use the simplest
//! sound pool: registers the function never references at all, drawn
//! preferentially from the non-architectural half (`r32..r63`), which the
//! paper's compiler treats as the dedicated renaming pool.

use guardspec_ir::reg::{NUM_FLT_REGS, NUM_INT_REGS, NUM_PRED_REGS};
use guardspec_ir::{FltReg, Function, IntReg, PredReg, Reg};

/// Pool of registers unreferenced anywhere in a function.
#[derive(Clone, Debug)]
pub struct RenamePool {
    free_int: Vec<IntReg>,
    free_flt: Vec<FltReg>,
    free_pred: Vec<PredReg>,
}

impl RenamePool {
    /// Scan `f` and collect every unreferenced register.
    pub fn for_function(f: &Function) -> RenamePool {
        let mut used = [false; Reg::DENSE_COUNT];
        for b in &f.blocks {
            for i in &b.insns {
                if let Some(d) = i.def() {
                    used[d.dense_index()] = true;
                }
                for u in i.uses() {
                    used[u.dense_index()] = true;
                }
            }
        }
        // Prefer the dedicated pool r32..r63, then any unused architectural
        // register except r0.
        let mut free_int: Vec<IntReg> = (32..NUM_INT_REGS)
            .chain(1..32)
            .map(IntReg)
            .filter(|r| !used[Reg::Int(*r).dense_index()])
            .collect();
        let mut free_flt: Vec<FltReg> = (32..NUM_FLT_REGS)
            .chain(0..32)
            .map(FltReg)
            .filter(|r| !used[Reg::Flt(*r).dense_index()])
            .collect();
        let mut free_pred: Vec<PredReg> = (0..NUM_PRED_REGS)
            .map(PredReg)
            .filter(|r| !used[Reg::Pred(*r).dense_index()])
            .collect();
        // Allocate from the back cheaply.
        free_int.reverse();
        free_flt.reverse();
        free_pred.reverse();
        RenamePool {
            free_int,
            free_flt,
            free_pred,
        }
    }

    /// Take a free integer register, if any remain.
    pub fn take_int(&mut self) -> Option<IntReg> {
        self.free_int.pop()
    }

    pub fn take_flt(&mut self) -> Option<FltReg> {
        self.free_flt.pop()
    }

    pub fn take_pred(&mut self) -> Option<PredReg> {
        self.free_pred.pop()
    }

    /// Take a free register in the same file as `like`.
    pub fn take_like(&mut self, like: Reg) -> Option<Reg> {
        match like {
            Reg::Int(_) => self.take_int().map(Reg::Int),
            Reg::Flt(_) => self.take_flt().map(Reg::Flt),
            Reg::Pred(_) => self.take_pred().map(Reg::Pred),
        }
    }

    pub fn ints_left(&self) -> usize {
        self.free_int.len()
    }

    pub fn preds_left(&self) -> usize {
        self.free_pred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::FuncBuilder;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    #[test]
    fn pool_excludes_referenced_registers() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.add(r(3), r(1), r(2));
        fb.setpi(SetCond::Lt, p(1), r(3), 10);
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        let mut taken = std::collections::HashSet::new();
        while let Some(ri) = pool.take_int() {
            assert!(!ri.is_zero());
            assert!(![1u8, 2, 3].contains(&ri.0), "r{} is referenced", ri.0);
            assert!(taken.insert(ri), "duplicate register");
        }
        // p1 is used; p0 and p2.. are free.
        let pr = pool.take_pred().unwrap();
        assert_ne!(pr, p(1));
    }

    #[test]
    fn prefers_dedicated_pool_first() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        let first = pool.take_int().unwrap();
        assert!(
            first.0 >= 32,
            "first allocation should come from r32..r63, got r{}",
            first.0
        );
    }

    #[test]
    fn take_like_matches_file() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        assert!(matches!(pool.take_like(Reg::Int(r(5))), Some(Reg::Int(_))));
        assert!(matches!(
            pool.take_like(Reg::Pred(p(0))),
            Some(Reg::Pred(_))
        ));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        while pool.take_pred().is_some() {}
        assert!(pool.take_pred().is_none());
    }
}
