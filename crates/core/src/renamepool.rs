//! Free-register discovery for software renaming and instrumentation.
//!
//! Software renaming "can either be from the pool of free registers (at
//! that time) or dedicated registers" (Section 1).  We use the simplest
//! sound pool: registers the *program* never references at all, drawn
//! preferentially from the non-architectural half (`r32..r63`), which the
//! paper's compiler treats as the dedicated renaming pool.  The scan must
//! be program-wide, not per-function, because every function executes on
//! the same register file: a callee may read a register its caller's
//! transform just claimed, and vice versa.

use guardspec_ir::reg::{NUM_FLT_REGS, NUM_INT_REGS, NUM_PRED_REGS};
use guardspec_ir::{FltReg, Function, IntReg, PredReg, Program, Reg};

/// Pool of registers unreferenced anywhere in a function.
#[derive(Clone, Debug)]
pub struct RenamePool {
    free_int: Vec<IntReg>,
    free_flt: Vec<FltReg>,
    free_pred: Vec<PredReg>,
}

impl RenamePool {
    /// Scan `f` and collect every unreferenced register.
    ///
    /// Sound only for single-function programs: the register file is shared
    /// across calls, so a register free in `f` may still be read by a callee
    /// (or hold a caller's value live across the call into `f`).  Whole
    /// programs should use [`RenamePool::for_program`].
    pub fn for_function(f: &Function) -> RenamePool {
        let mut used = [false; Reg::DENSE_COUNT];
        Self::mark(f, &mut used);
        Self::from_used(&used)
    }

    /// Scan *every* function of `prog` and collect registers unreferenced
    /// anywhere.  Because all functions share one architectural register
    /// file, a pool register written in one function is visible to its
    /// callees and callers; drawing from the program-wide free set (and
    /// re-scanning after earlier transforms have claimed registers) keeps
    /// renaming sound across calls.  Found by the differential fuzzer — see
    /// tests/corpus/renamepool-cross-call.case.
    pub fn for_program(prog: &Program) -> RenamePool {
        let mut used = [false; Reg::DENSE_COUNT];
        for f in &prog.funcs {
            Self::mark(f, &mut used);
        }
        Self::from_used(&used)
    }

    fn mark(f: &Function, used: &mut [bool; Reg::DENSE_COUNT]) {
        for b in &f.blocks {
            for i in &b.insns {
                if let Some(d) = i.def() {
                    used[d.dense_index()] = true;
                }
                for u in i.uses() {
                    used[u.dense_index()] = true;
                }
            }
        }
    }

    fn from_used(used: &[bool; Reg::DENSE_COUNT]) -> RenamePool {
        // Prefer the dedicated pool r32..r63, then any unused architectural
        // register except r0.
        let mut free_int: Vec<IntReg> = (32..NUM_INT_REGS)
            .chain(1..32)
            .map(IntReg)
            .filter(|r| !used[Reg::Int(*r).dense_index()])
            .collect();
        let mut free_flt: Vec<FltReg> = (32..NUM_FLT_REGS)
            .chain(0..32)
            .map(FltReg)
            .filter(|r| !used[Reg::Flt(*r).dense_index()])
            .collect();
        let mut free_pred: Vec<PredReg> = (0..NUM_PRED_REGS)
            .map(PredReg)
            .filter(|r| !used[Reg::Pred(*r).dense_index()])
            .collect();
        // Allocate from the back cheaply.
        free_int.reverse();
        free_flt.reverse();
        free_pred.reverse();
        RenamePool {
            free_int,
            free_flt,
            free_pred,
        }
    }

    /// Take a free integer register, if any remain.
    pub fn take_int(&mut self) -> Option<IntReg> {
        self.free_int.pop()
    }

    pub fn take_flt(&mut self) -> Option<FltReg> {
        self.free_flt.pop()
    }

    pub fn take_pred(&mut self) -> Option<PredReg> {
        self.free_pred.pop()
    }

    /// Take a free register in the same file as `like`.
    pub fn take_like(&mut self, like: Reg) -> Option<Reg> {
        match like {
            Reg::Int(_) => self.take_int().map(Reg::Int),
            Reg::Flt(_) => self.take_flt().map(Reg::Flt),
            Reg::Pred(_) => self.take_pred().map(Reg::Pred),
        }
    }

    pub fn ints_left(&self) -> usize {
        self.free_int.len()
    }

    pub fn preds_left(&self) -> usize {
        self.free_pred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::FuncBuilder;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    #[test]
    fn pool_excludes_referenced_registers() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.add(r(3), r(1), r(2));
        fb.setpi(SetCond::Lt, p(1), r(3), 10);
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        let mut taken = std::collections::HashSet::new();
        while let Some(ri) = pool.take_int() {
            assert!(!ri.is_zero());
            assert!(![1u8, 2, 3].contains(&ri.0), "r{} is referenced", ri.0);
            assert!(taken.insert(ri), "duplicate register");
        }
        // p1 is used; p0 and p2.. are free.
        let pr = pool.take_pred().unwrap();
        assert_ne!(pr, p(1));
    }

    #[test]
    fn program_pool_excludes_other_functions_registers() {
        // leaf reads p5 and r40 without ever writing them: it observes the
        // caller's register file, so neither may be handed out as a rename
        // register anywhere in the program.
        let mut main = FuncBuilder::new("main");
        main.block("e");
        main.add(r(3), r(1), r(2));
        main.halt();
        let mut leaf = FuncBuilder::new("leaf");
        leaf.block("e");
        leaf.push_guarded(
            guardspec_ir::Opcode::AluImm {
                kind: guardspec_ir::insn::AluKind::Add,
                dst: r(40),
                a: r(40),
                imm: 1,
            },
            p(5),
            false,
        );
        leaf.ret();
        let mut pb = guardspec_ir::builder::ProgramBuilder::new();
        pb.add_func(main);
        pb.add_func(leaf);
        let prog = pb.finish("main");
        let mut pool = RenamePool::for_program(&prog);
        while let Some(ri) = pool.take_int() {
            assert_ne!(ri.0, 40, "r40 is referenced by leaf");
            assert!(![1u8, 2, 3].contains(&ri.0), "r{} referenced by main", ri.0);
        }
        let mut preds = Vec::new();
        while let Some(pr) = pool.take_pred() {
            preds.push(pr);
        }
        assert!(!preds.contains(&p(5)), "p5 is referenced by leaf");
    }

    #[test]
    fn prefers_dedicated_pool_first() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        let first = pool.take_int().unwrap();
        assert!(
            first.0 >= 32,
            "first allocation should come from r32..r63, got r{}",
            first.0
        );
    }

    #[test]
    fn take_like_matches_file() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        assert!(matches!(pool.take_like(Reg::Int(r(5))), Some(Reg::Int(_))));
        assert!(matches!(
            pool.take_like(Reg::Pred(p(0))),
            Some(Reg::Pred(_))
        ));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fb = FuncBuilder::new("f");
        fb.block("e");
        fb.halt();
        let f = fb.finish();
        let mut pool = RenamePool::for_function(&f);
        while pool.take_pred().is_some() {}
        assert!(pool.take_pred().is_none());
    }
}
