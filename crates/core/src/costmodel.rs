//! The schedule-cost model of Figures 2–4.
//!
//! The paper's running example is a loop-body diamond:
//!
//! ```text
//!        B1 (10 cycles, 4 vacant slots)
//!       /  \            fall-through = B2 (13), taken = B3 (5)
//!      B2    B3
//!       \  /
//!        B4 (12)        loop, 100 iterations
//! ```
//!
//! Four schedule layouts are compared:
//!
//! * **base** — 100·(10 + 0.5·(13+5) + 12) = **3100** cycles,
//! * **speculated** — two ops from each arm hoisted into B1's vacant slots,
//!   two B4 ops copied into the freed arm slots:
//!   100·(10 + 0.5·(13+5) + 10) = **2900**,
//! * **guarded** — arms merged into B1 (both always execute):
//!   100·(10 + (13+5−4) + 12) = **3600**,
//! * **segmented** (Figures 3/4) — a per-phase plan:
//!   100·(0.4·23.6 + 0.2·29 + 0.4·30.8) = **2756**.
//!
//! These exact numbers are locked in by unit tests.

/// The diamond CFG with its local schedule lengths.
///
/// ```
/// use guardspec_core::DiamondCfg;
/// let d = DiamondCfg::figure2();
/// assert_eq!(d.base_cost(0.5), 3100.0);
/// assert_eq!(d.speculated_cost(0.5), 2900.0);
/// assert_eq!(d.guarded_cost(), 3600.0);
/// let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
/// assert_eq!(d.segmented_cost(&phases, 0.9).round(), 2756.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DiamondCfg {
    /// Schedule length of the head block B1.
    pub b1: f64,
    /// Fall-through arm B2.
    pub b2: f64,
    /// Taken arm B3.
    pub b3: f64,
    /// Join block B4.
    pub b4: f64,
    /// Vacant issue slots in B1's schedule.
    pub slots: f64,
    /// Loop trip count.
    pub iterations: f64,
}

impl DiamondCfg {
    /// The Figure 2 example.
    pub fn figure2() -> DiamondCfg {
        DiamondCfg {
            b1: 10.0,
            b2: 13.0,
            b3: 5.0,
            b4: 12.0,
            slots: 4.0,
            iterations: 100.0,
        }
    }

    /// Per-iteration cost with taken probability `p_taken` (B3 executes
    /// when taken, B2 otherwise).
    pub fn per_iter_base(&self, p_taken: f64) -> f64 {
        self.b1 + (1.0 - p_taken) * self.b2 + p_taken * self.b3 + self.b4
    }

    /// Figure 2(b): total cycles with no transformation.
    pub fn base_cost(&self, p_taken: f64) -> f64 {
        self.iterations * self.per_iter_base(p_taken)
    }

    /// Per-iteration cost after speculating `s2` ops from B2 and `s3` ops
    /// from B3 into B1's vacant slots (`s2+s3 <= slots`, absorbed for
    /// free), then copying `k` ops from B4 into *both* arms (B4's tail ops
    /// must execute on every path, so each arm receives the copies).
    pub fn per_iter_speculated(&self, p_taken: f64, s2: f64, s3: f64, k: f64) -> f64 {
        assert!(
            s2 + s3 <= self.slots + 1e-9,
            "speculation exceeds vacant slots"
        );
        let b2 = self.b2 - s2 + k;
        let b3 = self.b3 - s3 + k;
        let b4 = self.b4 - k;
        self.b1 + (1.0 - p_taken) * b2 + p_taken * b3 + b4
    }

    /// Figure 2(c): balanced speculation (half the slots from each arm),
    /// copies refilling the freed slots.
    pub fn speculated_cost(&self, p_taken: f64) -> f64 {
        let half = self.slots / 2.0;
        self.iterations * self.per_iter_speculated(p_taken, half, half, half)
    }

    /// Figure 2(d): guarded execution — the branch is deleted and both arm
    /// bodies execute every iteration; B1's vacant slots absorb `slots`
    /// operations of the merged code.
    pub fn per_iter_guarded(&self) -> f64 {
        self.b1 + (self.b2 + self.b3 - self.slots) + self.b4
    }

    pub fn guarded_cost(&self) -> f64 {
        self.iterations * self.per_iter_guarded()
    }

    /// The per-phase plan of Figure 3: for a phase with taken rate `p`,
    /// speculate from the dominant arm when the phase is strongly biased
    /// (all slots from that arm), else balance.
    pub fn per_iter_phase_plan(&self, p: f64, bias: f64) -> f64 {
        if p >= bias {
            // Taken-dominant: all slots from B3 (Figure 3(a)).
            self.per_iter_speculated(p, 0.0, self.slots, self.slots)
        } else if p <= 1.0 - bias {
            // Fall-through-dominant: all slots from B2 (Figure 3(c)).
            self.per_iter_speculated(p, self.slots, 0.0, self.slots)
        } else {
            // Anomalous phase: balanced speculation (Figure 3(b)).
            let half = self.slots / 2.0;
            self.per_iter_speculated(p, half, half, half)
        }
    }

    /// Figure 4: combine per-phase schedules weighted by the fraction of
    /// the iteration space each phase covers.  `phases` = `(fraction,
    /// taken_rate)`, fractions summing to 1.
    pub fn segmented_cost(&self, phases: &[(f64, f64)], bias: f64) -> f64 {
        let total: f64 = phases.iter().map(|(f, _)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "phase fractions must sum to 1");
        self.iterations
            * phases
                .iter()
                .map(|&(frac, p)| frac * self.per_iter_phase_plan(p, bias))
                .sum::<f64>()
    }

    /// The split-branch instrumentation overhead per iteration: the counter
    /// increment plus the per-biased-segment predicate computations.  Used
    /// by the Figure-6 cost comparison ("if costs of adding extra
    /// instrumented code less expensive than …").  On a 4-wide machine,
    /// `extra_ops` operations cost `extra_ops / issue_width` cycles if they
    /// fill otherwise-vacant slots pessimistically.
    pub fn instrumented_cost(
        &self,
        phases: &[(f64, f64)],
        bias: f64,
        extra_ops_per_iter: f64,
        issue_width: f64,
    ) -> f64 {
        self.segmented_cost(phases, bias) + self.iterations * extra_ops_per_iter / issue_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn figure2_base_is_3100() {
        let d = DiamondCfg::figure2();
        assert!((d.base_cost(0.5) - 3100.0).abs() < EPS);
    }

    #[test]
    fn figure2_speculated_is_2900() {
        let d = DiamondCfg::figure2();
        assert!((d.speculated_cost(0.5) - 2900.0).abs() < EPS);
    }

    #[test]
    fn figure2_guarded_is_3600() {
        let d = DiamondCfg::figure2();
        assert!((d.guarded_cost() - 3600.0).abs() < EPS);
    }

    #[test]
    fn figure4_segmented_is_2756() {
        let d = DiamondCfg::figure2();
        // 40% of iterations 95% taken, 20% toggling 50-50, 40% 5% taken.
        let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
        let cost = d.segmented_cost(&phases, 0.9);
        assert!((cost - 2756.0).abs() < EPS, "got {cost}");
    }

    #[test]
    fn figure4_phase_components() {
        let d = DiamondCfg::figure2();
        // Figure 4's three boxes: 23.6, 29, 30.8 cycles per iteration.
        assert!((d.per_iter_phase_plan(0.95, 0.9) - 23.6).abs() < EPS);
        assert!((d.per_iter_phase_plan(0.5, 0.9) - 29.0).abs() < EPS);
        assert!((d.per_iter_phase_plan(0.05, 0.9) - 30.8).abs() < EPS);
    }

    #[test]
    fn segmented_beats_both_one_time_plans_on_phased_behavior() {
        let d = DiamondCfg::figure2();
        let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
        let seg = d.segmented_cost(&phases, 0.9);
        assert!(seg < d.speculated_cost(0.5));
        assert!(seg < d.base_cost(0.5));
        assert!(seg < d.guarded_cost());
    }

    #[test]
    fn guarded_wins_when_arms_are_short_and_balanced() {
        // Equal tiny arms, no vacant slots: guarding costs b2+b3 instead of
        // the expectation, but removes nothing here — construct a case where
        // guarding *does* win: arms of 2 with branch overhead modeled by a
        // larger b1 in the base (we compare relative orderings only).
        let d = DiamondCfg {
            b1: 4.0,
            b2: 2.0,
            b3: 2.0,
            b4: 4.0,
            slots: 2.0,
            iterations: 100.0,
        };
        // guarded per-iter = 4 + 2 + 4 = 10; base = 4 + 2 + 4 = 10.
        assert!((d.per_iter_guarded() - d.per_iter_base(0.5)).abs() < EPS);
        // With uneven arms guarding loses (the paper's warning).
        let uneven = DiamondCfg {
            b1: 4.0,
            b2: 12.0,
            b3: 2.0,
            b4: 4.0,
            slots: 2.0,
            iterations: 100.0,
        };
        assert!(uneven.per_iter_guarded() > uneven.per_iter_base(0.5));
    }

    #[test]
    fn instrumentation_overhead_added() {
        let d = DiamondCfg::figure2();
        let phases = [(0.4, 0.95), (0.2, 0.5), (0.4, 0.05)];
        let plain = d.segmented_cost(&phases, 0.9);
        let with = d.instrumented_cost(&phases, 0.9, 4.0, 4.0);
        assert!((with - (plain + 100.0)).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "speculation exceeds vacant slots")]
    fn overspeculation_panics() {
        let d = DiamondCfg::figure2();
        d.per_iter_speculated(0.5, 3.0, 3.0, 0.0);
    }
}
