//! Post-transform cleanup: remove unreachable blocks left behind by
//! if-conversion (stubbed arms) and renumber every target.
//!
//! Transforms deliberately leave dead stubs in place so block ids stay
//! stable while a driver holds references; this pass runs afterwards to
//! compact the function, as the paper's "final code layout phase" would.

use crate::remap::Remap;
use guardspec_ir::{BlockId, Function, Program};

/// Statistics from one cleanup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanupStats {
    pub blocks_removed: usize,
    pub insns_removed: usize,
}

/// Remove every block unreachable from the entry of `f`, remapping all
/// targets.  Returns the stats and the block remap (old → new ids for the
/// surviving blocks).
pub fn remove_unreachable_blocks(f: &mut Function) -> (CleanupStats, Remap) {
    let n = f.blocks.len();
    // Reachability over the same successor relation the CFG uses.
    let mut seen = vec![false; n];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        for s in f.successors(b) {
            if !seen[s.index()] {
                stack.push(s);
            }
        }
    }
    if seen.iter().all(|&s| s) {
        return (CleanupStats::default(), Remap::new());
    }

    // Fall-through safety: removing a dead block between a live block and
    // its fall-through successor is fine (live fall-through edges only go
    // to live blocks, and relative order of live blocks is preserved);
    // but a live block that falls through into a DEAD block would change
    // meaning.  That cannot happen: a fall-through successor of a live
    // block is reachable by definition.

    // New id per surviving block.
    let mut new_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for i in 0..n {
        if seen[i] {
            new_id[i] = next;
            next += 1;
        }
    }

    let mut stats = CleanupStats::default();
    let mut keep = Vec::with_capacity(next as usize);
    for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if seen[i] {
            keep.push(b);
        } else {
            stats.blocks_removed += 1;
            stats.insns_removed += b.insns.len();
        }
    }
    for b in &mut keep {
        for insn in &mut b.insns {
            insn.remap_targets(&mut |t| {
                debug_assert!(seen[t.index()], "live block targets dead block");
                BlockId(new_id[t.index()])
            });
        }
    }
    f.blocks = keep;

    // Express the renumbering as a Remap is not possible (it only models
    // inserts); callers get the raw mapping through the returned stats and
    // should drop stale references.  An empty Remap signals "recompute".
    (stats, Remap::new())
}

/// Clean every function of a program.
pub fn cleanup_program(prog: &mut Program) -> CleanupStats {
    let mut total = CleanupStats::default();
    for f in &mut prog.funcs {
        let (s, _) = remove_unreachable_blocks(f);
        total.blocks_removed += s.blocks_removed;
        total.insns_removed += s.insns_removed;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{transform_program, DriverOptions};
    use guardspec_interp::profile::profile_program;
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;

    #[test]
    fn removes_ifconvert_stubs_and_preserves_semantics() {
        // A loop with a noisy diamond that the driver if-converts, leaving
        // two dead arm stubs.
        let mut fb = FuncBuilder::new("c");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 120);
        fb.block("head");
        fb.mul(r(3), r(1), r(1));
        fb.srl(r(4), r(3), 5);
        fb.xor(r(4), r(4), r(3));
        fb.andi(r(4), r(4), 1);
        fb.beq(r(4), r(0), "t");
        fb.block("f");
        fb.addi(r(7), r(7), 2);
        fb.jump("join");
        fb.block("t");
        fb.addi(r(7), r(7), 3);
        fb.block("join");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(7), r(0), 1);
        fb.halt();
        let base = single_func_program(fb);
        let (profile, _) = profile_program(&base).unwrap();
        let mut p = base.clone();
        let report = transform_program(&mut p, &profile, &DriverOptions::guarded_only());
        assert!(report.ifconversions >= 1, "{:?}", report.decisions);
        let before_blocks = p.funcs[0].blocks.len();

        let stats = cleanup_program(&mut p);
        assert!(
            stats.blocks_removed >= 2,
            "both arm stubs removed: {stats:?}"
        );
        assert!(p.funcs[0].blocks.len() < before_blocks);
        assert_valid(&p);
        assert_eq!(
            run(&base).unwrap().machine.mem_checksum(),
            run(&p).unwrap().machine.mem_checksum()
        );
    }

    #[test]
    fn noop_on_fully_reachable_function() {
        let mut fb = FuncBuilder::new("n");
        fb.block("a");
        fb.beq(r(1), r(0), "c");
        fb.block("b");
        fb.addi(r(2), r(2), 1);
        fb.block("c");
        fb.halt();
        let mut prog = single_func_program(fb);
        let stats = cleanup_program(&mut prog);
        assert_eq!(stats, CleanupStats::default());
        assert_eq!(prog.funcs[0].blocks.len(), 3);
    }

    #[test]
    fn island_between_live_blocks_removed() {
        let mut fb = FuncBuilder::new("i");
        fb.block("a");
        fb.jump("c");
        fb.block("island");
        fb.addi(r(1), r(1), 1);
        fb.jump("c");
        fb.block("c");
        fb.halt();
        let mut prog = single_func_program(fb);
        let before = run(&prog).unwrap().machine.mem_checksum();
        let stats = cleanup_program(&mut prog);
        assert_eq!(stats.blocks_removed, 1);
        assert_valid(&prog);
        assert_eq!(before, run(&prog).unwrap().machine.mem_checksum());
    }
}
