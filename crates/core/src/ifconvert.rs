//! Guarded execution (if-conversion) — Figure 1(d) of the paper.
//!
//! A hammock's branch is deleted: the branch condition is materialized into
//! a predicate (condition-code) register with `setp`, both arm bodies are
//! merged into the head guarded by the predicate (taken arm on `p`,
//! fall-through arm on `!p`), and the head jumps straight to the join.
//! "The control dependences originally present in the form of conditional
//! branches are eliminated and now treated as data dependences."

use crate::renamepool::RenamePool;
use guardspec_analysis::Hammock;
use guardspec_ir::{BlockId, BranchCond, Function, Guard, Instruction, Opcode, PredReg};

/// Why a hammock could not be converted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IfConvertError {
    /// Head does not end in a convertible conditional branch.
    NotABranch,
    /// An arm instruction cannot carry a guard (call, control flow) or is
    /// already guarded (nested predication is out of scope, as in the
    /// paper's compiler which makes "most conservative assumptions" absent
    /// a full-blown predicate analyzer).
    UnguardableArm,
    /// No free predicate register remains.
    NoPredReg,
    /// Arm longer than the requested limit.
    ArmTooLong,
    /// The branch tests a predicate register that an arm redefines; guarding
    /// the arm on it would switch the guard mid-arm (found by the
    /// differential fuzzer — see tests/corpus/ifconvert-pred-clobber.case).
    ClobbersPredicate,
}

/// Outcome of one conversion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IfConvertStats {
    /// Instructions that received a guard.
    pub guarded_ops: usize,
    /// `setp`/`pnot` instructions inserted.
    pub setup_ops: usize,
}

/// Check convertibility without mutating.
pub fn can_convert(f: &Function, h: &Hammock, max_arm_len: usize) -> Result<(), IfConvertError> {
    let head = f.block(h.head);
    let term = head.terminator().ok_or(IfConvertError::NotABranch)?;
    if !matches!(term.op, Opcode::Branch { likely: false, .. }) {
        return Err(IfConvertError::NotABranch);
    }
    // A predicate-tested branch reuses its predicate as the guard, so the
    // guard must stay constant across the merged arms: reject arms that
    // write it.  (Compare branches get a fresh pool predicate, which by
    // construction no existing instruction references.)
    let guard_pred = match term.op {
        Opcode::Branch {
            cond: BranchCond::PredT(p) | BranchCond::PredF(p),
            ..
        } => Some(p),
        _ => None,
    };
    for arm in h.arm_blocks() {
        let body = f.block(arm).body();
        if body.len() > max_arm_len {
            return Err(IfConvertError::ArmTooLong);
        }
        for i in body {
            if !i.can_guard() || i.guard.is_some() {
                return Err(IfConvertError::UnguardableArm);
            }
            if let (Some(gp), Some(guardspec_ir::Reg::Pred(d))) = (guard_pred, i.def()) {
                if d == gp {
                    return Err(IfConvertError::ClobbersPredicate);
                }
            }
        }
    }
    Ok(())
}

/// Convert the hammock.  The head ends up with:
///
/// ```text
/// <original head body>
/// setp p, <branch condition>        (unless the branch tested a predicate)
/// (!p) <fall-through arm body, guarded>
/// (p)  <taken arm body, guarded>
/// j join
/// ```
///
/// The arm blocks become unreachable `j join` stubs (removable by a
/// cleanup pass; left in place so no block ids shift).
pub fn if_convert(
    f: &mut Function,
    h: &Hammock,
    pool: &mut RenamePool,
    max_arm_len: usize,
) -> Result<IfConvertStats, IfConvertError> {
    can_convert(f, h, max_arm_len)?;
    let mut stats = IfConvertStats::default();

    // Pull the branch condition.
    let cond = match f.block(h.head).terminator().map(|t| &t.op) {
        Some(Opcode::Branch { cond, .. }) => *cond,
        _ => return Err(IfConvertError::NotABranch),
    };

    // Predicate register + setup code: p is true exactly when the branch
    // would have been taken.
    let mut setup: Vec<Instruction> = Vec::new();
    let (p, expect_taken): (PredReg, bool) = match cond {
        BranchCond::PredT(p0) => (p0, true),
        BranchCond::PredF(p0) => (p0, false),
        other => {
            let p0 = pool.take_pred().ok_or(IfConvertError::NoPredReg)?;
            let (sc, a, rhs) = other.as_compare().expect("non-predicate branch");
            let op = match rhs {
                Some(b) => Opcode::SetP {
                    cond: sc,
                    dst: p0,
                    a,
                    b,
                },
                None => Opcode::SetPImm {
                    cond: sc,
                    dst: p0,
                    a,
                    imm: 0,
                },
            };
            setup.push(Instruction::new(op));
            stats.setup_ops += 1;
            (p0, true)
        }
    };

    // Collect guarded arm bodies: fall-through arm executes when the branch
    // is NOT taken.
    let mut merged: Vec<Instruction> = Vec::new();
    let mut take_arm = |f: &mut Function, arm: Option<BlockId>, expect: bool| {
        if let Some(a) = arm {
            let body: Vec<Instruction> = f.block(a).body().to_vec();
            for mut i in body {
                i.guard = Some(Guard { pred: p, expect });
                merged.push(i);
                stats.guarded_ops += 1;
            }
            // Stub the arm: unreachable but structurally valid.
            f.block_mut(a).insns = vec![Instruction::new(Opcode::Jump { target: h.join })];
        }
    };
    take_arm(f, h.fall_arm, !expect_taken);
    take_arm(f, h.taken_arm, expect_taken);

    // Rebuild the head.
    let head = f.block_mut(h.head);
    head.insns.pop(); // the branch
    head.insns.extend(setup);
    head.insns.extend(merged);
    head.insns
        .push(Instruction::new(Opcode::Jump { target: h.join }));

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_analysis::{find_hammocks, Cfg};
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;
    use guardspec_ir::{FuClass, FuncId, Program};

    /// abs-diff diamond: if (r1 < r2) r3 = r2-r1 else r3 = r1-r2.
    fn diamond_program(a: i64, b: i64) -> Program {
        let mut fb = FuncBuilder::new("absd");
        fb.block("entry");
        fb.li(r(1), a);
        fb.li(r(2), b);
        fb.block("head");
        fb.slt(r(4), r(1), r(2));
        fb.bne(r(4), r(0), "lt");
        fb.block("ge");
        fb.sub(r(3), r(1), r(2));
        fb.jump("join");
        fb.block("lt");
        fb.sub(r(3), r(2), r(1));
        fb.block("join");
        fb.sw(r(3), r(0), 1);
        fb.halt();
        single_func_program(fb)
    }

    fn convert_first_hammock(prog: &mut Program) -> IfConvertStats {
        let f = prog.func_mut(FuncId(0));
        let cfg = Cfg::build(f);
        let hs = find_hammocks(f, &cfg);
        assert!(!hs.is_empty(), "no hammock found");
        let mut pool = RenamePool::for_function(f);
        if_convert(f, &hs[0], &mut pool, 16).expect("convertible")
    }

    #[test]
    fn diamond_converts_and_branch_disappears() {
        let mut prog = diamond_program(3, 10);
        let stats = convert_first_hammock(&mut prog);
        assert_valid(&prog);
        assert_eq!(stats.guarded_ops, 2);
        assert_eq!(stats.setup_ops, 1);
        // No conditional branch remains on the executed path.
        let f = prog.func(FuncId(0));
        let head = f.block_by_label("head").unwrap();
        assert!(f.block(head).insns.iter().all(|i| !i.is_cond_branch()));
        // The merged body contains one guard-true and one guard-false op.
        let guards: Vec<bool> = f
            .block(head)
            .insns
            .iter()
            .filter_map(|i| i.guard.map(|g| g.expect))
            .collect();
        assert_eq!(guards.iter().filter(|g| **g).count(), 1);
        assert_eq!(guards.iter().filter(|g| !**g).count(), 1);
    }

    #[test]
    fn semantics_preserved_both_directions() {
        for (a, b) in [(3, 10), (10, 3), (5, 5), (-7, 2)] {
            let base = diamond_program(a, b);
            let mut conv = base.clone();
            convert_first_hammock(&mut conv);
            assert_eq!(
                run(&base).unwrap().machine.mem_checksum(),
                run(&conv).unwrap().machine.mem_checksum(),
                "if-conversion changed semantics for ({a},{b})"
            );
        }
    }

    #[test]
    fn triangle_converts() {
        // if (r1 != 0) r2 += 5
        let build = |v: i64| {
            let mut fb = FuncBuilder::new("tri");
            fb.block("entry");
            fb.li(r(1), v);
            fb.block("head");
            fb.beq(r(1), r(0), "join");
            fb.block("body");
            fb.addi(r(2), r(2), 5);
            fb.block("join");
            fb.sw(r(2), r(0), 1);
            fb.halt();
            single_func_program(fb)
        };
        for v in [0, 3] {
            let base = build(v);
            let mut conv = base.clone();
            convert_first_hammock(&mut conv);
            assert_valid(&conv);
            assert_eq!(
                run(&base).unwrap().machine.mem_checksum(),
                run(&conv).unwrap().machine.mem_checksum()
            );
        }
    }

    #[test]
    fn guarded_store_in_arm_converts_correctly() {
        let build = |v: i64| {
            let mut fb = FuncBuilder::new("gs");
            fb.block("entry");
            fb.li(r(1), v);
            fb.li(r(2), 99);
            fb.block("head");
            fb.beq(r(1), r(0), "join");
            fb.block("body");
            fb.sw(r(2), r(0), 7); // store only when r1 != 0
            fb.block("join");
            fb.halt();
            single_func_program(fb)
        };
        for v in [0, 1] {
            let base = build(v);
            let mut conv = base.clone();
            convert_first_hammock(&mut conv);
            let rb = run(&base).unwrap();
            let rc = run(&conv).unwrap();
            assert_eq!(rb.machine.mem[7], rc.machine.mem[7], "v={v}");
        }
    }

    #[test]
    fn increases_dynamic_ops_but_removes_branches() {
        // The paper's trade-off: guarded execution "may result in an
        // increase in the number of instructions that get executed
        // dynamically" while eliminating branches.
        let base = diamond_program(3, 10);
        let mut conv = base.clone();
        convert_first_hammock(&mut conv);
        let rb = run(&base).unwrap();
        let rc = run(&conv).unwrap();
        assert!(rc.summary.retired > rb.summary.retired);
        assert!(rc.summary.cond_branches < rb.summary.cond_branches);
        assert_eq!(rc.summary.annulled, 1); // the not-executed arm
                                            // Branch-class dynamic count drops.
        let bi = guardspec_interp::exec::class_index(FuClass::Branch);
        assert!(rc.summary.by_class[bi] <= rb.summary.by_class[bi]);
    }

    #[test]
    fn refuses_call_in_arm() {
        let mut pb = ProgramBuilder::new();
        let mut fb = FuncBuilder::new("main");
        fb.block("head");
        fb.beq(r(1), r(0), "join");
        fb.block("body");
        fb.addi(r(2), r(2), 1);
        fb.call("h");
        fb.jump("join");
        fb.block("join");
        fb.halt();
        let mut h = FuncBuilder::new("h");
        h.block("e");
        h.ret();
        pb.add_func(fb);
        pb.add_func(h);
        let mut prog = pb.finish("main");
        let f = prog.func_mut(FuncId(0));
        let cfg = Cfg::build(f);
        let hs = find_hammocks(f, &cfg);
        // The hammock detector already refuses call-bearing arms.
        assert!(hs.is_empty());
    }

    #[test]
    fn refuses_arm_longer_than_limit() {
        let mut prog = diamond_program(1, 2);
        let f = prog.func_mut(FuncId(0));
        let cfg = Cfg::build(f);
        let hs = find_hammocks(f, &cfg);
        let mut pool = RenamePool::for_function(f);
        assert_eq!(
            if_convert(f, &hs[0], &mut pool, 0),
            Err(IfConvertError::ArmTooLong)
        );
    }

    #[test]
    fn predicate_branch_reuses_predicate() {
        let build = |v: i64| {
            let mut fb = FuncBuilder::new("pb");
            fb.block("entry");
            fb.li(r(1), v);
            fb.setpi(guardspec_ir::SetCond::Gt, guardspec_ir::reg::p(1), r(1), 0);
            fb.block("head");
            fb.bpt(guardspec_ir::reg::p(1), "join");
            fb.block("body");
            fb.addi(r(2), r(2), 1);
            fb.block("join");
            fb.sw(r(2), r(0), 1);
            fb.halt();
            single_func_program(fb)
        };
        for v in [0, 5] {
            let base = build(v);
            let mut conv = base.clone();
            let stats = convert_first_hammock(&mut conv);
            assert_eq!(stats.setup_ops, 0, "no setp needed");
            assert_eq!(
                run(&base).unwrap().machine.mem_checksum(),
                run(&conv).unwrap().machine.mem_checksum()
            );
        }
    }

    /// Distilled from a fuzzer-found miscompile
    /// (tests/corpus/ifconvert-pred-clobber.case): when the branch tests a
    /// predicate that the arm itself redefines, guarding the merged arm on
    /// that predicate flips the guard mid-arm and annuls the arm's tail.
    /// Such hammocks must be rejected, not converted.
    #[test]
    fn arm_redefining_branch_predicate_is_rejected() {
        use guardspec_ir::reg::p;
        let mut fb = FuncBuilder::new("clob");
        fb.block("entry");
        fb.li(r(1), 7);
        fb.setpi(guardspec_ir::SetCond::Gt, p(1), r(1), 0);
        fb.block("head");
        fb.bpf(p(1), "join");
        fb.block("arm");
        fb.setp(guardspec_ir::SetCond::Ge, p(1), r(2), r(1));
        fb.addi(r(2), r(2), 1);
        fb.block("join");
        fb.sw(r(2), r(0), 1);
        fb.halt();
        let prog = single_func_program(fb);
        assert_valid(&prog);
        let f = prog.func(FuncId(0));
        let cfg = Cfg::build(f);
        let hs = find_hammocks(f, &cfg);
        assert_eq!(hs.len(), 1);
        assert_eq!(
            can_convert(f, &hs[0], 16),
            Err(IfConvertError::ClobbersPredicate)
        );
        // A compare-tested branch gets a fresh pool predicate, so an arm
        // writing some *other* predicate is still convertible.
        let mut fb = FuncBuilder::new("ok");
        fb.block("entry");
        fb.li(r(1), 7);
        fb.block("head");
        fb.bgtz(r(1), "join");
        fb.block("arm");
        fb.setp(guardspec_ir::SetCond::Ge, p(2), r(2), r(1));
        fb.addi(r(2), r(2), 1);
        fb.block("join");
        fb.sw(r(2), r(0), 1);
        fb.halt();
        let base = single_func_program(fb);
        let mut conv = base.clone();
        convert_first_hammock(&mut conv);
        assert_valid(&conv);
        assert_eq!(
            run(&base).unwrap().machine.mem_checksum(),
            run(&conv).unwrap().machine.mem_checksum()
        );
    }
}
