//! Compile-time speculative execution — Figure 1(b)/(c) of the paper.
//!
//! Hoists a prefix of a branch arm above the controlling branch into the
//! head block.  When the hoisted instruction's destination is live on the
//! other path (or feeds the branch condition itself), the destination is
//! *software renamed* to a free register, a copy (`mov old, new`) is left
//! in the arm, and subsequent arm uses are *forward substituted* to the
//! renamed register — exactly the r6→r9 dance of Figure 1(b).

use crate::remap::Remap;
use crate::renamepool::RenamePool;
use guardspec_analysis::RegSet;
use guardspec_ir::{BlockId, Function, Instruction, Opcode, Reg};

/// What one speculation call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpeculateStats {
    /// Instructions hoisted above the branch.
    pub hoisted: usize,
    /// Of those, how many needed software renaming + a copy.
    pub renamed: usize,
}

/// Hoist up to `max_ops` speculatable instructions from the front of `arm`
/// into `head` (immediately before its terminator).
///
/// `live_other` must be the set of registers live on entry to the *other*
/// successor of `head` — destinations in that set are renamed.
/// Returns the stats plus a [`Remap`] describing the instruction-index
/// shifts in `head` and `arm`.
pub fn speculate_into_head(
    f: &mut Function,
    head: BlockId,
    arm: BlockId,
    live_other: &RegSet,
    max_ops: usize,
    allow_loads: bool,
    pool: &mut RenamePool,
) -> (SpeculateStats, Remap) {
    let mut stats = SpeculateStats::default();
    let mut remap = Remap::new();
    if max_ops == 0 {
        return (stats, remap);
    }

    // Registers the head terminator reads (branch condition operands):
    // clobbering them above the branch changes the branch itself.
    let term_uses: RegSet = match f.block(head).terminator() {
        Some(t) => t.uses().collect(),
        None => RegSet::new(),
    };

    // Select the maximal speculatable prefix of the arm.
    let mut prefix = 0;
    {
        let blk = f.block(arm);
        for insn in blk.body() {
            if prefix >= max_ops || !insn.can_speculate(allow_loads) || insn.guard.is_some() {
                break;
            }
            // Predicate defs cannot be renamed with a plain move; exclude
            // them rather than special-case a predicate copy sequence.
            if matches!(insn.def(), Some(Reg::Pred(_))) {
                break;
            }
            prefix += 1;
        }
    }
    if prefix == 0 {
        return (stats, remap);
    }

    // Hoist the prefix, renaming as needed.  `renames` maps original dest
    // to its renamed register for forward substitution.
    let mut hoisted: Vec<Instruction> = Vec::with_capacity(prefix);
    let mut copies: Vec<Instruction> = Vec::new();
    let mut renames: Vec<(Reg, Reg)> = Vec::new();
    let mut drained: Vec<Instruction> = {
        let blk = f.block_mut(arm);
        blk.insns.drain(..prefix).collect()
    };
    let mut put_back: Vec<Instruction> = Vec::new();
    let mut di = 0;
    while di < drained.len() {
        let mut insn = drained[di].clone();
        // Substitute operands that earlier hoisted instructions renamed.
        for &(from, to) in &renames {
            insn.rewrite_uses(from, to);
        }
        if let Some(d) = insn.def().filter(|d| !d.is_int_zero()) {
            let needs_rename = live_other.contains(d) || term_uses.contains(d);
            if needs_rename {
                match pool.take_like(d) {
                    Some(fresh) => {
                        let ok = insn.rename_def(fresh);
                        debug_assert!(ok, "rename_def on a def-carrying instruction");
                        // Copy back into the original register on the arm path.
                        let copy = match (d, fresh) {
                            (Reg::Int(o), Reg::Int(n)) => Opcode::Mov { dst: o, src: n },
                            (Reg::Flt(o), Reg::Flt(n)) => Opcode::FMov { dst: o, src: n },
                            _ => unreachable!(
                                "predicate defs are excluded from the prefix; \
                                 take_like preserves the register file"
                            ),
                        };
                        copies.push(Instruction::new(copy));
                        renames.retain(|(from, _)| *from != d);
                        renames.push((d, fresh));
                        stats.renamed += 1;
                    }
                    None => {
                        // No free register: stop.  The unprocessed tail goes
                        // back into the arm *unrewritten*; the forward-
                        // substitution pass below rewrites it uniformly
                        // (the copies make either form correct).
                        put_back.push(drained[di].clone());
                        put_back.extend(drained.drain(di + 1..));
                        break;
                    }
                }
            } else {
                // Unconditionally safe hoist: the def reaches its final
                // value before the branch; drop any stale mapping.
                renames.retain(|(from, _)| *from != d);
            }
        }
        hoisted.push(insn);
        stats.hoisted += 1;
        di += 1;
    }

    // Forward substitution in the remaining arm body: uses of renamed
    // registers read the renamed value until the register is redefined.
    {
        let blk = f.block_mut(arm);
        for pb in put_back.into_iter().rev() {
            blk.insns.insert(0, pb);
        }
        let mut active = renames.clone();
        for insn in blk.insns.iter_mut() {
            for &(from, to) in &active {
                insn.rewrite_uses(from, to);
            }
            // Any def (even guarded: it may update the register) ends the
            // substitution range — the copy keeps the original correct.
            if let Some(d) = insn.def() {
                active.retain(|(from, _)| *from != d);
            }
        }
        // Insert the copies at the top of the arm (they define the original
        // registers from the renamed ones; forward substitution above makes
        // most of them dead within the arm, but they feed the join).
        for c in copies.iter().rev() {
            blk.insns.insert(0, c.clone());
        }
        let delta = copies.len() as i64 - prefix as i64;
        if delta > 0 {
            remap.insn_insert(arm, 0, delta as u32);
        }
        // (Negative shifts are not representable; the driver never holds
        // references into speculated arm bodies, only to terminators, whose
        // index change is benign for its uses.)
    }

    // Insert the hoisted instructions into the head before its terminator.
    {
        let blk = f.block_mut(head);
        let at = match blk.terminator() {
            Some(_) => blk.insns.len() - 1,
            None => blk.insns.len(),
        };
        for (k, insn) in hoisted.into_iter().enumerate() {
            blk.insns.insert(at + k, insn);
        }
        remap.insn_insert(head, at as u32, stats.hoisted as u32);
    }

    (stats, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_analysis::{Cfg, Liveness};
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;

    /// Figure 1(a): the paper's running fragment, with concrete values.
    ///
    /// ```text
    ///   beq r1, r2, L1
    ///   sub r6, r3, 1        # fall path
    ///   add r8, r6, r4
    ///   j L2
    /// L1:
    ///   add r9, r6, r5       # uses the OLD r6 -> rename required
    /// L2:
    ///   sw r8 / r9 ...
    /// ```
    fn figure1_program(r1: i64, r2: i64) -> guardspec_ir::Program {
        let mut fb = FuncBuilder::new("fig1");
        fb.block("entry");
        fb.li(r(1), r1);
        fb.li(r(2), r2);
        fb.li(r(3), 100);
        fb.li(r(4), 7);
        fb.li(r(5), 11);
        fb.li(r(6), 1000);
        fb.block("head");
        fb.beq(r(1), r(2), "L1");
        fb.block("fall");
        fb.subi(r(6), r(3), 1);
        fb.add(r(8), r(6), r(4));
        fb.jump("L2");
        fb.block("L1");
        fb.add(r(9), r(6), r(5));
        fb.block("L2");
        fb.sw(r(6), r(0), 1);
        fb.sw(r(8), r(0), 2);
        fb.sw(r(9), r(0), 3);
        fb.halt();
        single_func_program(fb)
    }

    fn speculate_fig1(prog: &mut guardspec_ir::Program) -> SpeculateStats {
        let f = prog.func_mut(guardspec_ir::FuncId(0));
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let head = f.block_by_label("head").unwrap();
        let fall = f.block_by_label("fall").unwrap();
        let taken = f.block_by_label("L1").unwrap();
        let live_other = *lv.live_in(taken);
        let mut pool = RenamePool::for_function(f);
        let (stats, _remap) = speculate_into_head(f, head, fall, &live_other, 4, false, &mut pool);
        stats
    }

    #[test]
    fn hoists_and_renames_like_figure1b() {
        let mut prog = figure1_program(0, 1);
        let stats = speculate_fig1(&mut prog);
        assert_valid(&prog);
        // Both the sub and the add hoist.  r6 is live at L1 and r8 is live
        // at the join (read by the final stores), so both defs rename.
        assert_eq!(stats.hoisted, 2);
        assert_eq!(stats.renamed, 2);
        let f = prog.func(guardspec_ir::FuncId(0));
        let head = f.block_by_label("head").unwrap();
        // Head now holds sub(renamed), add, then the branch.
        let hb = f.block(head);
        assert_eq!(hb.insns.len(), 3);
        assert!(hb.insns[2].is_cond_branch());
        // The hoisted sub defines a renamed register, not r6.
        let sub_def = hb.insns[0].def().unwrap();
        assert_ne!(sub_def, Reg::Int(r(6)));
        // The hoisted add reads the renamed register (forward substitution
        // applied among the hoisted group).
        assert!(hb.insns[1].uses().any(|u| u == sub_def));
        // The arm starts with the copy mov r6, <renamed>.
        let fall = f.block_by_label("fall").unwrap();
        match f.block(fall).insns[0].op {
            Opcode::Mov { dst, src } => {
                assert_eq!(dst, r(6));
                assert_eq!(Reg::Int(src), sub_def);
            }
            ref other => panic!("expected copy, got {other:?}"),
        }
    }

    #[test]
    fn semantics_preserved_on_both_paths() {
        for (a, b) in [(0, 1), (5, 5)] {
            let base = figure1_program(a, b);
            let mut spec = base.clone();
            speculate_fig1(&mut spec);
            let r1 = run(&base).expect("base runs");
            let r2 = run(&spec).expect("spec runs");
            assert_eq!(
                r1.machine.mem_checksum(),
                r2.machine.mem_checksum(),
                "speculation changed semantics for ({a},{b})"
            );
        }
    }

    #[test]
    fn stores_are_not_hoisted() {
        let mut fb = FuncBuilder::new("st");
        fb.block("entry");
        fb.li(r(1), 1);
        fb.block("head");
        fb.beq(r(1), r(0), "skip");
        fb.block("arm");
        fb.sw(r(1), r(0), 4); // must NOT execute when branch taken
        fb.addi(r(2), r(2), 1);
        fb.block("skip");
        fb.halt();
        let mut prog = single_func_program(fb);
        let f = prog.func_mut(guardspec_ir::FuncId(0));
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let head = f.block_by_label("head").unwrap();
        let arm = f.block_by_label("arm").unwrap();
        let skip = f.block_by_label("skip").unwrap();
        let live = *lv.live_in(skip);
        let mut pool = RenamePool::for_function(f);
        let (stats, _) = speculate_into_head(f, head, arm, &live, 4, false, &mut pool);
        // The store blocks the prefix: nothing hoists.
        assert_eq!(stats.hoisted, 0);
        assert_valid(&prog);
    }

    #[test]
    fn loads_hoist_only_when_allowed() {
        let mut fb = FuncBuilder::new("ld");
        fb.block("entry");
        fb.li(r(1), 1);
        fb.li(r(3), 8);
        fb.block("head");
        fb.beq(r(1), r(0), "skip");
        fb.block("arm");
        fb.lw(r(2), r(3), 0);
        fb.jump("skip");
        fb.block("skip");
        fb.halt();
        let mut prog = single_func_program(fb);
        let f = prog.func_mut(guardspec_ir::FuncId(0));
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let head = f.block_by_label("head").unwrap();
        let arm = f.block_by_label("arm").unwrap();
        let skip = f.block_by_label("skip").unwrap();
        let live = *lv.live_in(skip);
        let mut pool = RenamePool::for_function(f);
        let (s0, _) = speculate_into_head(f, head, arm, &live, 4, false, &mut pool);
        assert_eq!(s0.hoisted, 0);
        let (s1, _) = speculate_into_head(f, head, arm, &live, 4, true, &mut pool);
        assert_eq!(s1.hoisted, 1);
        assert_valid(&prog);
    }

    #[test]
    fn max_ops_respected() {
        let mut prog = figure1_program(0, 1);
        let f = prog.func_mut(guardspec_ir::FuncId(0));
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let head = f.block_by_label("head").unwrap();
        let fall = f.block_by_label("fall").unwrap();
        let taken = f.block_by_label("L1").unwrap();
        let live = *lv.live_in(taken);
        let mut pool = RenamePool::for_function(f);
        let (stats, _) = speculate_into_head(f, head, fall, &live, 1, false, &mut pool);
        assert_eq!(stats.hoisted, 1);
        assert_valid(&prog);
        // Semantics still hold.
        let base = figure1_program(0, 1);
        assert_eq!(
            run(&base).unwrap().machine.mem_checksum(),
            run(&prog).unwrap().machine.mem_checksum()
        );
    }
}
