//! Split-branch instrumentation — Section 5 / Figure 7 of the paper.
//!
//! A non-monotonic branch whose iteration space splits into well-biased
//! phases gets per-phase control: an iteration counter (`i` in Figure 7),
//! predicates delimiting each phase, and *predicated branch-likely*
//! instructions that steer the strongly-biased phases with static
//! prediction, leaving the anomalous phases to the ordinary 2-bit-predicted
//! branch:
//!
//! ```text
//! L0:  i = i + 1                    # header top
//!      ...
//!      p1 = <branch condition>
//!      p2 = i < 40                  # phase-A membership
//!      p3 = i >= 60                 # phase-C membership
//!      if (p1 && p2) branch-likely L1    # taken-biased phase
//!      if (!p1 && p3) branch-likely L3   # not-taken-biased phase (to fall path)
//!      if (p1) branch L1                 # residual, 2-bit predicted
//! L3:  <fall path> ...
//! ```
//!
//! The likelies are *predicated branches* (the authors' prior mechanism,
//! \[13\]): a false guard annuls the branch with no prediction made, so they
//! are free outside their phase and statically correct inside it.
//!
//! Periodic toggle patterns (`TFTF…`, `TTFF…`) are instrumented with the
//! "algebraic counter" form the paper describes: membership is
//! `(i & (period-1)) == k` for power-of-two periods.
//!
//! The generated code is *semantically identical* to the original branch
//! for every input, regardless of whether the profile matches the run:
//! the likelies only fire when `condition && phase` agree, and the residual
//! branch replicates the original exactly.

use crate::feedback::{Segment, SegmentClass};
use crate::remap::Remap;
use crate::renamepool::RenamePool;
use guardspec_ir::insn::{AluKind, PLogicKind};
use guardspec_ir::{
    BasicBlock, BlockId, BranchCond, Function, Guard, Instruction, IntReg, Opcode, PredReg, SetCond,
};

/// How to instrument one branch.
/// A segment plus, for Mixed segments only, the `(period, pattern)` of a
/// detected periodic sub-structure steering that phase's split.
pub type HybridSegment = (Segment, Option<(usize, Vec<bool>)>);

#[derive(Clone, Debug)]
pub enum SplitPlan {
    /// Contiguous biased phases of the iteration space.
    Phased { segments: Vec<Segment> },
    /// Repeating pattern; `period` must be a power of two `<= 8`.
    Periodic { period: usize, pattern: Vec<bool> },
    /// The per-segment extension: biased phases steered by range
    /// predicates, plus Mixed phases with their own periodic pattern
    /// steered by range && algebraic-counter predicates.
    Hybrid { segments: Vec<HybridSegment> },
}

/// One branch to split.
#[derive(Clone, Debug)]
pub struct SplitSpec {
    /// Block whose terminator is the branch.
    pub block: BlockId,
    pub plan: SplitPlan,
}

/// Outcome of a [`split_branches`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Branch sites split.
    pub sites: usize,
    /// Branch-likely instructions emitted.
    pub likelies: usize,
    /// Instrumentation instructions emitted (setp/pand/pnot/counter ops).
    pub instrumentation_ops: usize,
}

/// Why splitting failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitError {
    NotABranch,
    NoCounterReg,
    NoPredReg,
    /// No segment is biased enough to earn a branch-likely.
    NoBiasedSegment,
    /// Periodic plan with an unsupported period (not a power of two ≤ 8).
    UnsupportedPeriod,
}

/// Insert an empty block at layout position `pos`, shifting every target at
/// or beyond `pos` up by one.
pub fn insert_block_before(f: &mut Function, pos: BlockId, label: String) {
    for b in &mut f.blocks {
        for i in &mut b.insns {
            i.remap_targets(&mut |t| if t.0 >= pos.0 { BlockId(t.0 + 1) } else { t });
        }
    }
    f.blocks.insert(pos.index(), BasicBlock::new(label));
}

/// Split every branch in `specs` (all inside the loop headed by `header`
/// with body `body`), sharing one iteration counter.
///
/// Returns stats plus the [`Remap`] for the caller's pending references.
pub fn split_branches(
    f: &mut Function,
    header: BlockId,
    body: &[BlockId],
    specs: &[SplitSpec],
    pool: &mut RenamePool,
    min_segment_frac: f64,
    max_likelies_per_site: usize,
) -> Result<(SplitStats, Remap), SplitError> {
    let mut stats = SplitStats::default();
    let mut remap = Remap::new();
    let counter = pool.take_int().ok_or(SplitError::NoCounterReg)?;
    // One shared register set for every site in this loop: each site's
    // predicates are dead once its residual branch executes, so sites can
    // reuse the same registers.
    let regs = SplitRegs {
        p_true: pool.take_pred().ok_or(SplitError::NoPredReg)?,
        p_false: pool.take_pred().ok_or(SplitError::NoPredReg)?,
        tmp_a: pool.take_pred().ok_or(SplitError::NoPredReg)?,
        tmp_b: pool.take_pred().ok_or(SplitError::NoPredReg)?,
        guards: (0..max_likelies_per_site.max(1))
            .map(|_| pool.take_pred().ok_or(SplitError::NoPredReg))
            .collect::<Result<Vec<_>, _>>()?,
        tmp_c: pool.take_pred().ok_or(SplitError::NoPredReg)?,
        masked: pool.take_int().ok_or(SplitError::NoCounterReg)?,
    };

    // Process sites in descending block order so each site's block inserts
    // do not move sites processed later.
    let mut order: Vec<&SplitSpec> = specs.iter().collect();
    order.sort_by_key(|s| std::cmp::Reverse(s.block));

    for spec in order {
        let site_remap = split_one(
            f,
            spec,
            counter,
            &regs,
            min_segment_frac,
            max_likelies_per_site,
            &mut stats,
        )?;
        remap.extend(&site_remap);
    }
    if stats.sites == 0 {
        return Err(SplitError::NoBiasedSegment);
    }

    // Counter increment at the top of the (possibly shifted) header: the
    // counter holds the 0-based iteration index during each iteration.
    let header_now = remap.apply_block(header);
    f.block_mut(header_now).insns.insert(
        0,
        Instruction::new(Opcode::AluImm {
            kind: AluKind::Add,
            dst: counter,
            a: counter,
            imm: 1,
        }),
    );
    remap.insn_insert(header_now, 0, 1);
    stats.instrumentation_ops += 1;

    // Counter initialization.  Preferred: a fresh preheader immediately
    // before the header, entered by every loop-external predecessor.  If a
    // loop-body block physically precedes the header and falls through into
    // it (a fall-through back edge), a preheader would reset the counter
    // every iteration — fall back to initializing in the function entry
    // (still semantically safe: a stale counter only costs mispredicts).
    let body_now: Vec<BlockId> = body.iter().map(|&b| remap.apply_block(b)).collect();
    let fallthrough_backedge = header_now.0 > 0
        && body_now.contains(&BlockId(header_now.0 - 1))
        && f.block(BlockId(header_now.0 - 1)).falls_through();
    let init = Instruction::new(Opcode::Li {
        dst: counter,
        imm: -1,
    });
    if fallthrough_backedge {
        f.block_mut(BlockId(0)).insns.insert(0, init);
        remap.insn_insert(BlockId(0), 0, 1);
    } else {
        let label = f.fresh_label("preheader");
        insert_block_before(f, header_now, label);
        remap.block_insert(header_now);
        let pre = header_now;
        let new_header = BlockId(header_now.0 + 1);
        f.block_mut(pre).insns.push(init);
        // Retarget loop-external predecessors that explicitly target the
        // header; latches (in-body) keep targeting the header directly.
        let body_after: Vec<BlockId> = body_now
            .iter()
            .map(|&b| if b.0 >= pre.0 { BlockId(b.0 + 1) } else { b })
            .collect();
        let nblocks = f.blocks.len();
        for bi in 0..nblocks {
            let bid = BlockId(bi as u32);
            if bid == pre || body_after.contains(&bid) {
                continue;
            }
            if let Some(t) = f.block_mut(bid).terminator_mut() {
                t.remap_targets(&mut |t| if t == new_header { pre } else { t });
            }
        }
    }
    stats.instrumentation_ops += 1;

    Ok((stats, remap))
}

/// A planned likely: `taken_dir` says whether it steers toward the branch's
/// taken target or its fall path.
struct PlannedLikely {
    guard: PredReg,
    taken_dir: bool,
}

/// Registers shared by every split site of one loop.
struct SplitRegs {
    p_true: PredReg,
    p_false: PredReg,
    tmp_a: PredReg,
    tmp_b: PredReg,
    /// Extra temp for the hybrid (range && mask) membership.
    tmp_c: PredReg,
    guards: Vec<PredReg>,
    /// Integer temp for periodic masking.
    masked: IntReg,
}

/// Split a single site.  Returns its remap contribution.
fn split_one(
    f: &mut Function,
    spec: &SplitSpec,
    counter: IntReg,
    regs: &SplitRegs,
    min_segment_frac: f64,
    max_likelies: usize,
    stats: &mut SplitStats,
) -> Result<Remap, SplitError> {
    let mut remap = Remap::new();
    let b = spec.block;

    // The branch being split.
    let branch = match f.block(b).terminator() {
        Some(t) if matches!(t.op, Opcode::Branch { likely: false, .. }) && t.guard.is_none() => {
            t.clone()
        }
        _ => return Err(SplitError::NotABranch),
    };
    let (cond, orig_taken_target) = match branch.op {
        Opcode::Branch { cond, target, .. } => (cond, target),
        _ => unreachable!(),
    };

    // Predicate setup, all computed in block `b` before the first likely.
    let mut setup: Vec<Instruction> = Vec::new();

    // p_true <=> branch taken.
    let p_true: PredReg = match cond {
        BranchCond::PredT(q) => q,
        BranchCond::PredF(q) => {
            setup.push(Instruction::new(Opcode::PNot {
                dst: regs.p_true,
                src: q,
            }));
            regs.p_true
        }
        other => {
            let (sc, a, rhs) = other.as_compare().expect("compare branch");
            setup.push(Instruction::new(match rhs {
                Some(rb) => Opcode::SetP {
                    cond: sc,
                    dst: regs.p_true,
                    a,
                    b: rb,
                },
                None => Opcode::SetPImm {
                    cond: sc,
                    dst: regs.p_true,
                    a,
                    imm: 0,
                },
            }));
            regs.p_true
        }
    };
    // p_false, materialized lazily for not-taken-biased phases.
    let mut p_false: Option<PredReg> = None;
    let mut get_p_false = |setup: &mut Vec<Instruction>| -> PredReg {
        if let Some(pf) = p_false {
            return pf;
        }
        setup.push(Instruction::new(Opcode::PNot {
            dst: regs.p_false,
            src: p_true,
        }));
        p_false = Some(regs.p_false);
        regs.p_false
    };

    // Shared temporaries for phase membership.
    let (tmp_a, tmp_b, tmp_c) = (regs.tmp_a, regs.tmp_b, regs.tmp_c);
    let mut next_guard = 0usize;

    let mut likelies: Vec<PlannedLikely> = Vec::new();

    // Emit the range-membership predicate for `seg` into `dst`
    // (counter is the 0-based iteration index): [s, e) <=> s <= i < e.
    let emit_range = |setup: &mut Vec<Instruction>,
                      seg: &Segment,
                      total: usize,
                      dst: PredReg,
                      scratch: PredReg| {
        if seg.start == 0 {
            setup.push(Instruction::new(Opcode::SetPImm {
                cond: SetCond::Lt,
                dst,
                a: counter,
                imm: seg.end as i64,
            }));
        } else if seg.end >= total {
            setup.push(Instruction::new(Opcode::SetPImm {
                cond: SetCond::Ge,
                dst,
                a: counter,
                imm: seg.start as i64,
            }));
        } else {
            setup.push(Instruction::new(Opcode::SetPImm {
                cond: SetCond::Ge,
                dst,
                a: counter,
                imm: seg.start as i64,
            }));
            setup.push(Instruction::new(Opcode::SetPImm {
                cond: SetCond::Lt,
                dst: scratch,
                a: counter,
                imm: seg.end as i64,
            }));
            setup.push(Instruction::new(Opcode::PLogic {
                kind: PLogicKind::And,
                dst,
                a: dst,
                b: scratch,
            }));
        }
    };
    // Emit `masked = counter & (p-1)` — the algebraic counter.
    let emit_mask = |setup: &mut Vec<Instruction>, p: usize| {
        setup.push(Instruction::new(Opcode::AluImm {
            kind: AluKind::And,
            dst: regs.masked,
            a: counter,
            imm: (p - 1) as i64,
        }));
    };

    match &spec.plan {
        SplitPlan::Phased { segments } => {
            let total: usize = segments.iter().map(|s| s.len()).sum();
            let mut biased: Vec<&Segment> = segments
                .iter()
                .filter(|s| s.class != SegmentClass::Mixed && s.frac_of(total) >= min_segment_frac)
                .collect();
            biased.sort_by_key(|s| std::cmp::Reverse(s.len()));
            biased.truncate(max_likelies);
            biased.sort_by_key(|s| s.start);
            if biased.is_empty() {
                return Err(SplitError::NoBiasedSegment);
            }
            for seg in &biased {
                emit_range(&mut setup, seg, total, tmp_a, tmp_b);
                let taken_dir = seg.class == SegmentClass::Taken;
                let dir_pred = if taken_dir {
                    p_true
                } else {
                    get_p_false(&mut setup)
                };
                let g = *regs.guards.get(next_guard).ok_or(SplitError::NoPredReg)?;
                next_guard += 1;
                setup.push(Instruction::new(Opcode::PLogic {
                    kind: PLogicKind::And,
                    dst: g,
                    a: dir_pred,
                    b: tmp_a,
                }));
                likelies.push(PlannedLikely {
                    guard: g,
                    taken_dir,
                });
            }
        }
        SplitPlan::Periodic { period, pattern } => {
            let p = *period;
            if !p.is_power_of_two() || p > 8 || pattern.len() != p {
                return Err(SplitError::UnsupportedPeriod);
            }
            emit_mask(&mut setup, p);
            // Likelies cover only the TAKEN positions.  Not-taken positions
            // fall through to the residual branch, which then sees an
            // almost-constant not-taken stream the 2-bit counter nails —
            // and the instrumentation stays half as large.
            for (k, &tk) in pattern.iter().enumerate() {
                if !tk || likelies.len() >= max_likelies.max(1) {
                    continue;
                }
                setup.push(Instruction::new(Opcode::SetPImm {
                    cond: SetCond::Eq,
                    dst: tmp_a,
                    a: regs.masked,
                    imm: k as i64,
                }));
                let g = *regs.guards.get(next_guard).ok_or(SplitError::NoPredReg)?;
                next_guard += 1;
                setup.push(Instruction::new(Opcode::PLogic {
                    kind: PLogicKind::And,
                    dst: g,
                    a: p_true,
                    b: tmp_a,
                }));
                likelies.push(PlannedLikely {
                    guard: g,
                    taken_dir: true,
                });
            }
            if likelies.is_empty() {
                return Err(SplitError::NoBiasedSegment);
            }
        }
        SplitPlan::Hybrid { segments } => {
            let total: usize = segments.iter().map(|(s, _)| s.len()).sum();
            // The guards below always include the true branch condition, so
            // firing outside the intended phase is *correct* (the branch
            // would have been taken anyway) — the range predicate is purely
            // an optimization.  With a single periodic alignment it can be
            // dropped entirely, halving the instrumentation.
            let periodic_count = segments.iter().filter(|(_, p)| p.is_some()).count();
            let need_range = periodic_count > 1;
            let mut mask_emitted: Option<usize> = None;
            for (seg, periodic) in segments {
                if likelies.len() >= max_likelies.max(1) {
                    break;
                }
                match (seg.class, periodic) {
                    (SegmentClass::Mixed, Some((p, pattern))) => {
                        if !p.is_power_of_two() || *p > 8 || pattern.len() != *p {
                            return Err(SplitError::UnsupportedPeriod);
                        }
                        if need_range {
                            emit_range(&mut setup, seg, total, tmp_c, tmp_b);
                        }
                        if mask_emitted != Some(*p) {
                            emit_mask(&mut setup, *p);
                            mask_emitted = Some(*p);
                        }
                        // The pattern indexes iterations *within* the
                        // segment: align to the segment start.  Taken
                        // positions only — not-taken positions fall through
                        // to the residual, which then sees a near-constant
                        // stream the 2-bit counter handles.
                        for (k, &tk) in pattern.iter().enumerate() {
                            if !tk || likelies.len() >= max_likelies.max(1) {
                                continue;
                            }
                            let k_abs = (seg.start + k) & (p - 1);
                            setup.push(Instruction::new(Opcode::SetPImm {
                                cond: SetCond::Eq,
                                dst: tmp_a,
                                a: regs.masked,
                                imm: k_abs as i64,
                            }));
                            let g = *regs.guards.get(next_guard).ok_or(SplitError::NoPredReg)?;
                            next_guard += 1;
                            setup.push(Instruction::new(Opcode::PLogic {
                                kind: PLogicKind::And,
                                dst: g,
                                a: p_true,
                                b: tmp_a,
                            }));
                            if need_range {
                                setup.push(Instruction::new(Opcode::PLogic {
                                    kind: PLogicKind::And,
                                    dst: g,
                                    a: g,
                                    b: tmp_c,
                                }));
                            }
                            likelies.push(PlannedLikely {
                                guard: g,
                                taken_dir: true,
                            });
                        }
                    }
                    // Mixed-without-pattern and not-taken-biased segments
                    // are left to the 2-bit residual (a biased segment is
                    // exactly what a 2-bit counter predicts well).
                    (SegmentClass::Mixed, None) | (SegmentClass::NotTaken, _) => {}
                    (SegmentClass::Taken, _) => {
                        if seg.frac_of(total) < min_segment_frac {
                            continue;
                        }
                        emit_range(&mut setup, seg, total, tmp_a, tmp_b);
                        let g = *regs.guards.get(next_guard).ok_or(SplitError::NoPredReg)?;
                        next_guard += 1;
                        setup.push(Instruction::new(Opcode::PLogic {
                            kind: PLogicKind::And,
                            dst: g,
                            a: p_true,
                            b: tmp_a,
                        }));
                        likelies.push(PlannedLikely {
                            guard: g,
                            taken_dir: true,
                        });
                    }
                }
            }
            if likelies.is_empty() {
                return Err(SplitError::NoBiasedSegment);
            }
        }
    }

    // Insert the continuation blocks after `b`: one per likely beyond the
    // first, plus one for the residual branch.
    let n_conts = likelies.len();
    for k in 0..n_conts {
        let label = f.fresh_label("split");
        insert_block_before(f, BlockId(b.0 + 1 + k as u32), label);
        remap.block_insert(BlockId(b.0 + 1 + k as u32));
    }
    // After insertion the original fall-through block sits past the chain;
    // the taken target may also have shifted.
    let fall_target = BlockId(b.0 + 1 + n_conts as u32);
    let taken_target = if orig_taken_target.0 > b.0 {
        BlockId(orig_taken_target.0 + n_conts as u32)
    } else {
        orig_taken_target
    };

    stats.instrumentation_ops += setup.len();
    stats.likelies += likelies.len();
    stats.sites += 1;

    // Rebuild block b and the continuation chain.
    let mk_likely = |pl: &PlannedLikely| {
        let target = if pl.taken_dir {
            taken_target
        } else {
            fall_target
        };
        Instruction::guarded(
            Opcode::Branch {
                cond: BranchCond::PredT(pl.guard),
                target,
                likely: true,
            },
            Guard::if_true(pl.guard),
        )
    };
    {
        let first = mk_likely(&likelies[0]);
        let blk = f.block_mut(b);
        blk.insns.pop(); // the original branch (re-emitted as the residual)
        blk.insns.extend(setup);
        blk.insns.push(first);
    }
    for (k, pl) in likelies.iter().enumerate().skip(1) {
        let insn = mk_likely(pl);
        let cont = BlockId(b.0 + k as u32);
        f.block_mut(cont).insns.push(insn);
    }
    // Residual: the original branch, verbatim, in the last continuation.
    let residual = BlockId(b.0 + n_conts as u32);
    f.block_mut(residual)
        .insns
        .push(Instruction::new(Opcode::Branch {
            cond,
            target: taken_target,
            likely: false,
        }));

    Ok(remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{classify, BranchBehavior, FeedbackParams};
    use guardspec_analysis::{Cfg, DomTree, LoopForest};
    use guardspec_interp::profile::profile_program;
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;
    use guardspec_ir::{FuncId, Program};

    /// A 100-iteration loop whose forward branch is taken for the first 40
    /// iterations, toggles for 20, then is not taken for the last 40 —
    /// the Section 4 running example.
    fn phased_program() -> Program {
        let mut fb = FuncBuilder::new("phased");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 100);
        fb.block("head");
        fb.slti(r(2), r(1), 40);
        fb.bne(r(2), r(0), "TK");
        fb.block("mid");
        fb.slti(r(3), r(1), 60);
        fb.beq(r(3), r(0), "NT");
        fb.block("toggle");
        fb.andi(r(4), r(1), 1);
        fb.beq(r(4), r(0), "NT");
        fb.block("TK");
        fb.addi(r(5), r(5), 1);
        fb.jump("latch");
        fb.block("NT");
        fb.addi(r(6), r(6), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.halt();
        single_func_program(fb)
    }

    /// A single-branch phased loop matching the Figure 7 shape.
    fn figure7_program() -> Program {
        let mut fb = FuncBuilder::new("fig7");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 100);
        fb.block("head");
        fb.slti(r(2), r(1), 40);
        fb.bne(r(2), r(0), "B3");
        fb.block("B2");
        fb.addi(r(6), r(6), 1);
        fb.jump("B4");
        fb.block("B3");
        fb.addi(r(5), r(5), 1);
        fb.block("B4");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.halt();
        single_func_program(fb)
    }

    /// Alternating branch (TFTF…) — 2-bit prediction's pathological case,
    /// instrumentable with the `(i & 1) == k` algebraic counter.
    fn alternating_program() -> Program {
        let mut fb = FuncBuilder::new("alt");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 200);
        fb.block("head");
        fb.andi(r(2), r(1), 1);
        fb.bne(r(2), r(0), "ODD");
        fb.block("EVEN");
        fb.addi(r(6), r(6), 1);
        fb.jump("latch");
        fb.block("ODD");
        fb.addi(r(5), r(5), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.halt();
        single_func_program(fb)
    }

    fn plan_for(prog: &Program, branch_block_label: &str) -> SplitPlan {
        let (profile, _) = profile_program(prog).expect("profile");
        let f = prog.func(FuncId(0));
        let bb = f.block_by_label(branch_block_label).unwrap();
        let idx = f.block(bb).insns.len() as u32 - 1;
        let site = guardspec_ir::InsnRef {
            func: FuncId(0),
            block: bb,
            idx,
        };
        let bp = profile.branch(site).expect("branch profiled");
        let params = FeedbackParams {
            seg_window: 10,
            ..FeedbackParams::default()
        };
        match classify(&bp.outcomes, &params) {
            BranchBehavior::Phased { segments } => SplitPlan::Phased { segments },
            BranchBehavior::Periodic { period, pattern } => SplitPlan::Periodic { period, pattern },
            other => panic!("expected splittable behavior, got {other:?}"),
        }
    }

    fn split_it(prog: &mut Program, branch_block_label: &str) -> SplitStats {
        let plan = plan_for(prog, branch_block_label);
        let f = prog.func(FuncId(0));
        let bb = f.block_by_label(branch_block_label).unwrap();
        let cfg = Cfg::build(f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        let l = &forest.loops[0];
        let (header, body) = (l.header, l.body.clone());
        let f = prog.func_mut(FuncId(0));
        let mut pool = RenamePool::for_function(f);
        let specs = vec![SplitSpec { block: bb, plan }];
        let (stats, _remap) =
            split_branches(f, header, &body, &specs, &mut pool, 0.15, 4).expect("split");
        stats
    }

    #[test]
    fn figure7_split_preserves_semantics() {
        let base = figure7_program();
        let mut split = base.clone();
        let stats = split_it(&mut split, "head");
        assert_valid(&split);
        assert_eq!(stats.sites, 1);
        assert!(stats.likelies >= 1);
        let rb = run(&base).expect("base");
        let rs = run(&split).expect("split");
        assert_eq!(rb.machine.mem[1], rs.machine.mem[1]);
        assert_eq!(rb.machine.mem[2], rs.machine.mem[2]);
    }

    #[test]
    fn figure7_split_emits_predicated_likelies_and_residual() {
        let mut prog = figure7_program();
        split_it(&mut prog, "head");
        let f = prog.func(FuncId(0));
        let likelies: Vec<&Instruction> = f
            .blocks
            .iter()
            .flat_map(|b| b.insns.iter())
            .filter(|i| i.is_branch_likely())
            .collect();
        assert!(!likelies.is_empty());
        // Every likely is predicated (guarded) per the Figure 7 form.
        assert!(likelies.iter().all(|i| i.guard.is_some()));
        let residuals = f
            .blocks
            .iter()
            .flat_map(|b| b.insns.iter())
            .filter(|i| i.is_cond_branch() && !i.is_branch_likely())
            .count();
        assert!(residuals >= 1);
    }

    #[test]
    fn phased_three_way_program_splits_and_preserves_semantics() {
        let base = phased_program();
        let mut split = base.clone();
        let stats = split_it(&mut split, "head");
        assert_valid(&split);
        assert!(
            stats.likelies >= 2,
            "both biased phases get a likely: {stats:?}"
        );
        let rb = run(&base).expect("base");
        let rs = run(&split).expect("split");
        assert_eq!(rb.machine.mem[1], rs.machine.mem[1]);
        assert_eq!(rb.machine.mem[2], rs.machine.mem[2]);
        assert_eq!(rb.machine.mem_checksum(), rs.machine.mem_checksum());
    }

    #[test]
    fn alternating_branch_gets_periodic_split() {
        let base = alternating_program();
        let mut split = base.clone();
        let stats = split_it(&mut split, "head");
        assert_valid(&split);
        assert!(stats.likelies >= 1);
        let rb = run(&base).expect("base");
        let rs = run(&split).expect("split");
        assert_eq!(rb.machine.mem[1], rs.machine.mem[1]);
        assert_eq!(rb.machine.mem[2], rs.machine.mem[2]);
    }

    #[test]
    fn periodic_split_slashes_mispredictions() {
        use guardspec_predict::Scheme;
        use guardspec_sim::{simulate_program, MachineConfig};
        let base = alternating_program();
        let mut split = base.clone();
        split_it(&mut split, "head");
        let cfg = MachineConfig::r10000();
        let (sb, _) = simulate_program(&base, Scheme::TwoBit, &cfg).expect("sim base");
        let (ss, _) = simulate_program(&split, Scheme::Proposed, &cfg).expect("sim split");
        // The alternating branch mispredicts ~ half the time under 2-bit;
        // the algebraic-counter split removes nearly all of those.
        assert!(sb.mispredicts > 80, "base mispredicts {}", sb.mispredicts);
        assert!(
            ss.mispredicts * 4 < sb.mispredicts,
            "split {} vs base {}",
            ss.mispredicts,
            sb.mispredicts
        );
        assert!(
            ss.ipc() > sb.ipc(),
            "split ipc {} <= base ipc {}",
            ss.ipc(),
            sb.ipc()
        );
    }

    #[test]
    fn split_reduces_mispredictions_in_simulation() {
        use guardspec_predict::Scheme;
        use guardspec_sim::{simulate_program, MachineConfig};
        let base = figure7_program();
        let mut split = base.clone();
        split_it(&mut split, "head");
        let cfg = MachineConfig::r10000();
        let (sb, _) = simulate_program(&base, Scheme::TwoBit, &cfg).expect("sim base");
        let (ss, _) = simulate_program(&split, Scheme::Proposed, &cfg).expect("sim split");
        assert!(
            ss.mispredicts <= sb.mispredicts,
            "split {} > base {}",
            ss.mispredicts,
            sb.mispredicts
        );
    }

    #[test]
    fn counter_initialized_in_preheader() {
        let mut prog = figure7_program();
        split_it(&mut prog, "head");
        let f = prog.func(FuncId(0));
        let pre = f.block_by_label("preheader0");
        assert!(pre.is_some(), "preheader created");
        let pre = pre.unwrap();
        assert!(matches!(
            f.block(pre).insns[0].op,
            Opcode::Li { imm: -1, .. }
        ));
    }

    #[test]
    fn unbiased_profile_refuses_split() {
        let mut prog = figure7_program();
        let f = prog.func_mut(FuncId(0));
        let bb = f.block_by_label("head").unwrap();
        let mut pool = RenamePool::for_function(f);
        let segs = vec![Segment {
            start: 0,
            end: 100,
            class: SegmentClass::Mixed,
            rate: 0.5,
        }];
        let specs = vec![SplitSpec {
            block: bb,
            plan: SplitPlan::Phased { segments: segs },
        }];
        let err =
            split_branches(f, BlockId(1), &[BlockId(1)], &specs, &mut pool, 0.15, 2).unwrap_err();
        assert_eq!(err, SplitError::NoBiasedSegment);
    }

    #[test]
    fn non_power_of_two_period_refused() {
        let mut prog = figure7_program();
        let f = prog.func_mut(FuncId(0));
        let bb = f.block_by_label("head").unwrap();
        let mut pool = RenamePool::for_function(f);
        let specs = vec![SplitSpec {
            block: bb,
            plan: SplitPlan::Periodic {
                period: 3,
                pattern: vec![true, false, false],
            },
        }];
        let err =
            split_branches(f, BlockId(1), &[BlockId(1)], &specs, &mut pool, 0.15, 2).unwrap_err();
        assert_eq!(err, SplitError::UnsupportedPeriod);
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use crate::feedback::{segment_periodicity, FeedbackParams, SegmentClass};
    use guardspec_analysis::{Cfg, DomTree, LoopForest};
    use guardspec_interp::profile::profile_program;
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;
    use guardspec_ir::{FuncId, Program};

    /// Branch not taken for the first 120 iterations, then alternating for
    /// 120: the hybrid (phased + per-segment periodic) case.
    fn phase_then_alternate() -> Program {
        let mut fb = FuncBuilder::new("hyb");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 240);
        fb.block("head");
        fb.slti(r(2), r(1), 120);
        fb.bne(r(2), r(0), "quiet"); // quiet phase: branch to skip work
        fb.block("noisy_sel");
        fb.andi(r(3), r(1), 1);
        fb.beq(r(3), r(0), "quiet");
        fb.block("work");
        fb.addi(r(5), r(5), 1);
        fb.jump("latch");
        fb.block("quiet");
        fb.addi(r(6), r(6), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.halt();
        single_func_program(fb)
    }

    #[test]
    fn hybrid_plan_builds_and_preserves_semantics() {
        let base = phase_then_alternate();
        let (profile, _) = profile_program(&base).expect("profile");
        let f = base.func(FuncId(0));
        // The `noisy_sel` branch alternates only in the second phase; the
        // whole-vector view is Phased with a Mixed segment.
        let bb = f.block_by_label("noisy_sel").unwrap();
        let site = guardspec_ir::InsnRef {
            func: FuncId(0),
            block: bb,
            idx: f.block(bb).insns.len() as u32 - 1,
        };
        let bp = profile.branch(site).expect("profiled");
        let params = FeedbackParams::default();
        let segs = crate::feedback::segment(&bp.outcomes, &params);
        let hybrid: Vec<HybridSegment> = segs
            .iter()
            .map(|s| {
                let per = (s.class == SegmentClass::Mixed)
                    .then(|| segment_periodicity(&bp.outcomes, s, &params))
                    .flatten();
                (*s, per)
            })
            .collect();
        assert!(
            hybrid.iter().any(|(_, p)| p.is_some()),
            "a periodic Mixed segment must be detected: {hybrid:?}"
        );

        let mut split = base.clone();
        {
            let f0 = split.func(FuncId(0));
            let cfg = Cfg::build(f0);
            let dom = DomTree::dominators(&cfg);
            let forest = LoopForest::build(f0, &cfg, &dom);
            let l = &forest.loops[0];
            let (header, body) = (l.header, l.body.clone());
            let f = split.func_mut(FuncId(0));
            let mut pool = RenamePool::for_function(f);
            let specs = vec![SplitSpec {
                block: bb,
                plan: SplitPlan::Hybrid { segments: hybrid },
            }];
            let (stats, _) =
                split_branches(f, header, &body, &specs, &mut pool, 0.15, 4).expect("split");
            assert!(stats.likelies >= 1);
        }
        assert_valid(&split);
        let rb = run(&base).expect("base");
        let rs = run(&split).expect("split");
        assert_eq!(rb.machine.mem[1], rs.machine.mem[1]);
        assert_eq!(rb.machine.mem[2], rs.machine.mem[2]);
    }

    #[test]
    fn hybrid_split_cuts_mispredicts_in_sim() {
        use guardspec_predict::Scheme;
        use guardspec_sim::{simulate_program, MachineConfig};
        let base = phase_then_alternate();
        let (profile, _) = profile_program(&base).expect("profile");
        let mut tuned = base.clone();
        let report = crate::driver::transform_program(
            &mut tuned,
            &profile,
            &crate::driver::DriverOptions::proposed(),
        );
        assert!(report.splits >= 1, "{:?}", report.decisions);
        let cfg = MachineConfig::r10000();
        let (sb, _) = simulate_program(&base, Scheme::TwoBit, &cfg).expect("sim");
        let (ss, _) = simulate_program(&tuned, Scheme::Proposed, &cfg).expect("sim");
        assert!(
            ss.mispredicts * 2 < sb.mispredicts,
            "split {} vs base {}",
            ss.mispredicts,
            sb.mispredicts
        );
    }
}
