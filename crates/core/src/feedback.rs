//! Feedback heuristics — Section 4/5 of the paper.
//!
//! The conventional approach reduces a branch to a single taken-frequency
//! number.  The paper's observation: a branch with 50-50 average behavior
//! may actually be `TTTT…FFFF…` — two perfectly predictable *monotonic*
//! phases.  This module turns an outcome bit vector into:
//!
//! * the **taken rate** and **toggle factor** (fraction of adjacent
//!   outcome flips),
//! * a **segmentation** of the iteration space into maximal runs that are
//!   taken-biased, not-taken-biased, or mixed,
//! * a **periodicity** detector for patterns like `TTFF TTFF…` expressible
//!   with "simple algebraic (or arithmetic) correlations … using unique
//!   counters",
//! * the overall [`BranchBehavior`] classification the Figure-6 driver
//!   dispatches on.

use guardspec_interp::BitVec;

/// Tunable thresholds (paper values as defaults).
#[derive(Clone, Copy, Debug)]
pub struct FeedbackParams {
    /// Taken (or not-taken) rate at or above which a branch is "highly
    /// probable" and gets a branch-likely (Figure 6 uses 0.95).
    pub likely_threshold: f64,
    /// Rate at or above which a monotonic branch is an if-conversion
    /// candidate (Figure 6 uses 0.65).
    pub convert_threshold: f64,
    /// Toggle factor at or below which a branch counts as monotonic.
    pub monotonic_toggle_max: f64,
    /// Window size for segmentation.
    pub seg_window: usize,
    /// Bias needed within a window to call it taken/not-taken.
    pub seg_bias: f64,
    /// Maximum number of segments for a branch to be instrumentable with
    /// simple counters.
    pub max_segments: usize,
    /// Minimum fraction of iterations a biased segment must cover to be
    /// worth a split.
    pub min_segment_frac: f64,
    /// Maximum period length searched by the periodicity detector.
    pub max_period: usize,
    /// Fraction of positions that must agree with the periodic pattern.
    pub period_agreement: f64,
}

impl Default for FeedbackParams {
    fn default() -> FeedbackParams {
        FeedbackParams {
            likely_threshold: 0.95,
            convert_threshold: 0.65,
            monotonic_toggle_max: 0.20,
            seg_window: 16,
            seg_bias: 0.90,
            max_segments: 4,
            min_segment_frac: 0.15,
            max_period: 8,
            period_agreement: 0.95,
        }
    }
}

/// Classification of one contiguous run of iterations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentClass {
    Taken,
    NotTaken,
    Mixed,
}

/// A contiguous run `[start, end)` of the iteration space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub start: usize,
    pub end: usize,
    pub class: SegmentClass,
    /// Taken rate within the segment.
    pub rate: f64,
}

impl Segment {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    pub fn frac_of(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.len() as f64 / total as f64
        }
    }
}

/// Overall behavior of a branch, dispatched on by the Figure-6 driver.
#[derive(Clone, Debug, PartialEq)]
pub enum BranchBehavior {
    /// Taken rate ≥ likely threshold: convert to branch-likely.
    HighlyTaken { rate: f64 },
    /// Not-taken rate ≥ likely threshold (nothing to do dynamically; the
    /// 2-bit predictor handles it, but guarded execution may still pay).
    HighlyNotTaken { rate: f64 },
    /// Low toggle factor and biased beyond the convert threshold:
    /// if-conversion candidate (after the cost comparison).
    Monotonic { rate: f64, toggle: f64 },
    /// Distinct biased phases — the paper's split-branch case.
    Phased { segments: Vec<Segment> },
    /// Short repeating pattern expressible with an algebraic counter.
    Periodic { period: usize, pattern: Vec<bool> },
    /// No structure the instrumentation can exploit.
    Irregular { rate: f64, toggle: f64 },
}

impl BranchBehavior {
    /// Compact deterministic description for the decision log.  Phased
    /// behaviors spell out the monotonic-segment split (`start-end:class`
    /// per segment, classes `T`/`N`/`M`); periodic behaviors show the
    /// period and pattern.
    pub fn tag(&self) -> String {
        use std::fmt::Write;
        match self {
            BranchBehavior::HighlyTaken { rate } => format!("highly-taken(rate={rate:.4})"),
            BranchBehavior::HighlyNotTaken { rate } => {
                format!("highly-not-taken(rate={rate:.4})")
            }
            BranchBehavior::Monotonic { rate, toggle } => {
                format!("monotonic(rate={rate:.4},toggle={toggle:.4})")
            }
            BranchBehavior::Phased { segments } => {
                let mut s = String::from("phased[");
                for (i, seg) in segments.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let c = match seg.class {
                        SegmentClass::Taken => 'T',
                        SegmentClass::NotTaken => 'N',
                        SegmentClass::Mixed => 'M',
                    };
                    let _ = write!(s, "{}-{}:{}", seg.start, seg.end, c);
                }
                s.push(']');
                s
            }
            BranchBehavior::Periodic { period, pattern } => {
                let pat: String = pattern.iter().map(|&t| if t { 'T' } else { 'F' }).collect();
                format!("periodic(period={period},pattern={pat})")
            }
            BranchBehavior::Irregular { rate, toggle } => {
                format!("irregular(rate={rate:.4},toggle={toggle:.4})")
            }
        }
    }
}

/// Taken rate of a bit vector.
pub fn taken_rate(v: &BitVec) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.count_ones() as f64 / v.len() as f64
    }
}

/// Toggle factor: fraction of adjacent pairs whose outcome differs.
/// `TTTT…` → 0.0, `TFTF…` → 1.0.
pub fn toggle_factor(v: &BitVec) -> f64 {
    if v.len() < 2 {
        0.0
    } else {
        v.toggles() as f64 / (v.len() - 1) as f64
    }
}

/// Segment the iteration space: windows of `params.seg_window` outcomes are
/// classified by bias, then adjacent same-class windows merge.  The final
/// partial window merges into its predecessor.
pub fn segment(v: &BitVec, params: &FeedbackParams) -> Vec<Segment> {
    let n = v.len();
    if n == 0 {
        return Vec::new();
    }
    let w = params.seg_window.max(1);
    let mut segs: Vec<Segment> = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + w).min(n);
        let ones = v.count_ones_in(start, end);
        let len = end - start;
        let rate = ones as f64 / len as f64;
        let class = if rate >= params.seg_bias {
            SegmentClass::Taken
        } else if rate <= 1.0 - params.seg_bias {
            SegmentClass::NotTaken
        } else {
            SegmentClass::Mixed
        };
        // Runt final window: merge into the previous segment.
        let runt = len < w && !segs.is_empty();
        match segs.last_mut() {
            Some(last) if last.class == class || runt => {
                let total_ones = ((last.rate * last.len() as f64).round() as usize) + ones;
                last.end = end;
                last.rate = total_ones as f64 / last.len() as f64;
                if runt && last.class != class {
                    // Re-derive the merged class from the merged rate.
                    last.class = reclass(last.rate, params);
                }
            }
            _ => segs.push(Segment {
                start,
                end,
                class,
                rate,
            }),
        }
        start = end;
    }
    coalesce(segs, n, params)
}

fn reclass(rate: f64, params: &FeedbackParams) -> SegmentClass {
    if rate >= params.seg_bias {
        SegmentClass::Taken
    } else if rate <= 1.0 - params.seg_bias {
        SegmentClass::NotTaken
    } else {
        SegmentClass::Mixed
    }
}

/// Coalesce fragmented segmentations: any segment shorter than
/// `min_segment_frac` of the iteration space is absorbed into its
/// neighbor (merging rates and re-deriving the class), repeatedly, so a
/// noisy phase collapses into one Mixed segment instead of dozens of
/// alternating slivers.
fn coalesce(mut segs: Vec<Segment>, total: usize, params: &FeedbackParams) -> Vec<Segment> {
    if total == 0 {
        return segs;
    }
    loop {
        if segs.len() <= 1 {
            return segs;
        }
        // Find the smallest too-small segment (or any adjacent same-class
        // pair produced by earlier merges).
        let mut victim: Option<usize> = None;
        for (i, s) in segs.iter().enumerate() {
            if s.frac_of(total) < params.min_segment_frac
                && victim.map(|v| segs[v].len() > s.len()).unwrap_or(true)
            {
                victim = Some(i);
            }
        }
        let mut merged_any = false;
        if let Some(i) = victim {
            // Merge into the shorter neighbor (less bias dilution).
            let j = if i == 0 {
                1
            } else if i + 1 == segs.len() || segs[i - 1].len() <= segs[i + 1].len() {
                i - 1
            } else {
                i + 1
            };
            let (a, b) = (i.min(j), i.max(j));
            let ones = (segs[a].rate * segs[a].len() as f64).round()
                + (segs[b].rate * segs[b].len() as f64).round();
            let merged = Segment {
                start: segs[a].start,
                end: segs[b].end,
                rate: ones / (segs[b].end - segs[a].start) as f64,
                class: SegmentClass::Mixed, // refined below
            };
            segs[a] = Segment {
                class: reclass(merged.rate, params),
                ..merged
            };
            segs.remove(b);
            merged_any = true;
        }
        // Fuse adjacent same-class segments.
        let mut k = 0;
        while k + 1 < segs.len() {
            if segs[k].class == segs[k + 1].class {
                let ones = (segs[k].rate * segs[k].len() as f64).round()
                    + (segs[k + 1].rate * segs[k + 1].len() as f64).round();
                segs[k].end = segs[k + 1].end;
                segs[k].rate = ones / segs[k].len() as f64;
                segs.remove(k + 1);
                merged_any = true;
            } else {
                k += 1;
            }
        }
        if !merged_any {
            return segs;
        }
    }
}

/// Detect a short repeating pattern: the smallest `p <= max_period` whose
/// majority-vote pattern (per residue class mod `p`) matches at least
/// `period_agreement` of positions.  Majority voting makes the detector
/// robust to a few noise positions or phase-boundary junk at the front of
/// the vector.  Constant vectors (p = 1 patterns) are excluded — they are
/// monotonic, not periodic.
pub fn detect_period(v: &BitVec, params: &FeedbackParams) -> Option<(usize, Vec<bool>)> {
    let n = v.len();
    if n < 8 {
        return None;
    }
    for p in 2..=params.max_period.min(n / 2) {
        let mut ones = vec![0usize; p];
        let mut count = vec![0usize; p];
        for i in 0..n {
            ones[i % p] += v.get(i) as usize;
            count[i % p] += 1;
        }
        let pattern: Vec<bool> = (0..p).map(|r| 2 * ones[r] >= count[r]).collect();
        let agree = (0..n).filter(|&i| v.get(i) == pattern[i % p]).count();
        if agree as f64 / n as f64 >= params.period_agreement {
            // Reject patterns that are actually constant (monotonic).
            if pattern.iter().any(|&b| b != pattern[0]) {
                return Some((p, pattern));
            }
        }
    }
    None
}

/// The paper's flagged extension ("the algorithm can be extended to handle
/// more complex correlations"): check one segment's sub-vector for a
/// repeating pattern the algebraic counter can express.  Only meaningful
/// for Mixed segments of a phased branch — a biased segment already has a
/// cheaper plan.
pub fn segment_periodicity(
    v: &BitVec,
    seg: &Segment,
    params: &FeedbackParams,
) -> Option<(usize, Vec<bool>)> {
    if seg.len() < 16 {
        return None;
    }
    let sub = v.slice(seg.start, seg.end);
    detect_period(&sub, params).filter(|(p, _)| p.is_power_of_two() && *p <= 8)
}

/// Is the branch "instrumentable" (Figure 6): its phase boundaries are
/// simple enough to regenerate with algebraic counters — few segments, with
/// at least one usefully-large biased segment.
pub fn instrumentable(segments: &[Segment], total: usize, params: &FeedbackParams) -> bool {
    if segments.len() < 2 || segments.len() > params.max_segments {
        return false;
    }
    segments
        .iter()
        .any(|s| s.class != SegmentClass::Mixed && s.frac_of(total) >= params.min_segment_frac)
}

/// Full classification — the predicate structure of the Figure-6 algorithm.
///
/// ```
/// use guardspec_core::{classify, BranchBehavior, FeedbackParams};
/// use guardspec_interp::BitVec;
/// let params = FeedbackParams::default();
/// let alternating = BitVec::from_pattern(&"TF".repeat(50));
/// assert!(matches!(classify(&alternating, &params),
///                  BranchBehavior::Periodic { period: 2, .. }));
/// let hot = BitVec::from_pattern(&"T".repeat(100));
/// assert!(matches!(classify(&hot, &params), BranchBehavior::HighlyTaken { .. }));
/// ```
pub fn classify(v: &BitVec, params: &FeedbackParams) -> BranchBehavior {
    let rate = taken_rate(v);
    let toggle = toggle_factor(v);
    if rate >= params.likely_threshold {
        return BranchBehavior::HighlyTaken { rate };
    }
    if 1.0 - rate >= params.likely_threshold {
        return BranchBehavior::HighlyNotTaken { rate };
    }
    let monotonic = toggle <= params.monotonic_toggle_max;
    if monotonic && (rate >= params.convert_threshold || 1.0 - rate >= params.convert_threshold) {
        // Still check for phase structure: a monotonic-looking branch with
        // two huge opposite phases is better split than averaged.
        let segs = segment(v, params);
        if instrumentable(&segs, v.len(), params)
            && segs
                .iter()
                .filter(|s| s.class != SegmentClass::Mixed)
                .count()
                >= 2
            && segs.iter().any(|s| {
                s.class == SegmentClass::Taken && s.frac_of(v.len()) >= params.min_segment_frac
            })
            && segs.iter().any(|s| {
                s.class == SegmentClass::NotTaken && s.frac_of(v.len()) >= params.min_segment_frac
            })
        {
            return BranchBehavior::Phased { segments: segs };
        }
        return BranchBehavior::Monotonic { rate, toggle };
    }
    if let Some((period, pattern)) = detect_period(v, params) {
        return BranchBehavior::Periodic { period, pattern };
    }
    let segs = segment(v, params);
    if instrumentable(&segs, v.len(), params) {
        return BranchBehavior::Phased { segments: segs };
    }
    BranchBehavior::Irregular { rate, toggle }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(pat: &str) -> BitVec {
        BitVec::from_pattern(pat)
    }

    fn repeat(unit: &str, times: usize) -> BitVec {
        BitVec::from_pattern(&unit.repeat(times))
    }

    #[test]
    fn rates_and_toggles() {
        assert_eq!(taken_rate(&bv("TTTF")), 0.75);
        assert_eq!(toggle_factor(&bv("TTTT")), 0.0);
        assert_eq!(toggle_factor(&bv("TFTF")), 1.0);
        assert_eq!(taken_rate(&BitVec::new()), 0.0);
    }

    #[test]
    fn highly_taken_classification() {
        // 97% taken.
        let v = BitVec::from_bools((0..100).map(|i| i % 33 != 0));
        match classify(&v, &FeedbackParams::default()) {
            BranchBehavior::HighlyTaken { rate } => assert!(rate > 0.95),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn highly_not_taken_classification() {
        let v = BitVec::from_bools((0..100).map(|i| i % 50 == 0));
        match classify(&v, &FeedbackParams::default()) {
            BranchBehavior::HighlyNotTaken { rate } => assert!(rate < 0.05),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn monotonic_classification() {
        // 75% taken, low toggle: runs of 15 T then 5 F repeated — toggle is
        // 2 per 20.
        let v = repeat(&("T".repeat(15) + &"F".repeat(5)), 10);
        match classify(&v, &FeedbackParams::default()) {
            BranchBehavior::Monotonic { rate, toggle } => {
                assert!((rate - 0.75).abs() < 1e-9);
                assert!(toggle < 0.11);
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn paper_phase_example_is_phased() {
        // The Section 4 running example: first 40% taken, middle 20%
        // toggling, last 40% not taken.
        let mut s = String::new();
        s.push_str(&"T".repeat(40));
        s.push_str(&"TF".repeat(10));
        s.push_str(&"F".repeat(40));
        let v = bv(&s);
        let p = FeedbackParams {
            seg_window: 10,
            ..FeedbackParams::default()
        };
        match classify(&v, &p) {
            BranchBehavior::Phased { segments } => {
                assert!(segments.len() >= 2 && segments.len() <= 4, "{segments:?}");
                assert_eq!(segments[0].class, SegmentClass::Taken);
                assert_eq!(segments.last().unwrap().class, SegmentClass::NotTaken);
                assert_eq!(segments[0].start, 0);
                assert_eq!(segments.last().unwrap().end, 100);
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn alternating_is_periodic() {
        let v = repeat("TF", 50);
        match classify(&v, &FeedbackParams::default()) {
            BranchBehavior::Periodic { period, pattern } => {
                assert_eq!(period, 2);
                assert_eq!(pattern, vec![true, false]);
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn ttff_period_four_detected_as_two() {
        // TTFF repeating: the minimal period is 4.
        let v = repeat("TTFF", 25);
        match detect_period(&v, &FeedbackParams::default()) {
            Some((4, pat)) => assert_eq!(pat, vec![true, true, false, false]),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn random_is_irregular() {
        // A de-correlated sequence: bit i = parity of a multiplicative hash.
        let v = BitVec::from_bools(
            (0u64..400).map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15) >> 33) & 1 == 1),
        );
        match classify(&v, &FeedbackParams::default()) {
            BranchBehavior::Irregular { .. } => {}
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn segmentation_merges_windows() {
        let v = repeat("T", 64);
        let segs = segment(&v, &FeedbackParams::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].class, SegmentClass::Taken);
        assert_eq!((segs[0].start, segs[0].end), (0, 64));
    }

    #[test]
    fn segmentation_handles_runt_window() {
        // 40 + 5: the runt merges into the previous segment.
        let v = repeat("T", 45);
        let p = FeedbackParams {
            seg_window: 20,
            ..FeedbackParams::default()
        };
        let segs = segment(&v, &p);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, 45);
    }

    #[test]
    fn instrumentable_rejects_many_segments() {
        let p = FeedbackParams::default();
        // Build 6 alternating biased segments.
        let v = repeat(&("T".repeat(16) + &"F".repeat(16)), 3);
        let segs = segment(&v, &p);
        assert_eq!(segs.len(), 6);
        assert!(!instrumentable(&segs, v.len(), &p));
    }

    #[test]
    fn empty_vector_is_irregular() {
        match classify(&BitVec::new(), &FeedbackParams::default()) {
            // Rate 0 means "not taken" dominates trivially; empty vectors
            // have rate 0 and 1-0 >= 0.95 so they classify HighlyNotTaken.
            BranchBehavior::HighlyNotTaken { .. } => {}
            other => panic!("got {other:?}"),
        }
    }
}
