//! Local list scheduler — produces the per-block schedule lengths the cost
//! model consumes ("the annotations on the basic blocks represent the
//! schedule lengths obtained using a local scheduler", Figure 2).

use guardspec_ir::{BasicBlock, FuClass, Instruction, Reg};

/// Machine resources visible to the scheduler: issue width and functional
/// units per class, with per-class latencies.
#[derive(Clone, Copy, Debug)]
pub struct Resources {
    pub issue_width: usize,
    /// Units per `FuClass` dense index.
    pub fu: [usize; 8],
    /// Latency per `FuClass` dense index.
    pub latency: [u64; 8],
}

impl Resources {
    /// The R10000-like resources used throughout the evaluation: 4-wide,
    /// 2 ALUs, 1 shifter, 1 load/store, 1 branch, 1 of each FP pipe,
    /// Table 2 latencies.
    pub fn r10000() -> Resources {
        let mut fu = [0usize; 8];
        let mut latency = [1u64; 8];
        for (i, c) in FuClass::ALL.iter().enumerate() {
            let (n, l) = match c {
                FuClass::Alu => (2, 1),
                FuClass::Shift => (1, 1),
                FuClass::LoadStore => (1, 2),
                FuClass::Branch => (1, 1),
                FuClass::FpAdd => (1, 3),
                FuClass::FpMul => (1, 3),
                FuClass::FpDiv => (1, 3),
                FuClass::Nop => (usize::MAX, 1),
            };
            fu[i] = n;
            latency[i] = l;
        }
        Resources {
            issue_width: 4,
            fu,
            latency,
        }
    }

    fn class_idx(c: FuClass) -> usize {
        FuClass::ALL.iter().position(|x| *x == c).unwrap()
    }
}

/// Result of scheduling one block.
#[derive(Clone, Debug)]
pub struct BlockSchedule {
    /// Cycle each instruction issues at (index-aligned with the block).
    pub issue_cycle: Vec<u64>,
    /// Total schedule length in cycles (last completion).
    pub length: u64,
    /// Vacant issue slots before the last issue cycle — room speculation
    /// can exploit ("assume that block one has four vacant slots").
    pub vacant_slots: u64,
}

/// Greedy cycle-by-cycle list scheduling with true/anti/output register
/// dependences and conservative memory ordering (loads may reorder with
/// loads; stores order with everything).
pub fn schedule_block(block: &BasicBlock, res: &Resources) -> BlockSchedule {
    let n = block.insns.len();
    let mut ready_at = vec![0u64; n]; // earliest issue cycle per dependence
                                      // Register def/use tracking: last writer completion, last reader issue.
    let mut def_done: std::collections::HashMap<Reg, u64> = Default::default();
    let mut def_issue: std::collections::HashMap<Reg, u64> = Default::default();
    let mut use_issue: std::collections::HashMap<Reg, u64> = Default::default();
    let mut last_store_done = 0u64;
    let mut last_mem_issue = 0u64;

    let lat = |i: &Instruction| res.latency[Resources::class_idx(i.fu_class())];

    // First pass: dependence-ready times assuming infinite resources
    // (refined by the resource-constrained issue below, processed in order).
    let mut issue_cycle = vec![0u64; n];
    let mut fu_busy: Vec<Vec<u64>> = vec![Vec::new(); 8]; // issue cycles used per class
    let mut slots_used: std::collections::HashMap<u64, usize> = Default::default();
    let mut length = 0u64;

    for (i, insn) in block.insns.iter().enumerate() {
        // True dependences: operand available when producer completes.
        let mut t = 0u64;
        for u in insn.uses() {
            if let Some(&d) = def_done.get(&u) {
                t = t.max(d);
            }
        }
        // Output/anti dependences (the scheduler does not rename).
        if let Some(d) = insn.def().filter(|d| !d.is_int_zero()) {
            if let Some(&r) = use_issue.get(&d) {
                t = t.max(r); // anti: can issue at the same cycle a reader issued
            }
            if let Some(&w) = def_issue.get(&d) {
                t = t.max(w + 1); // output: strictly after previous writer issues
            }
        }
        // Memory ordering: stores are barriers.
        let is_store = matches!(
            insn.op,
            guardspec_ir::Opcode::Store { .. } | guardspec_ir::Opcode::FStore { .. }
        );
        let is_mem = insn.fu_class() == FuClass::LoadStore;
        if is_mem {
            t = t.max(last_store_done);
            if is_store {
                t = t.max(last_mem_issue);
            }
        }
        // Control: terminator goes last.
        if insn.is_control() && i > 0 {
            t = t.max(issue_cycle[i - 1]);
        }
        ready_at[i] = t;

        // Resource-constrained issue: find the first cycle >= t with a free
        // slot and a free unit of the class.
        let ci = Resources::class_idx(insn.fu_class());
        let mut c = t;
        loop {
            let slot_ok = *slots_used.get(&c).unwrap_or(&0) < res.issue_width;
            let fu_ok = res.fu[ci] == usize::MAX
                || fu_busy[ci].iter().filter(|&&x| x == c).count() < res.fu[ci];
            if slot_ok && fu_ok {
                break;
            }
            c += 1;
        }
        issue_cycle[i] = c;
        *slots_used.entry(c).or_insert(0) += 1;
        if res.fu[ci] != usize::MAX {
            fu_busy[ci].push(c);
        }
        let done = c + lat(insn);
        length = length.max(done);
        if let Some(d) = insn.def().filter(|d| !d.is_int_zero()) {
            def_done.insert(d, done);
            def_issue.insert(d, c);
        }
        for u in insn.uses() {
            let e = use_issue.entry(u).or_insert(0);
            *e = (*e).max(c);
        }
        if is_mem {
            last_mem_issue = last_mem_issue.max(c);
            if is_store {
                last_store_done = last_store_done.max(done);
            }
        }
    }

    // Vacant slots: total issue capacity before `length` minus used slots.
    let cap = length * res.issue_width as u64;
    let used: u64 = slots_used.values().map(|&v| v as u64).sum();
    let vacant_slots = cap.saturating_sub(used);

    BlockSchedule {
        issue_cycle,
        length,
        vacant_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::FuncBuilder;
    use guardspec_ir::reg::r;

    fn block_of(f: impl FnOnce(&mut FuncBuilder)) -> BasicBlock {
        let mut fb = FuncBuilder::new("t");
        fb.block("b");
        f(&mut fb);
        fb.halt();
        let func = fb.finish();
        func.blocks[0].clone()
    }

    #[test]
    fn dependent_chain_is_serial() {
        let b = block_of(|fb| {
            fb.addi(r(1), r(1), 1);
            fb.addi(r(1), r(1), 1);
            fb.addi(r(1), r(1), 1);
        });
        let s = schedule_block(&b, &Resources::r10000());
        // Three dependent adds at cycles 0,1,2 plus halt; length >= 3.
        assert_eq!(&s.issue_cycle[..3], &[0, 1, 2]);
        assert!(s.length >= 3);
    }

    #[test]
    fn independent_ops_pack_two_per_cycle() {
        let b = block_of(|fb| {
            fb.addi(r(1), r(10), 1);
            fb.addi(r(2), r(11), 1);
            fb.addi(r(3), r(12), 1);
            fb.addi(r(4), r(13), 1);
        });
        let s = schedule_block(&b, &Resources::r10000());
        // 2 ALUs: cycles 0,0,1,1.
        assert_eq!(&s.issue_cycle[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn load_latency_respected() {
        let b = block_of(|fb| {
            fb.lw(r(1), r(2), 0);
            fb.addi(r(3), r(1), 1);
        });
        let s = schedule_block(&b, &Resources::r10000());
        assert_eq!(s.issue_cycle[0], 0);
        assert_eq!(s.issue_cycle[1], 2, "consumer waits for 2-cycle load");
    }

    #[test]
    fn store_orders_with_following_load() {
        let b = block_of(|fb| {
            fb.sw(r(1), r(2), 0);
            fb.lw(r(3), r(4), 0);
        });
        let s = schedule_block(&b, &Resources::r10000());
        assert!(
            s.issue_cycle[1] >= s.issue_cycle[0] + 2,
            "load after store completion"
        );
    }

    #[test]
    fn output_dependence_orders_writers() {
        let b = block_of(|fb| {
            fb.li(r(1), 3);
            fb.li(r(1), 4);
            fb.sw(r(1), r(2), 0);
        });
        let s = schedule_block(&b, &Resources::r10000());
        assert!(s.issue_cycle[1] > s.issue_cycle[0]);
    }

    #[test]
    fn terminator_is_last() {
        let b = block_of(|fb| {
            fb.addi(r(1), r(10), 1);
            fb.addi(r(2), r(11), 1);
        });
        let s = schedule_block(&b, &Resources::r10000());
        let term = s.issue_cycle.last().copied().unwrap();
        assert!(s.issue_cycle[..s.issue_cycle.len() - 1]
            .iter()
            .all(|&c| c <= term));
    }

    #[test]
    fn vacant_slots_counted() {
        // One lonely ALU op + halt: width 4 leaves slots free.
        let b = block_of(|fb| {
            fb.addi(r(1), r(10), 1);
        });
        let s = schedule_block(&b, &Resources::r10000());
        assert!(s.vacant_slots > 0);
    }

    #[test]
    fn empty_block_is_free() {
        let b = BasicBlock::new("empty");
        let s = schedule_block(&b, &Resources::r10000());
        assert_eq!(s.length, 0);
        assert_eq!(s.vacant_slots, 0);
    }

    #[test]
    fn shifter_structural_hazard() {
        let b = block_of(|fb| {
            fb.sll(r(1), r(10), 1);
            fb.sll(r(2), r(11), 2);
        });
        let s = schedule_block(&b, &Resources::r10000());
        // One shifter: second shift waits a cycle.
        assert_eq!(s.issue_cycle[0], 0);
        assert_eq!(s.issue_cycle[1], 1);
    }
}
