//! # guardspec-core
//!
//! The paper's contribution: compile-time machinery that *combines*
//! speculative and guarded execution, driven by fine-grained feedback
//! metrics instead of a one-time averaged profile.
//!
//! Pipeline (Figure 6 of the paper):
//!
//! 1. Profile the program ([`guardspec_interp::Profiler`]) — per-branch
//!    outcome bit vectors.
//! 2. Classify each loop branch with [`feedback`]: taken frequency, toggle
//!    factor, monotonic vs non-monotonic, iteration-space segmentation,
//!    instrumentability.
//! 3. Decide per branch ([`driver`]):
//!    * highly-probable branches → *branch-likely* conversion,
//!    * monotonic branches whose guarded cost beats the weighted schedule
//!      estimate → *if-conversion* ([`ifconvert`]),
//!    * non-monotonic but instrumentable branches → *split-branch code*
//!      ([`splitbranch`]), giving each well-behaved segment of the
//!      iteration space its own statically-predicted control,
//!    * optionally hoist operations from the dominant arm into vacant head
//!      slots ([`speculate`]) with software renaming + forward substitution.
//! 4. Estimate costs with the [`schedule`] list scheduler and the
//!    [`costmodel`] (which reproduces the Figure 2–4 arithmetic exactly).

pub mod cleanup;
pub mod costmodel;
pub mod driver;
pub mod feedback;
pub mod ifconvert;
pub mod remap;
pub mod renamepool;
pub mod schedule;
pub mod speculate;
pub mod splitbranch;

pub use cleanup::{cleanup_program, remove_unreachable_blocks, CleanupStats};
pub use costmodel::DiamondCfg;
pub use driver::{
    transform_program, Action, CostComparison, Decision, DriverOptions, TransformReport,
};
pub use feedback::{classify, BranchBehavior, FeedbackParams, Segment, SegmentClass};
pub use remap::Remap;
pub use schedule::{schedule_block, BlockSchedule, Resources};
