//! The Figure-6 decision algorithm: "for each procedure, detect all loops;
//! for each branch in the loop list, choose branch-likely conversion,
//! if-conversion, or split-branch instrumentation" — plus optional
//! compile-time speculation into vacant head slots.

use crate::feedback::{
    classify, segment_periodicity, BranchBehavior, FeedbackParams, SegmentClass,
};
use crate::ifconvert::{can_convert, if_convert};
use crate::remap::Remap;
use crate::renamepool::RenamePool;
use crate::schedule::Resources;
use crate::speculate::speculate_into_head;
use crate::splitbranch::{split_branches, HybridSegment, SplitPlan, SplitSpec};
use guardspec_analysis::{find_hammocks, Cfg, DomTree, Hammock, Liveness, LoopForest};
use guardspec_interp::Profile;
use guardspec_ir::{BlockId, FuncId, InsnRef, Opcode, Program};

/// Driver configuration.  The presets reproduce the paper's schemes and the
/// ablations of the title's "individual/combined effects".
#[derive(Clone, Debug)]
pub struct DriverOptions {
    pub feedback: FeedbackParams,
    /// Convert highly-probable branches to branch-likely (both directions
    /// of the Figure-6 algorithm).
    pub enable_likely: bool,
    /// Apply guarded execution to monotonic branches that pass the cost
    /// comparison.
    pub enable_ifconvert: bool,
    /// Apply split-branch instrumentation to non-monotonic instrumentable
    /// branches.
    pub enable_split: bool,
    /// Hoist operations from the dominant arm into vacant head slots.
    pub enable_speculation: bool,
    /// Maximum arm body length eligible for if-conversion.
    pub max_arm_len: usize,
    /// Maximum operations speculated per branch.
    pub max_speculate_ops: usize,
    /// Hoist loads speculatively (dismissible-load model).
    pub allow_speculative_loads: bool,
    /// Maximum branch-likelies emitted per split site.
    pub max_likelies_per_site: usize,
    /// Estimated misprediction penalty (cycles) used in the if-conversion
    /// cost comparison.
    pub mispredict_penalty: f64,
}

impl DriverOptions {
    /// Everything on — the paper's proposed scheme.
    pub fn proposed() -> DriverOptions {
        DriverOptions {
            feedback: FeedbackParams::default(),
            enable_likely: true,
            enable_ifconvert: true,
            enable_split: true,
            enable_speculation: true,
            max_arm_len: 24,
            max_speculate_ops: 4,
            allow_speculative_loads: false,
            max_likelies_per_site: 4,
            mispredict_penalty: 8.0,
        }
    }

    /// The conventional one-time-feedback-metric scheme: likelies and
    /// if-conversion from averaged rates, no iteration-space splitting.
    pub fn conventional() -> DriverOptions {
        DriverOptions {
            enable_split: false,
            ..DriverOptions::proposed()
        }
    }

    /// Speculation only (no guarding, no splitting, no likelies).
    pub fn speculation_only() -> DriverOptions {
        DriverOptions {
            enable_likely: false,
            enable_ifconvert: false,
            enable_split: false,
            enable_speculation: true,
            ..DriverOptions::proposed()
        }
    }

    /// Guarded execution only.
    pub fn guarded_only() -> DriverOptions {
        DriverOptions {
            enable_likely: false,
            enable_ifconvert: true,
            enable_split: false,
            enable_speculation: false,
            ..DriverOptions::proposed()
        }
    }

    /// No transformation at all (the 2-bit baseline).
    pub fn baseline() -> DriverOptions {
        DriverOptions {
            enable_likely: false,
            enable_ifconvert: false,
            enable_split: false,
            enable_speculation: false,
            ..DriverOptions::proposed()
        }
    }
}

impl Default for DriverOptions {
    fn default() -> DriverOptions {
        DriverOptions::proposed()
    }
}

/// What was done to one branch.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Left alone (reason attached).
    None(&'static str),
    /// Converted to a branch-likely in place.
    BranchLikely,
    /// If-converted (guarded execution).
    IfConverted { guarded_ops: usize },
    /// Split-branch instrumentation applied.
    Split { likelies: usize },
    /// Operations hoisted above the branch.
    Speculated { hoisted: usize, renamed: usize },
    /// Likely conversion plus speculation from the dominant arm.
    LikelyAndSpeculated { hoisted: usize },
}

impl Action {
    /// Compact deterministic tag for the decision log.
    pub fn tag(&self) -> String {
        match self {
            Action::None(_) => "untouched".to_string(),
            Action::BranchLikely => "branch-likely".to_string(),
            Action::IfConverted { guarded_ops } => format!("if-convert(guarded_ops={guarded_ops})"),
            Action::Split { likelies } => format!("split-branch(likelies={likelies})"),
            Action::Speculated { hoisted, renamed } => {
                format!("speculate(hoisted={hoisted},renamed={renamed})")
            }
            Action::LikelyAndSpeculated { hoisted } => {
                format!("likely+speculate(hoisted={hoisted})")
            }
        }
    }
}

/// The two sides of a Figure-6 cost comparison (estimated cycles).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostComparison {
    /// Estimated cycles saved by the transformation.
    pub benefit: f64,
    /// Estimated cycles of overhead it introduces.
    pub cost: f64,
}

impl CostComparison {
    pub fn wins(&self) -> bool {
        self.benefit > self.cost
    }
}

/// One branch's record in the report.
#[derive(Clone, Debug)]
pub struct Decision {
    pub func: FuncId,
    /// Site in the ORIGINAL (pre-transform) program.
    pub site: InsnRef,
    pub backward: bool,
    /// Dynamic executions observed in the profile.
    pub executed: u64,
    pub taken_rate: f64,
    pub behavior: BranchBehavior,
    /// The cost comparison the driver evaluated at this site, if a gate
    /// ran (split gate for phased/periodic, guarded gate otherwise).
    pub cost: Option<CostComparison>,
    pub action: Action,
}

impl Decision {
    /// Why the action was (or was not) taken.
    pub fn reason(&self) -> &'static str {
        match &self.action {
            Action::None(r) => r,
            Action::BranchLikely => "taken rate above likely threshold",
            Action::IfConverted { .. } => "guarded cost beats expected mispredict penalty",
            Action::Split { .. } => "split benefit exceeds instrumentation cost",
            Action::Speculated { .. } => "mispredict-prone; dominant arm speculated into head",
            Action::LikelyAndSpeculated { .. } => "likely conversion plus dominant-arm speculation",
        }
    }

    /// One deterministic decision-log line.
    pub fn log_line(&self) -> String {
        let (benefit, cost) = self
            .cost
            .map(|c| (format!("{:.2}", c.benefit), format!("{:.2}", c.cost)))
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        format!(
            "func={} block={} idx={} dir={} executed={} taken_rate={:.4} behavior={} benefit={} cost={} action={} reason={}",
            self.func.0,
            self.site.block.0,
            self.site.idx,
            if self.backward { "back" } else { "fwd" },
            self.executed,
            self.taken_rate,
            self.behavior.tag(),
            benefit,
            cost,
            self.action.tag(),
            self.reason(),
        )
    }
}

/// Aggregate transform report.
#[derive(Clone, Debug, Default)]
pub struct TransformReport {
    pub decisions: Vec<Decision>,
    pub likelies: usize,
    pub ifconversions: usize,
    pub splits: usize,
    pub speculated_ops: usize,
    pub guarded_ops: usize,
    pub split_likelies: usize,
}

impl TransformReport {
    pub fn count(&self, f: impl Fn(&Action) -> bool) -> usize {
        self.decisions.iter().filter(|d| f(&d.action)).count()
    }

    /// The structured Figure-6 decision log: one deterministic line per
    /// loop branch the driver visited, in visit order.
    pub fn decision_log_lines(&self) -> Vec<String> {
        self.decisions.iter().map(|d| d.log_line()).collect()
    }
}

/// Apply the Figure-6 algorithm to every function of `prog`, using the
/// branch profiles in `profile` (collected on the same, untransformed
/// program).
pub fn transform_program(
    prog: &mut Program,
    profile: &Profile,
    opts: &DriverOptions,
) -> TransformReport {
    let mut report = TransformReport::default();
    let nfuncs = prog.funcs.len();
    for fi in 0..nfuncs {
        transform_function(prog, FuncId(fi as u32), profile, opts, &mut report);
    }
    report
}

/// A branch decision pending structural application.
enum Pending {
    Split {
        loop_header: BlockId,
        loop_body: Vec<BlockId>,
        spec: SplitSpec,
    },
    Speculate {
        head: BlockId,
        arm: BlockId,
        other: BlockId,
    },
}

fn transform_function(
    prog: &mut Program,
    fid: FuncId,
    profile: &Profile,
    opts: &DriverOptions,
    report: &mut TransformReport,
) {
    let res = Resources::r10000();
    // ---- Analysis on the original function -------------------------------
    let (loops, hammocks, decisions) = {
        let f = prog.func(fid);
        let cfg = Cfg::build(f);
        let dom = DomTree::dominators(&cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        let hammocks = find_hammocks(f, &cfg);
        let mut seen: std::collections::HashSet<InsnRef> = Default::default();
        let mut decisions: Vec<(InsnRef, bool, usize)> = Vec::new(); // site, backward, loop idx
        for (li, l) in forest.loops.iter().enumerate() {
            for (site, backward) in forest.loop_branches(f, l) {
                let site = InsnRef { func: fid, ..site };
                if seen.insert(site) {
                    decisions.push((site, backward, li));
                }
            }
        }
        (forest.loops, hammocks, decisions)
    };

    // ---- Decide per branch (Figure 6) ------------------------------------
    let mut likely_flips: Vec<InsnRef> = Vec::new();
    let mut convert_hammocks: Vec<(InsnRef, Hammock)> = Vec::new();
    let mut pendings: Vec<(InsnRef, Pending)> = Vec::new();

    for (site, backward, li) in decisions {
        let Some(bp) = profile.branch(site) else {
            report.decisions.push(Decision {
                func: fid,
                site,
                backward,
                executed: 0,
                taken_rate: 0.0,
                behavior: BranchBehavior::Irregular {
                    rate: 0.0,
                    toggle: 0.0,
                },
                cost: None,
                action: Action::None("never executed"),
            });
            continue;
        };
        let rate = bp.taken_rate();
        let executed = bp.executed;
        let behavior = classify(&bp.outcomes, &opts.feedback);
        let hammock = hammocks.iter().find(|h| h.head == site.block).copied();
        // The cost comparison evaluated at this site, recorded whichever
        // way it went (split gate for phased/periodic, guarded gate via
        // `convert_or_speculate` otherwise).
        let mut gate: Option<CostComparison> = None;

        let action: Action = if backward {
            // Figure 6, backward-branch arm: only the likely conversion.
            if opts.enable_likely && rate >= opts.feedback.likely_threshold {
                likely_flips.push(site);
                Action::BranchLikely
            } else {
                Action::None("backward branch below likely threshold")
            }
        } else {
            match &behavior {
                BranchBehavior::HighlyTaken { .. } => {
                    let mut act = Action::None("highly taken; likelies disabled");
                    if opts.enable_likely {
                        likely_flips.push(site);
                        act = Action::BranchLikely;
                    }
                    // Speculate from the dominant (taken) arm.
                    if opts.enable_speculation && worth_speculating(&bp.outcomes) {
                        if let Some(h) = hammock {
                            if let (Some(arm), Some(other)) = (h.taken_arm, other_succ(&h, true)) {
                                pendings.push((
                                    site,
                                    Pending::Speculate {
                                        head: h.head,
                                        arm,
                                        other,
                                    },
                                ));
                                act = match act {
                                    Action::BranchLikely => {
                                        Action::LikelyAndSpeculated { hoisted: 0 }
                                    }
                                    _ => Action::Speculated {
                                        hoisted: 0,
                                        renamed: 0,
                                    },
                                };
                            }
                        }
                    }
                    act
                }
                BranchBehavior::HighlyNotTaken { .. } => {
                    // Fall-through dominant: the 2-bit predictor handles the
                    // direction; speculate from the fall arm if possible.
                    if opts.enable_speculation && worth_speculating(&bp.outcomes) {
                        if let Some(h) = hammock {
                            if let (Some(arm), Some(other)) = (h.fall_arm, other_succ(&h, false)) {
                                pendings.push((
                                    site,
                                    Pending::Speculate {
                                        head: h.head,
                                        arm,
                                        other,
                                    },
                                ));
                                report.decisions.push(Decision {
                                    func: fid,
                                    site,
                                    backward,
                                    executed,
                                    taken_rate: rate,
                                    behavior,
                                    cost: None,
                                    action: Action::Speculated {
                                        hoisted: 0,
                                        renamed: 0,
                                    },
                                });
                                continue;
                            }
                        }
                    }
                    Action::None("highly not-taken; predictor suffices")
                }
                BranchBehavior::Monotonic { rate: r, .. } => {
                    // If-conversion candidate: Figure 6's cost comparison of
                    // guarded cost vs weighted schedule estimates.
                    let mut act = Action::None("monotonic; conversion not profitable");
                    if opts.enable_ifconvert {
                        if let Some(h) = hammock {
                            let f = prog.func(fid);
                            if can_convert(f, &h, opts.max_arm_len).is_ok() {
                                let cmp = guarded_cost(f, &h, &bp.outcomes, *r, opts, &res);
                                gate = Some(cmp);
                                if cmp.wins() {
                                    convert_hammocks.push((site, h));
                                    act = Action::IfConverted { guarded_ops: 0 };
                                }
                            }
                        }
                    }
                    if matches!(act, Action::None(_))
                        && opts.enable_speculation
                        && worth_speculating(&bp.outcomes)
                    {
                        if let Some(h) = hammock {
                            let taken_dom = *r >= 0.5;
                            let arm = if taken_dom { h.taken_arm } else { h.fall_arm };
                            if let (Some(arm), Some(other)) = (arm, other_succ(&h, taken_dom)) {
                                pendings.push((
                                    site,
                                    Pending::Speculate {
                                        head: h.head,
                                        arm,
                                        other,
                                    },
                                ));
                                act = Action::Speculated {
                                    hoisted: 0,
                                    renamed: 0,
                                };
                            }
                        }
                    }
                    act
                }
                BranchBehavior::Phased { segments } => {
                    // The per-segment extension: Mixed phases may hide a
                    // periodic pattern the algebraic counter can steer.
                    let hybrid: Vec<HybridSegment> = segments
                        .iter()
                        .map(|seg| {
                            let per = (seg.class == SegmentClass::Mixed)
                                .then(|| segment_periodicity(&bp.outcomes, seg, &opts.feedback))
                                .flatten();
                            (*seg, per)
                        })
                        .collect();
                    let split_cmp = opts
                        .enable_split
                        .then(|| split_cost_hybrid(&bp.outcomes, &hybrid, opts));
                    gate = split_cmp;
                    if !split_cmp.is_some_and(|c| c.wins()) {
                        let reason = if opts.enable_split {
                            "phased; instrumentation cost exceeds benefit"
                        } else {
                            "phased; splitting disabled"
                        };
                        let (act, fb_cmp) = convert_or_speculate(
                            prog,
                            fid,
                            site,
                            hammock,
                            &bp.outcomes,
                            rate,
                            opts,
                            &res,
                            &mut convert_hammocks,
                            &mut pendings,
                            reason,
                        );
                        report.decisions.push(Decision {
                            func: fid,
                            site,
                            backward,
                            executed,
                            taken_rate: rate,
                            behavior,
                            // Record the comparison that decided the
                            // action: the guarded gate when the fallback
                            // if-converted, the split gate otherwise.
                            cost: if matches!(act, Action::IfConverted { .. }) {
                                fb_cmp
                            } else {
                                gate.or(fb_cmp)
                            },
                            action: act,
                        });
                        continue;
                    }
                    {
                        let l = &loops[li];
                        let plan = if hybrid.iter().any(|(_, per)| per.is_some()) {
                            SplitPlan::Hybrid { segments: hybrid }
                        } else {
                            SplitPlan::Phased {
                                segments: segments.clone(),
                            }
                        };
                        pendings.push((
                            site,
                            Pending::Split {
                                loop_header: l.header,
                                loop_body: l.body.clone(),
                                spec: SplitSpec {
                                    block: site.block,
                                    plan,
                                },
                            },
                        ));
                        Action::Split { likelies: 0 }
                    }
                }
                BranchBehavior::Periodic { period, pattern } => {
                    let split_cmp = (opts.enable_split && period.is_power_of_two() && *period <= 8)
                        .then(|| split_cost_periodic(&bp.outcomes, *period, opts));
                    gate = split_cmp;
                    if !split_cmp.is_some_and(|c| c.wins()) {
                        let reason = if opts.enable_split {
                            "periodic; split not instrumentable or not profitable"
                        } else {
                            "periodic; splitting disabled"
                        };
                        let (act, fb_cmp) = convert_or_speculate(
                            prog,
                            fid,
                            site,
                            hammock,
                            &bp.outcomes,
                            rate,
                            opts,
                            &res,
                            &mut convert_hammocks,
                            &mut pendings,
                            reason,
                        );
                        report.decisions.push(Decision {
                            func: fid,
                            site,
                            backward,
                            executed,
                            taken_rate: rate,
                            behavior,
                            // Record the comparison that decided the
                            // action: the guarded gate when the fallback
                            // if-converted, the split gate otherwise.
                            cost: if matches!(act, Action::IfConverted { .. }) {
                                fb_cmp
                            } else {
                                gate.or(fb_cmp)
                            },
                            action: act,
                        });
                        continue;
                    }
                    if opts.enable_split && period.is_power_of_two() && *period <= 8 {
                        let l = &loops[li];
                        pendings.push((
                            site,
                            Pending::Split {
                                loop_header: l.header,
                                loop_body: l.body.clone(),
                                spec: SplitSpec {
                                    block: site.block,
                                    plan: SplitPlan::Periodic {
                                        period: *period,
                                        pattern: pattern.clone(),
                                    },
                                },
                            },
                        ));
                        Action::Split { likelies: 0 }
                    } else {
                        unreachable!("handled by the gate above")
                    }
                }
                BranchBehavior::Irregular { rate: r, .. } => {
                    let r = *r;
                    // "Guarded execution where instruction traces are less
                    // regular but suffer from insufficient parallelism":
                    // irregular short diamonds are the prime if-conversion
                    // targets — the branch is unpredictable, the merged code
                    // is cheap.
                    let (act, cmp) = convert_or_speculate(
                        prog,
                        fid,
                        site,
                        hammock,
                        &bp.outcomes,
                        r,
                        opts,
                        &res,
                        &mut convert_hammocks,
                        &mut pendings,
                        "irregular behavior",
                    );
                    gate = cmp;
                    act
                }
            }
        };
        report.decisions.push(Decision {
            func: fid,
            site,
            backward,
            executed,
            taken_rate: rate,
            behavior,
            cost: gate,
            action,
        });
    }

    // ---- Apply: phase A, in-place likely flips ---------------------------
    for site in &likely_flips {
        let f = prog.func_mut(fid);
        let blk = f.block_mut(site.block);
        if let Some(Opcode::Branch { likely, .. }) =
            blk.insns.get_mut(site.idx as usize).map(|i| &mut i.op)
        {
            *likely = true;
            report.likelies += 1;
        }
    }

    // ---- Phase B: if-conversions (no block renumbering) ------------------
    {
        let mut pool = RenamePool::for_program(prog);
        let f = prog.func_mut(fid);
        for (site, h) in &convert_hammocks {
            if let Ok(stats) = if_convert(f, h, &mut pool, opts.max_arm_len) {
                report.ifconversions += 1;
                report.guarded_ops += stats.guarded_ops;
                if let Some(d) = report.decisions.iter_mut().find(|d| d.site == *site) {
                    d.action = Action::IfConverted {
                        guarded_ops: stats.guarded_ops,
                    };
                }
            }
        }
    }

    // ---- Phase C: speculation (instruction inserts only) -----------------
    for (site, p) in &pendings {
        if let Pending::Speculate { head, arm, other } = p {
            let mut pool = RenamePool::for_program(prog);
            let f = prog.func_mut(fid);
            let cfg = Cfg::build(f);
            let lv = Liveness::compute(f, &cfg);
            let live_other = *lv.live_in(*other);
            let (stats, _remap) = speculate_into_head(
                f,
                *head,
                *arm,
                &live_other,
                opts.max_speculate_ops,
                opts.allow_speculative_loads,
                &mut pool,
            );
            report.speculated_ops += stats.hoisted;
            if let Some(d) = report.decisions.iter_mut().find(|d| d.site == *site) {
                d.action = match d.action {
                    Action::LikelyAndSpeculated { .. } if stats.hoisted > 0 => {
                        Action::LikelyAndSpeculated {
                            hoisted: stats.hoisted,
                        }
                    }
                    Action::LikelyAndSpeculated { .. } => Action::BranchLikely,
                    _ if stats.hoisted > 0 => Action::Speculated {
                        hoisted: stats.hoisted,
                        renamed: stats.renamed,
                    },
                    _ => Action::None("nothing speculatable in the arm"),
                };
            }
        }
    }

    // ---- Phase D: splits, grouped per loop, descending header ------------
    type LoopSplits = (Vec<BlockId>, Vec<(InsnRef, SplitSpec)>);
    let mut grouped: std::collections::BTreeMap<u32, LoopSplits> = Default::default();
    for (site, p) in &pendings {
        if let Pending::Split {
            loop_header,
            loop_body,
            spec,
        } = p
        {
            let e = grouped
                .entry(loop_header.0)
                .or_insert_with(|| (loop_body.clone(), Vec::new()));
            e.1.push((*site, spec.clone()));
        }
    }
    let mut cum = Remap::new();
    // Descending header order: inserts for high headers don't move lower ones,
    // and the cumulative remap covers what does move.
    for (&header0, (body0, entries)) in grouped.iter().rev() {
        let mut pool = RenamePool::for_program(prog);
        let f = prog.func_mut(fid);
        let header = cum.apply_block(BlockId(header0));
        let body: Vec<BlockId> = body0.iter().map(|&b| cum.apply_block(b)).collect();
        let specs: Vec<SplitSpec> = entries
            .iter()
            .map(|(_, s)| SplitSpec {
                block: cum.apply_block(s.block),
                plan: s.plan.clone(),
            })
            .collect();
        match split_branches(
            f,
            header,
            &body,
            &specs,
            &mut pool,
            opts.feedback.min_segment_frac,
            opts.max_likelies_per_site,
        ) {
            Ok((stats, remap)) => {
                report.splits += stats.sites;
                report.split_likelies += stats.likelies;
                cum.extend(&remap);
                for (site, _) in entries {
                    if let Some(d) = report.decisions.iter_mut().find(|d| d.site == *site) {
                        d.action = Action::Split {
                            likelies: stats.likelies / stats.sites.max(1),
                        };
                    }
                }
            }
            Err(_) => {
                for (site, _) in entries {
                    if let Some(d) = report.decisions.iter_mut().find(|d| d.site == *site) {
                        d.action = Action::None("split failed (resources/segments)");
                    }
                }
            }
        }
    }
}

/// The successor of the head on the path NOT being speculated from.
fn other_succ(h: &Hammock, speculating_taken: bool) -> Option<BlockId> {
    if speculating_taken {
        h.fall_arm.or(Some(h.join))
    } else {
        h.taken_arm.or(Some(h.join))
    }
}

/// Is compile-time speculation worth it for this branch?  The out-of-order
/// core already speculates dynamically past *predicted* branches, so
/// hoisting only pays when the branch actually mispredicts often enough
/// that having the arm's prefix already in flight shortens recovery —
/// Section 3's "how much we would like to perform speculation at
/// compile-time versus doing it dynamically".
fn worth_speculating(outcomes: &guardspec_interp::BitVec) -> bool {
    if outcomes.is_empty() {
        return false;
    }
    let misp = twobit_mispredicts(outcomes, 0..outcomes.len()) as f64 / outcomes.len() as f64;
    misp >= 0.05
}

/// Shared fallback: if-convert when the cost model approves, else queue
/// speculation from the dominant arm, else do nothing.  Also returns the
/// guarded cost comparison when one was evaluated, for the decision log.
#[allow(clippy::too_many_arguments)]
fn convert_or_speculate(
    prog: &Program,
    fid: FuncId,
    site: InsnRef,
    hammock: Option<Hammock>,
    outcomes: &guardspec_interp::BitVec,
    rate: f64,
    opts: &DriverOptions,
    res: &Resources,
    convert_hammocks: &mut Vec<(InsnRef, Hammock)>,
    pendings: &mut Vec<(InsnRef, Pending)>,
    none_reason: &'static str,
) -> (Action, Option<CostComparison>) {
    let mut gate: Option<CostComparison> = None;
    if opts.enable_ifconvert {
        if let Some(h) = hammock {
            let f = prog.func(fid);
            if can_convert(f, &h, opts.max_arm_len).is_ok() {
                let cmp = guarded_cost(f, &h, outcomes, rate, opts, res);
                gate = Some(cmp);
                if cmp.wins() {
                    convert_hammocks.push((site, h));
                    return (Action::IfConverted { guarded_ops: 0 }, gate);
                }
            }
        }
    }
    if opts.enable_speculation && worth_speculating(outcomes) {
        if let Some(h) = hammock {
            let taken_dom = rate >= 0.5;
            let arm = if taken_dom { h.taken_arm } else { h.fall_arm };
            if let (Some(arm), Some(other)) = (arm, other_succ(&h, taken_dom)) {
                pendings.push((
                    site,
                    Pending::Speculate {
                        head: h.head,
                        arm,
                        other,
                    },
                ));
                return (
                    Action::Speculated {
                        hoisted: 0,
                        renamed: 0,
                    },
                    gate,
                );
            }
        }
    }
    (Action::None(none_reason), gate)
}

/// Replay an outcome vector through a fresh 2-bit counter and count
/// mispredictions — the baseline cost estimate for the split gate.
fn twobit_mispredicts(v: &guardspec_interp::BitVec, range: std::ops::Range<usize>) -> u64 {
    let mut t = guardspec_predict::TwoBitTable::new(1);
    let mut miss = 0u64;
    for i in range {
        if !t.access(0, v.get(i)) {
            miss += 1;
        }
    }
    miss
}

/// Figure 6's split gate: "if costs of adding extra instrumented code less
/// expensive than either (b), (c) and (d)".  Benefit: mispredicts the
/// per-phase likelies remove — biased segments keep ~1 mispredict per
/// boundary; Mixed segments keep the 2-bit residual unless a periodic
/// pattern was detected, in which case only the pattern disagreements
/// remain.  Cost: the per-iteration instrumentation issued on a 4-wide
/// machine.
fn split_cost_hybrid(
    v: &guardspec_interp::BitVec,
    segments: &[HybridSegment],
    opts: &DriverOptions,
) -> CostComparison {
    let n = v.len();
    if n == 0 {
        return CostComparison::default();
    }
    let m_base = twobit_mispredicts(v, 0..n);
    let mut m_after = segments.len() as u64;
    let mut extra_ops = 3.0; // counter increment + condition setp
    for (s, per) in segments {
        match (s.class, per) {
            (SegmentClass::Mixed, Some((p, pattern))) => {
                // Only pattern disagreements stay mispredicted.
                let dis = (s.start..s.end.min(n))
                    .filter(|&i| v.get(i) != pattern[(i - s.start) % p])
                    .count() as u64;
                m_after += dis;
                let taken_pos = pattern.iter().filter(|&&t| t).count();
                extra_ops += 1.0 + 2.0 * taken_pos as f64;
            }
            (SegmentClass::Mixed, None) | (SegmentClass::NotTaken, _) => {
                // Left to the 2-bit residual (codegen emits no likely).
                m_after += twobit_mispredicts(v, s.start..s.end.min(n));
            }
            (SegmentClass::Taken, _) => {
                extra_ops += 2.0;
            }
        }
    }
    CostComparison {
        benefit: (m_base.saturating_sub(m_after)) as f64 * opts.mispredict_penalty,
        cost: n as f64 * extra_ops / 4.0,
    }
}

/// Split gate for periodic patterns: the algebraic-counter likelies remove
/// all agreeing-position mispredicts.
fn split_cost_periodic(
    v: &guardspec_interp::BitVec,
    period: usize,
    opts: &DriverOptions,
) -> CostComparison {
    let n = v.len();
    if n == 0 {
        return CostComparison::default();
    }
    let m_base = twobit_mispredicts(v, 0..n);
    // Disagreements with the periodic pattern stay mispredicted.
    let pattern: Vec<bool> = (0..period).map(|i| v.get(i)).collect();
    let m_after = (0..n).filter(|&i| v.get(i) != pattern[i % period]).count() as u64;
    let taken_positions = pattern.iter().filter(|&&t| t).count();
    let extra_ops = 2.0 + 2.0 * taken_positions.min(opts.max_likelies_per_site) as f64;
    CostComparison {
        benefit: (m_base.saturating_sub(m_after)) as f64 * opts.mispredict_penalty,
        cost: n as f64 * extra_ops / 4.0,
    }
}

/// Figure 6's cost comparison, adapted to the out-of-order target: guarded
/// execution wins when the misprediction savings plus the removed control
/// ops outweigh the dispatch bandwidth spent on the (annulled) other arm
/// and the predicate setup.
///
/// (The static-schedule variant of this comparison — Figure 2's vacant-slot
/// arithmetic — lives in [`DiamondCfg`] and is reproduced by the `figure2`
/// bench; on a dynamically-scheduled machine "vacant slots" are not free,
/// so the driver gates on issue bandwidth instead.)
fn guarded_cost(
    f: &guardspec_ir::Function,
    h: &Hammock,
    outcomes: &guardspec_interp::BitVec,
    taken_rate: f64,
    opts: &DriverOptions,
    res: &Resources,
) -> CostComparison {
    let arm_ops = |b: Option<guardspec_ir::BlockId>| -> f64 {
        b.map(|b| f.block(b).body_len() as f64).unwrap_or(0.0)
    };
    let ops_fall = arm_ops(h.fall_arm);
    let ops_taken = arm_ops(h.taken_arm);
    // Measured 2-bit misprediction rate on the actual outcome stream —
    // a phased or periodic-friendly branch may be far better predicted
    // than its average rate suggests.
    let misp_rate = if outcomes.is_empty() {
        taken_rate.min(1.0 - taken_rate)
    } else {
        twobit_mispredicts(outcomes, 0..outcomes.len()) as f64 / outcomes.len() as f64
    };
    let width = res.issue_width as f64;
    // Benefit: expected misprediction penalty removed, plus the branch
    // no longer occupying a fetch slot.  (The head gains a jump to the
    // join, so the arm-terminating jump is not counted as saved.)
    let benefit = misp_rate * opts.mispredict_penalty + 1.0 / width;
    // Overhead: the annulled arm's ops still flow through the pipeline,
    // plus the setp.
    let annulled = taken_rate * ops_fall + (1.0 - taken_rate) * ops_taken;
    CostComparison {
        benefit,
        cost: (annulled + 1.0) / width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_interp::profile::profile_program;
    use guardspec_interp::run;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::validate::assert_valid;

    /// A kitchen-sink loop: a hot latch (likely candidate), a phased branch
    /// (split candidate), a balanced short diamond (if-convert candidate),
    /// and an alternating branch (periodic split candidate).
    fn mixed_program(iters: i64) -> Program {
        let mut fb = FuncBuilder::new("mixed");
        fb.block("entry");
        fb.li(r(1), 0); // i
        fb.li(r(9), iters);
        fb.block("head");
        // Phased branch: taken while i < iters*2/5.
        fb.slti(r(2), r(1), iters * 2 / 5);
        fb.bne(r(2), r(0), "ph_t");
        fb.block("ph_f");
        fb.addi(r(5), r(5), 1);
        fb.jump("diamond");
        fb.block("ph_t");
        fb.addi(r(6), r(6), 1);
        fb.block("diamond");
        // Balanced diamond on a noisy condition (hash parity): short arms.
        fb.mul(r(3), r(1), r(1));
        fb.srl(r(4), r(3), 3);
        fb.andi(r(4), r(4), 1);
        fb.beq(r(4), r(0), "d_t");
        fb.block("d_f");
        fb.addi(r(7), r(7), 2);
        fb.jump("alt");
        fb.block("d_t");
        fb.addi(r(7), r(7), 3);
        fb.block("alt");
        // Alternating branch.
        fb.andi(r(8), r(1), 1);
        fb.bne(r(8), r(0), "a_t");
        fb.block("a_f");
        fb.addi(r(10), r(10), 1);
        fb.jump("latch");
        fb.block("a_t");
        fb.addi(r(11), r(11), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head"); // hot backward branch
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.sw(r(7), r(0), 3);
        fb.sw(r(10), r(0), 4);
        fb.sw(r(11), r(0), 5);
        fb.halt();
        single_func_program(fb)
    }

    fn apply(opts: &DriverOptions, prog: &Program) -> (Program, TransformReport) {
        let (profile, _) = profile_program(prog).expect("profile");
        let mut out = prog.clone();
        let report = transform_program(&mut out, &profile, opts);
        assert_valid(&out);
        (out, report)
    }

    #[test]
    fn proposed_applies_every_mechanism() {
        let prog = mixed_program(200);
        let (out, report) = apply(&DriverOptions::proposed(), &prog);
        assert!(report.likelies >= 1, "latch should go likely: {report:?}");
        assert!(
            report.splits + report.ifconversions >= 1,
            "periodic/irregular branches should transform: {report:?}"
        );
        // Semantics preserved.
        let rb = run(&prog).unwrap();
        let ro = run(&out).unwrap();
        assert_eq!(rb.machine.mem_checksum(), ro.machine.mem_checksum());
    }

    #[test]
    fn baseline_changes_nothing() {
        let prog = mixed_program(100);
        let (out, report) = apply(&DriverOptions::baseline(), &prog);
        assert_eq!(report.likelies, 0);
        assert_eq!(report.splits, 0);
        assert_eq!(report.ifconversions, 0);
        assert_eq!(report.speculated_ops, 0);
        assert_eq!(out.funcs, prog.funcs);
    }

    #[test]
    fn conventional_never_splits() {
        let prog = mixed_program(200);
        let (_out, report) = apply(&DriverOptions::conventional(), &prog);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn every_preset_preserves_semantics() {
        let prog = mixed_program(150);
        let base = run(&prog).unwrap().machine.mem_checksum();
        for opts in [
            DriverOptions::baseline(),
            DriverOptions::conventional(),
            DriverOptions::speculation_only(),
            DriverOptions::guarded_only(),
            DriverOptions::proposed(),
        ] {
            let (out, _) = apply(&opts, &prog);
            let got = run(&out).unwrap().machine.mem_checksum();
            assert_eq!(base, got, "semantics changed under {opts:?}");
        }
    }

    #[test]
    fn decisions_cover_all_loop_branches() {
        let prog = mixed_program(100);
        let (_out, report) = apply(&DriverOptions::proposed(), &prog);
        // head, diamond, alt, latch = 4 conditional branches in the loop.
        assert_eq!(report.decisions.len(), 4, "{:?}", report.decisions);
        assert!(report.decisions.iter().any(|d| d.backward));
    }

    #[test]
    fn decision_log_is_complete_and_deterministic() {
        let prog = mixed_program(200);
        let (_out, report) = apply(&DriverOptions::proposed(), &prog);
        let lines = report.decision_log_lines();
        assert_eq!(lines.len(), report.decisions.len());
        for (d, line) in report.decisions.iter().zip(&lines) {
            assert!(!d.reason().is_empty());
            assert!(d.executed > 0 || matches!(d.action, Action::None("never executed")));
            assert!(line.contains("behavior="), "{line}");
            assert!(line.contains("reason="), "{line}");
        }
        // Phased/periodic/irregular sites record the gate they evaluated.
        for d in &report.decisions {
            if matches!(d.action, Action::Split { .. } | Action::IfConverted { .. }) {
                let c = d
                    .cost
                    .expect("active transform must carry its cost comparison");
                assert!(c.wins(), "{c:?}");
            }
        }
        // Byte-determinism: a second run over the same inputs produces the
        // identical log.
        let (_out2, report2) = apply(&DriverOptions::proposed(), &prog);
        assert_eq!(lines, report2.decision_log_lines());
    }

    #[test]
    fn proposed_improves_simulated_cycles() {
        use guardspec_predict::Scheme;
        use guardspec_sim::{simulate_program, MachineConfig};
        let prog = mixed_program(400);
        let (out, _) = apply(&DriverOptions::proposed(), &prog);
        let cfg = MachineConfig::r10000();
        let (base, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).unwrap();
        let (tuned, _) = simulate_program(&out, Scheme::Proposed, &cfg).unwrap();
        let (perfect, _) = simulate_program(&prog, Scheme::Perfect, &cfg).unwrap();
        assert!(
            tuned.cycles < base.cycles,
            "proposed {} cycles should beat baseline {}",
            tuned.cycles,
            base.cycles
        );
        assert!(perfect.cycles <= base.cycles);
    }

    #[test]
    fn guarded_cost_model_rejects_uneven_arms() {
        // A monotonic branch (75% taken) guarding a LONG fall arm: merging
        // would serialize the long arm every iteration -> refuse.
        let mut fb = FuncBuilder::new("uneven");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 100);
        fb.block("head");
        fb.andi(r(2), r(1), 7);
        fb.slti(r(3), r(2), 6);
        fb.bne(r(3), r(0), "short");
        fb.block("long");
        for k in 0..16u8 {
            fb.addi(r(10 + (k % 4)), r(10 + (k % 4)), 1);
        }
        fb.jump("join");
        fb.block("short");
        fb.addi(r(5), r(5), 1);
        fb.block("join");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let (_out, report) = apply(&DriverOptions::guarded_only(), &prog);
        assert_eq!(
            report.ifconversions, 0,
            "uneven arms must not be if-converted: {:?}",
            report.decisions
        );
    }

    #[test]
    fn guarded_cost_model_accepts_noisy_short_diamond() {
        // Noisy 50-50 short diamond — misprediction-heavy, cheap to merge.
        let mut fb = FuncBuilder::new("bal");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 200);
        fb.block("head");
        fb.mul(r(3), r(1), r(1));
        fb.srl(r(4), r(3), 3);
        fb.andi(r(4), r(4), 1);
        fb.beq(r(4), r(0), "t");
        fb.block("f");
        fb.addi(r(7), r(7), 2);
        fb.jump("join");
        fb.block("t");
        fb.addi(r(7), r(7), 3);
        fb.block("join");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(7), r(0), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let (out, report) = apply(&DriverOptions::guarded_only(), &prog);
        assert_eq!(
            report.ifconversions, 1,
            "noisy diamond converts: {:?}",
            report.decisions
        );
        let rb = run(&prog).unwrap();
        let ro = run(&out).unwrap();
        assert_eq!(rb.machine.mem_checksum(), ro.machine.mem_checksum());
    }

    #[test]
    fn split_gate_rejects_well_predicted_phases() {
        // Long biased phases: 2-bit already predicts them; the gate must
        // refuse the instrumentation.
        let mut fb = FuncBuilder::new("cheap");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 400);
        fb.block("head");
        fb.slti(r(2), r(1), 160);
        fb.bne(r(2), r(0), "t");
        fb.block("f");
        fb.addi(r(5), r(5), 1);
        fb.jump("latch");
        fb.block("t");
        fb.addi(r(6), r(6), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let (_out, report) = apply(&DriverOptions::proposed(), &prog);
        assert_eq!(report.splits, 0, "{:?}", report.decisions);
        // The phased branch was NOT split; it fell back to another
        // mechanism (or nothing), never the instrumentation.
        assert!(report
            .decisions
            .iter()
            .all(|d| !matches!(d.action, Action::Split { .. })));
    }

    #[test]
    fn periodic_split_passes_gate_and_wins() {
        use guardspec_predict::Scheme;
        use guardspec_sim::{simulate_program, MachineConfig};
        let mut fb = FuncBuilder::new("alt");
        fb.block("entry");
        fb.li(r(1), 0);
        fb.li(r(9), 400);
        fb.block("head");
        fb.andi(r(2), r(1), 1);
        fb.bne(r(2), r(0), "t");
        fb.block("f");
        fb.addi(r(5), r(5), 1);
        fb.jump("latch");
        fb.block("t");
        fb.addi(r(6), r(6), 1);
        fb.block("latch");
        fb.addi(r(1), r(1), 1);
        fb.bne(r(1), r(9), "head");
        fb.block("done");
        fb.sw(r(5), r(0), 1);
        fb.sw(r(6), r(0), 2);
        fb.halt();
        let prog = single_func_program(fb);
        let (out, report) = apply(&DriverOptions::proposed(), &prog);
        assert_eq!(report.splits, 1, "{:?}", report.decisions);
        let cfg = MachineConfig::r10000();
        let (base, _) = simulate_program(&prog, Scheme::TwoBit, &cfg).unwrap();
        let (tuned, _) = simulate_program(&out, Scheme::Proposed, &cfg).unwrap();
        assert!(tuned.mispredicts * 4 < base.mispredicts);
        assert!(
            tuned.cycles < base.cycles,
            "{} vs {}",
            tuned.cycles,
            base.cycles
        );
    }
}
