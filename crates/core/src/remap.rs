//! Bookkeeping for structural edits: transforms that insert blocks or
//! instructions report their edits so pending instruction references stay
//! valid.

use guardspec_ir::{BlockId, InsnRef};

/// One structural edit applied to a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edit {
    /// A block was inserted at layout position `at`: block ids >= `at`
    /// shifted up by one.
    BlockInsert { at: u32 },
    /// `count` instructions were inserted in `block` before index `at`:
    /// instruction indices >= `at` in that block shifted up by `count`.
    InsnInsert { block: BlockId, at: u32, count: u32 },
}

/// An ordered list of edits; apply to stale references with [`Remap::apply`].
#[derive(Clone, Debug, Default)]
pub struct Remap {
    pub edits: Vec<Edit>,
}

impl Remap {
    pub fn new() -> Remap {
        Remap::default()
    }

    pub fn block_insert(&mut self, at: BlockId) {
        self.edits.push(Edit::BlockInsert { at: at.0 });
    }

    pub fn insn_insert(&mut self, block: BlockId, at: u32, count: u32) {
        self.edits.push(Edit::InsnInsert { block, at, count });
    }

    /// Map a pre-transform reference to its post-transform location.
    pub fn apply(&self, mut r: InsnRef) -> InsnRef {
        for e in &self.edits {
            match *e {
                Edit::BlockInsert { at } => {
                    if r.block.0 >= at {
                        r.block = BlockId(r.block.0 + 1);
                    }
                }
                Edit::InsnInsert { block, at, count } => {
                    if r.block == block && r.idx >= at {
                        r.idx += count;
                    }
                }
            }
        }
        r
    }

    /// Map a pre-transform block id.
    pub fn apply_block(&self, mut b: BlockId) -> BlockId {
        for e in &self.edits {
            if let Edit::BlockInsert { at } = *e {
                if b.0 >= at {
                    b = BlockId(b.0 + 1);
                }
            }
        }
        b
    }

    /// Chain another remap after this one.
    pub fn extend(&mut self, other: &Remap) {
        self.edits.extend(other.edits.iter().copied());
    }

    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::FuncId;

    fn r(b: u32, i: u32) -> InsnRef {
        InsnRef {
            func: FuncId(0),
            block: BlockId(b),
            idx: i,
        }
    }

    #[test]
    fn block_insert_shifts_at_and_after() {
        let mut m = Remap::new();
        m.block_insert(BlockId(2));
        assert_eq!(m.apply(r(1, 0)), r(1, 0));
        assert_eq!(m.apply(r(2, 3)), r(3, 3));
        assert_eq!(m.apply(r(5, 0)), r(6, 0));
    }

    #[test]
    fn insn_insert_shifts_within_block_only() {
        let mut m = Remap::new();
        m.insn_insert(BlockId(1), 0, 2);
        assert_eq!(m.apply(r(1, 0)), r(1, 2));
        assert_eq!(m.apply(r(1, 5)), r(1, 7));
        assert_eq!(m.apply(r(2, 0)), r(2, 0));
    }

    #[test]
    fn edits_compose_in_order() {
        let mut m = Remap::new();
        // Insert a block at 1, then insns into the block that is *now* 2.
        m.block_insert(BlockId(1));
        m.insn_insert(BlockId(2), 1, 1);
        // Pre-transform (1, 1): block shifts to 2, then idx shifts to 2.
        assert_eq!(m.apply(r(1, 1)), r(2, 2));
        // Pre-transform (1, 0): block shifts, idx 0 < 1 unshifted.
        assert_eq!(m.apply(r(1, 0)), r(2, 0));
    }

    #[test]
    fn apply_block_ignores_insn_edits() {
        let mut m = Remap::new();
        m.insn_insert(BlockId(0), 0, 5);
        m.block_insert(BlockId(0));
        assert_eq!(m.apply_block(BlockId(0)), BlockId(1));
    }
}
