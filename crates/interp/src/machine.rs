//! Architectural machine state.

use guardspec_ir::reg::{NUM_FLT_REGS, NUM_INT_REGS, NUM_PRED_REGS};
use guardspec_ir::{FltReg, IntReg, PredReg, Program};

/// Register files plus flat word-addressed memory.
///
/// Integer registers are 64-bit two's-complement; `r0` reads zero and
/// ignores writes.  Memory is word-granular: `lw`/`sw` address words
/// directly (the cache model in `guardspec-sim` scales to byte addresses).
#[derive(Clone, Debug)]
pub struct Machine {
    int: [i64; NUM_INT_REGS as usize],
    flt: [f64; NUM_FLT_REGS as usize],
    pred: [bool; NUM_PRED_REGS as usize],
    pub mem: Vec<i64>,
}

impl Machine {
    /// Fresh machine with `mem_words` zeroed words.
    pub fn new(mem_words: u64) -> Machine {
        Machine {
            int: [0; NUM_INT_REGS as usize],
            flt: [0.0; NUM_FLT_REGS as usize],
            pred: [false; NUM_PRED_REGS as usize],
            mem: vec![0; mem_words as usize],
        }
    }

    /// Machine initialized for `prog`: memory sized and data preloaded.
    pub fn for_program(prog: &Program) -> Machine {
        let mut m = Machine::new(prog.mem_words);
        for &(addr, v) in &prog.data {
            m.mem[addr as usize] = v;
        }
        m
    }

    pub fn get_int(&self, r: IntReg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.int[r.0 as usize]
        }
    }

    pub fn set_int(&mut self, r: IntReg, v: i64) {
        if !r.is_zero() {
            self.int[r.0 as usize] = v;
        }
    }

    pub fn get_flt(&self, r: FltReg) -> f64 {
        self.flt[r.0 as usize]
    }

    pub fn set_flt(&mut self, r: FltReg, v: f64) {
        self.flt[r.0 as usize] = v;
    }

    pub fn get_pred(&self, r: PredReg) -> bool {
        self.pred[r.0 as usize]
    }

    pub fn set_pred(&mut self, r: PredReg, v: bool) {
        self.pred[r.0 as usize] = v;
    }

    /// Word load; `None` when out of range.
    pub fn load(&self, addr: i64) -> Option<i64> {
        if addr < 0 {
            return None;
        }
        self.mem.get(addr as usize).copied()
    }

    /// Word store; `false` when out of range.
    pub fn store(&mut self, addr: i64, v: i64) -> bool {
        if addr < 0 {
            return false;
        }
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// A checksum over memory only.  Transforms allocate scratch registers
    /// from the free pool, so register state legitimately diverges between
    /// a program and its transformed twin; memory is the observable output
    /// and must match exactly.  Semantic-equivalence tests use this.
    pub fn mem_checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for &v in &self.mem {
            h ^= v as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// A simple checksum over memory and integer registers, used by
    /// semantic-equivalence tests: transforms must preserve it.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        for &v in &self.int {
            mix(v as u64);
        }
        for &v in &self.mem {
            mix(v as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::reg::{f, p, r};

    #[test]
    fn r0_is_hardwired_zero() {
        let mut m = Machine::new(16);
        m.set_int(r(0), 42);
        assert_eq!(m.get_int(r(0)), 0);
        m.set_int(r(1), 42);
        assert_eq!(m.get_int(r(1)), 42);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut m = Machine::new(4);
        assert!(m.store(3, 7));
        assert_eq!(m.load(3), Some(7));
        assert!(!m.store(4, 1));
        assert_eq!(m.load(4), None);
        assert_eq!(m.load(-1), None);
        assert!(!m.store(-1, 1));
    }

    #[test]
    fn program_preload() {
        let mut prog = Program::new();
        prog.mem_words = 8;
        prog.data = vec![(0, 10), (5, -3)];
        let m = Machine::for_program(&prog);
        assert_eq!(m.mem[0], 10);
        assert_eq!(m.mem[5], -3);
        assert_eq!(m.mem.len(), 8);
    }

    #[test]
    fn checksum_sensitive_to_state() {
        let mut a = Machine::new(8);
        let b = Machine::new(8);
        assert_eq!(a.checksum(), b.checksum());
        a.set_int(r(3), 1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn flt_and_pred_files() {
        let mut m = Machine::new(1);
        m.set_flt(f(2), 1.5);
        assert_eq!(m.get_flt(f(2)), 1.5);
        m.set_pred(p(3), true);
        assert!(m.get_pred(p(3)));
        assert!(!m.get_pred(p(4)));
    }
}
