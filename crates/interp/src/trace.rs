//! Dynamic instruction trace recording, feeding the cycle-level simulator.
//!
//! The simulator is trace-driven on the *correct* path (the standard
//! technique for this class of study): the functional interpreter supplies
//! the retired instruction stream with branch outcomes and memory addresses;
//! the timing model fetches down *predicted* paths through the static code
//! and uses the trace to resolve branches, squashing wrong-path work.

use crate::exec::{Observer, RetireEvent};
use crate::layout::StaticLayout;
use guardspec_ir::{Instruction, Program};

const F_TAKEN: u8 = 1 << 0;
const F_IS_BRANCH: u8 = 1 << 1;
const F_HAS_ADDR: u8 = 1 << 2;
const F_ANNULLED: u8 = 1 << 3;

/// One retired instruction, 12 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Dense static-site id (see [`StaticLayout`]).
    pub id: u32,
    /// Effective word address for memory ops (valid when `has_addr`).
    addr: u32,
    flags: u8,
}

impl TraceEntry {
    /// Encode a retirement event for static site `id`.
    pub fn from_retire(id: u32, ev: &RetireEvent) -> TraceEntry {
        let mut flags = 0u8;
        if let Some(t) = ev.taken {
            flags |= F_IS_BRANCH;
            if t {
                flags |= F_TAKEN;
            }
        }
        let mut addr = 0u32;
        if let Some(a) = ev.mem_addr {
            flags |= F_HAS_ADDR;
            addr = a.max(0) as u32;
        }
        if ev.annulled {
            flags |= F_ANNULLED;
        }
        TraceEntry { id, addr, flags }
    }

    /// Conditional-branch outcome, if this was a conditional branch.
    pub fn taken(&self) -> Option<bool> {
        (self.flags & F_IS_BRANCH != 0).then_some(self.flags & F_TAKEN != 0)
    }

    /// Effective word address for memory operations.
    pub fn mem_addr(&self) -> Option<u32> {
        (self.flags & F_HAS_ADDR != 0).then_some(self.addr)
    }

    /// Guard predicate was false; the instruction retired with no effect.
    pub fn annulled(&self) -> bool {
        self.flags & F_ANNULLED != 0
    }

    /// Raw `(id, addr, flags)` view, for the binary codec.
    pub(crate) fn to_raw(self) -> (u32, u32, u8) {
        (self.id, self.addr, self.flags)
    }

    /// Rebuild from the raw parts [`TraceEntry::to_raw`] produced.  Returns
    /// `None` for flag bits no entry can carry (codec corruption guard).
    pub(crate) fn from_raw(id: u32, addr: u32, flags: u8) -> Option<TraceEntry> {
        const KNOWN: u8 = F_TAKEN | F_IS_BRANCH | F_HAS_ADDR | F_ANNULLED;
        if flags & !KNOWN != 0 {
            return None;
        }
        // TAKEN without IS_BRANCH, or an address on a non-memory entry,
        // are states `from_retire` never produces.
        if flags & F_TAKEN != 0 && flags & F_IS_BRANCH == 0 {
            return None;
        }
        if flags & F_HAS_ADDR == 0 && addr != 0 {
            return None;
        }
        Some(TraceEntry { id, addr, flags })
    }
}

/// Whether a raw flags byte carries an address field (codec helper).
pub(crate) fn flags_has_addr(flags: u8) -> bool {
    flags & F_HAS_ADDR != 0
}

/// Chunk granularity of a [`SharedTrace`] (shared with [`crate::stream`]).
pub const SHARED_CHUNK_LEN: usize = crate::stream::CHUNK_LEN;

/// A complete dynamic trace stored as refcounted fixed-size chunks, so many
/// simulator instances can read it concurrently (each through its own
/// cursor) without copying it per consumer.
#[derive(Clone, Debug, Default)]
pub struct SharedTrace {
    chunks: Vec<std::sync::Arc<Vec<TraceEntry>>>,
    total: u64,
}

impl SharedTrace {
    /// Build from a flat entry sequence (tests, codec).
    pub fn from_entries(entries: impl IntoIterator<Item = TraceEntry>) -> SharedTrace {
        let mut b = SharedTraceBuilder::default();
        for e in entries {
            b.push(e);
        }
        b.finish()
    }

    /// The refcounted chunks, in trace order.
    pub fn chunks(&self) -> &[std::sync::Arc<Vec<TraceEntry>>] {
        &self.chunks
    }

    /// Total entries across all chunks.
    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterate every entry in order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

/// Incremental [`SharedTrace`] assembly ([`ChunkRecorder`], codec decode).
#[derive(Default)]
pub struct SharedTraceBuilder {
    chunks: Vec<std::sync::Arc<Vec<TraceEntry>>>,
    cur: Vec<TraceEntry>,
    total: u64,
}

impl SharedTraceBuilder {
    pub fn push(&mut self, e: TraceEntry) {
        if self.cur.capacity() == 0 {
            self.cur.reserve_exact(SHARED_CHUNK_LEN);
        }
        self.cur.push(e);
        self.total += 1;
        if self.cur.len() >= SHARED_CHUNK_LEN {
            let full = std::mem::replace(&mut self.cur, Vec::with_capacity(SHARED_CHUNK_LEN));
            self.chunks.push(std::sync::Arc::new(full));
        }
    }

    pub fn finish(mut self) -> SharedTrace {
        if !self.cur.is_empty() {
            self.chunks.push(std::sync::Arc::new(self.cur));
        }
        SharedTrace {
            chunks: self.chunks,
            total: self.total,
        }
    }
}

/// Observer that records the dynamic trace straight into [`SharedTrace`]
/// chunks — the single-interpretation path behind the harness trace stage
/// ("trace once, simulate many").
pub struct ChunkRecorder {
    layout: StaticLayout,
    builder: SharedTraceBuilder,
}

impl ChunkRecorder {
    pub fn new(prog: &Program) -> ChunkRecorder {
        ChunkRecorder {
            layout: StaticLayout::build(prog),
            builder: SharedTraceBuilder::default(),
        }
    }

    pub fn finish(self) -> SharedTrace {
        self.builder.finish()
    }
}

impl Observer for ChunkRecorder {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        self.builder
            .push(TraceEntry::from_retire(self.layout.id(ev.site), ev));
    }
}

/// Observer that records the full dynamic trace.
pub struct TraceRecorder {
    layout: StaticLayout,
    pub entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    pub fn new(prog: &Program) -> TraceRecorder {
        TraceRecorder {
            layout: StaticLayout::build(prog),
            entries: Vec::new(),
        }
    }

    pub fn layout(&self) -> &StaticLayout {
        &self.layout
    }

    pub fn into_parts(self) -> (StaticLayout, Vec<TraceEntry>) {
        (self.layout, self.entries)
    }
}

impl Observer for TraceRecorder {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        self.entries
            .push(TraceEntry::from_retire(self.layout.id(ev.site), ev));
    }
}

/// Record the complete trace of a program run.
pub fn trace_program(
    prog: &Program,
) -> Result<(StaticLayout, Vec<TraceEntry>, crate::exec::ExecResult), crate::exec::ExecError> {
    let mut t = TraceRecorder::new(prog);
    let res = crate::exec::Interp::new(prog).run_with(&mut t)?;
    let (layout, entries) = t.into_parts();
    Ok((layout, entries, res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    #[test]
    fn trace_is_complete_and_ordered() {
        let mut fb = FuncBuilder::new("t");
        fb.block("e");
        fb.li(r(1), 2);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.sw(r(1), r(0), 5);
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, entries, res) = trace_program(&prog).expect("runs");
        assert_eq!(entries.len() as u64, res.summary.retired);
        // li, (sub, bgtz) x2, sw, halt = 1 + 4 + 2
        assert_eq!(entries.len(), 7);
        // First branch taken, second not.
        let branches: Vec<bool> = entries.iter().filter_map(|e| e.taken()).collect();
        assert_eq!(branches, vec![true, false]);
        // Store address recorded.
        let store = entries.iter().find(|e| e.mem_addr().is_some()).unwrap();
        assert_eq!(store.mem_addr(), Some(5));
        // Trace ids are valid layout sites.
        for e in &entries {
            assert!((e.id as usize) < layout.num_sites());
        }
    }

    #[test]
    fn chunk_recorder_matches_flat_recorder() {
        let mut fb = FuncBuilder::new("c");
        fb.block("e");
        fb.li(r(1), 3 * SHARED_CHUNK_LEN as i64 / 2); // spans chunk boundary
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.sw(r(1), r(0), 3);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let (_l, flat, _) = trace_program(&prog).expect("runs");
        let mut rec = ChunkRecorder::new(&prog);
        crate::exec::Interp::new(&prog).run_with(&mut rec).unwrap();
        let shared = rec.finish();
        assert_eq!(shared.len(), flat.len() as u64);
        assert!(shared.chunks().len() >= 2, "trace should span chunks");
        assert!(shared
            .chunks()
            .iter()
            .all(|c| c.len() <= SHARED_CHUNK_LEN && !c.is_empty()));
        assert!(shared.iter().copied().eq(flat.iter().copied()));
        assert!(SharedTrace::from_entries(flat.iter().copied())
            .iter()
            .copied()
            .eq(flat.iter().copied()));
    }

    #[test]
    fn raw_roundtrip_rejects_impossible_states() {
        assert!(TraceEntry::from_raw(1, 0, F_IS_BRANCH | F_TAKEN).is_some());
        assert!(TraceEntry::from_raw(1, 0, F_TAKEN).is_none());
        assert!(TraceEntry::from_raw(1, 0, 1 << 6).is_none());
        assert!(TraceEntry::from_raw(1, 7, 0).is_none(), "addr without flag");
        assert!(TraceEntry::from_raw(1, 7, F_HAS_ADDR).is_some());
    }

    #[test]
    fn annulled_flag_recorded() {
        let mut fb = FuncBuilder::new("a");
        fb.block("e");
        fb.setpi(SetCond::Gt, p(1), r(0), 5); // false
        fb.cmov(r(2), r(1), p(1), true); // annulled
        fb.halt();
        let prog = single_func_program(fb);
        let (_l, entries, _r) = trace_program(&prog).expect("runs");
        assert!(entries[1].annulled());
        assert!(!entries[0].annulled());
    }
}
