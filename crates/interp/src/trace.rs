//! Dynamic instruction trace recording, feeding the cycle-level simulator.
//!
//! The simulator is trace-driven on the *correct* path (the standard
//! technique for this class of study): the functional interpreter supplies
//! the retired instruction stream with branch outcomes and memory addresses;
//! the timing model fetches down *predicted* paths through the static code
//! and uses the trace to resolve branches, squashing wrong-path work.

use crate::exec::{Observer, RetireEvent};
use crate::layout::StaticLayout;
use guardspec_ir::{Instruction, Program};

const F_TAKEN: u8 = 1 << 0;
const F_IS_BRANCH: u8 = 1 << 1;
const F_HAS_ADDR: u8 = 1 << 2;
const F_ANNULLED: u8 = 1 << 3;

/// One retired instruction, 12 bytes.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Dense static-site id (see [`StaticLayout`]).
    pub id: u32,
    /// Effective word address for memory ops (valid when `has_addr`).
    addr: u32,
    flags: u8,
}

impl TraceEntry {
    /// Encode a retirement event for static site `id`.
    pub fn from_retire(id: u32, ev: &RetireEvent) -> TraceEntry {
        let mut flags = 0u8;
        if let Some(t) = ev.taken {
            flags |= F_IS_BRANCH;
            if t {
                flags |= F_TAKEN;
            }
        }
        let mut addr = 0u32;
        if let Some(a) = ev.mem_addr {
            flags |= F_HAS_ADDR;
            addr = a.max(0) as u32;
        }
        if ev.annulled {
            flags |= F_ANNULLED;
        }
        TraceEntry { id, addr, flags }
    }

    /// Conditional-branch outcome, if this was a conditional branch.
    pub fn taken(&self) -> Option<bool> {
        (self.flags & F_IS_BRANCH != 0).then(|| self.flags & F_TAKEN != 0)
    }

    /// Effective word address for memory operations.
    pub fn mem_addr(&self) -> Option<u32> {
        (self.flags & F_HAS_ADDR != 0).then_some(self.addr)
    }

    /// Guard predicate was false; the instruction retired with no effect.
    pub fn annulled(&self) -> bool {
        self.flags & F_ANNULLED != 0
    }
}

/// Observer that records the full dynamic trace.
pub struct TraceRecorder {
    layout: StaticLayout,
    pub entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    pub fn new(prog: &Program) -> TraceRecorder {
        TraceRecorder {
            layout: StaticLayout::build(prog),
            entries: Vec::new(),
        }
    }

    pub fn layout(&self) -> &StaticLayout {
        &self.layout
    }

    pub fn into_parts(self) -> (StaticLayout, Vec<TraceEntry>) {
        (self.layout, self.entries)
    }
}

impl Observer for TraceRecorder {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        self.entries
            .push(TraceEntry::from_retire(self.layout.id(ev.site), ev));
    }
}

/// Record the complete trace of a program run.
pub fn trace_program(
    prog: &Program,
) -> Result<(StaticLayout, Vec<TraceEntry>, crate::exec::ExecResult), crate::exec::ExecError> {
    let mut t = TraceRecorder::new(prog);
    let res = crate::exec::Interp::new(prog).run_with(&mut t)?;
    let (layout, entries) = t.into_parts();
    Ok((layout, entries, res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    #[test]
    fn trace_is_complete_and_ordered() {
        let mut fb = FuncBuilder::new("t");
        fb.block("e");
        fb.li(r(1), 2);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.sw(r(1), r(0), 5);
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, entries, res) = trace_program(&prog).expect("runs");
        assert_eq!(entries.len() as u64, res.summary.retired);
        // li, (sub, bgtz) x2, sw, halt = 1 + 4 + 2
        assert_eq!(entries.len(), 7);
        // First branch taken, second not.
        let branches: Vec<bool> = entries.iter().filter_map(|e| e.taken()).collect();
        assert_eq!(branches, vec![true, false]);
        // Store address recorded.
        let store = entries.iter().find(|e| e.mem_addr().is_some()).unwrap();
        assert_eq!(store.mem_addr(), Some(5));
        // Trace ids are valid layout sites.
        for e in &entries {
            assert!((e.id as usize) < layout.num_sites());
        }
    }

    #[test]
    fn annulled_flag_recorded() {
        let mut fb = FuncBuilder::new("a");
        fb.block("e");
        fb.setpi(SetCond::Gt, p(1), r(0), 5); // false
        fb.cmov(r(2), r(1), p(1), true); // annulled
        fb.halt();
        let prog = single_func_program(fb);
        let (_l, entries, _r) = trace_program(&prog).expect("runs");
        assert!(entries[1].annulled());
        assert!(!entries[0].annulled());
    }
}
