//! Bounded chunked SPSC channel for streaming trace entries.
//!
//! The monolithic [`crate::trace::TraceRecorder`] keeps the whole dynamic
//! trace in memory and forces the interpret and simulate phases to run
//! back-to-back.  This module lets the functional interpreter *produce*
//! [`TraceEntry`] chunks on one thread while the cycle-level pipeline
//! *consumes* them on another: memory is bounded at
//! `MAX_CHUNKS × CHUNK_LEN` entries regardless of trace length, and the two
//! phases overlap on multi-core hosts.
//!
//! The channel is hand-rolled on `Mutex` + `Condvar` (no external deps,
//! matching the harness pool), single-producer single-consumer, with a
//! free-list that recycles chunk buffers between the two sides so the
//! steady state allocates nothing.
//!
//! Shutdown protocol:
//! * the writer `finish()`es (or is dropped) → the channel closes and the
//!   reader drains what remains, after which the exact entry total is
//!   available;
//! * the reader is dropped early (e.g. the simulator errored) → the channel
//!   aborts and subsequent writes are silently discarded, so the producing
//!   interpreter still runs to completion (its functional result is needed
//!   for golden verification).

use crate::exec::{Observer, RetireEvent};
use crate::layout::StaticLayout;
use crate::trace::TraceEntry;
use guardspec_ir::Instruction;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Entries per chunk (~48 KiB of 12-byte entries).
pub const CHUNK_LEN: usize = 4096;
/// Maximum chunks in flight; bounds channel memory.
pub const MAX_CHUNKS: usize = 16;

struct State {
    queue: VecDeque<Vec<TraceEntry>>,
    free: Vec<Vec<TraceEntry>>,
    /// Writer finished; `total` is final once set with `closed`.
    closed: bool,
    /// Reader dropped; the writer discards everything from here on.
    aborted: bool,
    /// Entries sent (final total once `closed`).
    total: u64,
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
}

/// Producing half: push entries, then [`TraceWriter::finish`].
pub struct TraceWriter {
    shared: Arc<Shared>,
    cur: Vec<TraceEntry>,
    aborted_seen: bool,
}

/// Consuming half: receive chunks until `None`.
pub struct TraceReader {
    shared: Arc<Shared>,
}

/// Create a bounded trace channel.
pub fn trace_channel() -> (TraceWriter, TraceReader) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            free: Vec::new(),
            closed: false,
            aborted: false,
            total: 0,
        }),
        cond: Condvar::new(),
    });
    (
        TraceWriter {
            shared: shared.clone(),
            cur: Vec::with_capacity(CHUNK_LEN),
            aborted_seen: false,
        },
        TraceReader { shared },
    )
}

impl TraceWriter {
    /// Append one entry, flushing a full chunk (may block on a full queue).
    pub fn push(&mut self, e: TraceEntry) {
        if self.aborted_seen {
            return;
        }
        self.cur.push(e);
        if self.cur.len() >= CHUNK_LEN {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.queue.len() >= MAX_CHUNKS && !st.aborted {
            st = self.shared.cond.wait(st).unwrap();
        }
        if st.aborted {
            self.aborted_seen = true;
            self.cur.clear();
            return;
        }
        st.total += self.cur.len() as u64;
        let next = st.free.pop().unwrap_or_default();
        st.queue.push_back(std::mem::replace(&mut self.cur, next));
        self.shared.cond.notify_all();
    }

    /// Flush the final partial chunk and close the channel.
    pub fn finish(mut self) {
        self.flush();
        // Drop runs next and marks the channel closed.
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // Close without flushing: an abandoned writer (interpreter error)
        // must still unblock the reader.
        let mut st = self.shared.state.lock().unwrap();
        st.closed = true;
        self.shared.cond.notify_all();
    }
}

impl TraceReader {
    /// Receive the next chunk, blocking; `None` once the channel is closed
    /// and drained (at which point [`TraceReader::total`] is exact).
    pub fn recv(&self) -> Option<Vec<TraceEntry>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(chunk) = st.queue.pop_front() {
                self.shared.cond.notify_all();
                return Some(chunk);
            }
            if st.closed {
                return None;
            }
            st = self.shared.cond.wait(st).unwrap();
        }
    }

    /// Return a consumed chunk's buffer for reuse by the writer.
    pub fn recycle(&self, mut buf: Vec<TraceEntry>) {
        buf.clear();
        let mut st = self.shared.state.lock().unwrap();
        if st.free.len() < MAX_CHUNKS {
            st.free.push(buf);
        }
    }

    /// Total entries sent, once the channel has closed.
    pub fn total(&self) -> Option<u64> {
        let st = self.shared.state.lock().unwrap();
        st.closed.then_some(st.total)
    }
}

impl Drop for TraceReader {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.aborted = true;
        st.queue.clear();
        self.shared.cond.notify_all();
    }
}

/// Observer that streams the trace into a [`TraceWriter`] instead of
/// accumulating it.  Entry encoding is identical to
/// [`crate::trace::TraceRecorder`].
pub struct StreamObserver<'a> {
    layout: &'a StaticLayout,
    writer: TraceWriter,
}

impl<'a> StreamObserver<'a> {
    pub fn new(layout: &'a StaticLayout, writer: TraceWriter) -> StreamObserver<'a> {
        StreamObserver { layout, writer }
    }

    /// Flush and close the channel (call after a successful run).
    pub fn finish(self) {
        self.writer.finish();
    }
}

impl Observer for StreamObserver<'_> {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        self.writer
            .push(TraceEntry::from_retire(self.layout.id(ev.site), ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_program;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn entry(id: u32) -> TraceEntry {
        TraceEntry::from_retire(
            id,
            &RetireEvent {
                site: guardspec_ir::InsnRef {
                    func: guardspec_ir::FuncId(0),
                    block: guardspec_ir::BlockId(0),
                    idx: 0,
                },
                taken: None,
                target_block: None,
                mem_addr: None,
                store_value: None,
                annulled: false,
            },
        )
    }

    #[test]
    fn channel_delivers_all_entries_in_order() {
        let (mut w, rd) = trace_channel();
        let n = 3 * CHUNK_LEN + 17; // several full chunks plus a partial
        let h = std::thread::spawn(move || {
            for i in 0..n {
                w.push(entry(i as u32));
            }
            w.finish();
        });
        let mut got = Vec::new();
        while let Some(chunk) = rd.recv() {
            got.extend(chunk.iter().map(|e| e.id));
            rd.recycle(chunk);
        }
        h.join().unwrap();
        assert_eq!(rd.total(), Some(n as u64));
        assert_eq!(got.len(), n);
        assert!(got.iter().enumerate().all(|(i, &id)| id == i as u32));
    }

    #[test]
    fn dropped_reader_does_not_block_writer() {
        let (mut w, rd) = trace_channel();
        drop(rd);
        // Far more than the channel bound: must not deadlock.
        for i in 0..(MAX_CHUNKS + 2) * CHUNK_LEN {
            w.push(entry(i as u32));
        }
        w.finish();
    }

    #[test]
    fn dropped_writer_closes_channel() {
        let (w, rd) = trace_channel();
        drop(w); // abandoned without finish(), e.g. interpreter error
        assert!(rd.recv().is_none());
        assert_eq!(rd.total(), Some(0));
    }

    #[test]
    fn streamed_trace_matches_recorded_trace() {
        let mut fb = FuncBuilder::new("s");
        fb.block("e");
        fb.li(r(1), 300);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.sw(r(1), r(0), 3);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, recorded, _) = trace_program(&prog).unwrap();

        let (w, rd) = trace_channel();
        let streamed = std::thread::scope(|s| {
            s.spawn(|| {
                let mut obs = StreamObserver::new(&layout, w);
                crate::exec::Interp::new(&prog).run_with(&mut obs).unwrap();
                obs.finish();
            });
            let mut got = Vec::new();
            while let Some(chunk) = rd.recv() {
                got.extend_from_slice(&chunk);
                rd.recycle(chunk);
            }
            got
        });
        assert_eq!(streamed.len(), recorded.len());
        for (a, b) in streamed.iter().zip(recorded.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.taken(), b.taken());
            assert_eq!(a.mem_addr(), b.mem_addr());
            assert_eq!(a.annulled(), b.annulled());
        }
    }
}
