//! Bounded chunked SPMC broadcast channel for streaming trace entries.
//!
//! The monolithic [`crate::trace::TraceRecorder`] keeps the whole dynamic
//! trace in memory and forces the interpret and simulate phases to run
//! back-to-back.  This module lets the functional interpreter *produce*
//! [`TraceEntry`] chunks on one thread while one or more cycle-level
//! pipelines *consume* them on others: memory is bounded at
//! `MAX_CHUNKS × CHUNK_LEN` entries regardless of trace length and of the
//! consumer count, and the phases overlap on multi-core hosts.
//!
//! The channel is hand-rolled on `Mutex` + `Condvar` (no external deps,
//! matching the harness pool).  It is a **broadcast ring**: every consumer
//! sees the complete entry sequence in order through its own cursor.
//! Chunks are refcounted (`Arc`); a chunk leaves the ring once every live
//! consumer has taken it, and consumed buffers are recycled through a
//! free-list back to the writer so the steady state allocates nothing.
//! `broadcast_channel(1)` is exactly the old SPSC channel ([`trace_channel`]
//! is that spelling).
//!
//! Shutdown protocol:
//! * the writer `finish()`es (or is dropped) → the channel closes and each
//!   reader drains what remains, after which the exact entry total is
//!   available;
//! * a reader dropped early releases its claim on all queued chunks; when
//!   the **last** reader goes (e.g. every simulator errored) the channel
//!   aborts and subsequent writes are silently discarded, so the producing
//!   interpreter still runs to completion (its functional result is needed
//!   for golden verification).

use crate::exec::{Observer, RetireEvent};
use crate::layout::StaticLayout;
use crate::trace::TraceEntry;
use guardspec_ir::Instruction;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Entries per chunk (~48 KiB of 12-byte entries).
pub const CHUNK_LEN: usize = 4096;
/// Maximum chunks in flight; bounds channel memory.
pub const MAX_CHUNKS: usize = 16;

/// A queued chunk plus how many live consumers still have to take it.
struct Slot {
    data: Arc<Vec<TraceEntry>>,
    pending: usize,
}

struct State {
    /// In-flight chunks; `queue[0]` has sequence number `base_seq`.
    queue: VecDeque<Slot>,
    base_seq: u64,
    free: Vec<Vec<TraceEntry>>,
    /// Next sequence number each consumer will take (`DETACHED` once
    /// dropped).
    cursors: Vec<u64>,
    /// Live consumers.
    active: usize,
    /// Writer finished; `total` is final once set with `closed`.
    closed: bool,
    /// Entries sent (final total once `closed`).
    total: u64,
}

const DETACHED: u64 = u64::MAX;

impl State {
    /// Drop fully-consumed chunks off the front, recycling their buffers
    /// when no consumer still holds a reference.
    fn pop_consumed(&mut self) {
        while self.queue.front().is_some_and(|s| s.pending == 0) {
            let slot = self.queue.pop_front().unwrap();
            self.base_seq += 1;
            if self.free.len() < MAX_CHUNKS {
                if let Ok(mut buf) = Arc::try_unwrap(slot.data) {
                    buf.clear();
                    self.free.push(buf);
                }
            }
        }
    }
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
}

/// Producing half: push entries, then [`TraceWriter::finish`].
pub struct TraceWriter {
    shared: Arc<Shared>,
    cur: Vec<TraceEntry>,
    aborted_seen: bool,
}

/// One consuming cursor: receives every chunk, in order, until `None`.
pub struct TraceReader {
    shared: Arc<Shared>,
    me: usize,
}

/// Create a bounded single-consumer trace channel (the common cell-local
/// streaming path) — [`broadcast_channel`] with one cursor.
pub fn trace_channel() -> (TraceWriter, TraceReader) {
    let (w, mut rs) = broadcast_channel(1);
    (w, rs.pop().unwrap())
}

/// Create a bounded broadcast trace channel with `consumers` independent
/// cursors.  Every reader observes the full entry sequence; a chunk's
/// buffer is recycled once all readers are past it.
pub fn broadcast_channel(consumers: usize) -> (TraceWriter, Vec<TraceReader>) {
    assert!(consumers >= 1, "broadcast channel needs a consumer");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            base_seq: 0,
            free: Vec::new(),
            cursors: vec![0; consumers],
            active: consumers,
            closed: false,
            total: 0,
        }),
        cond: Condvar::new(),
    });
    let readers = (0..consumers)
        .map(|me| TraceReader {
            shared: shared.clone(),
            me,
        })
        .collect();
    (
        TraceWriter {
            shared,
            cur: Vec::with_capacity(CHUNK_LEN),
            aborted_seen: false,
        },
        readers,
    )
}

impl TraceWriter {
    /// Append one entry, flushing a full chunk (may block on a full ring).
    pub fn push(&mut self, e: TraceEntry) {
        if self.aborted_seen {
            return;
        }
        self.cur.push(e);
        if self.cur.len() >= CHUNK_LEN {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.cur.is_empty() {
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.queue.len() >= MAX_CHUNKS && st.active > 0 {
            st = self.shared.cond.wait(st).unwrap();
        }
        if st.active == 0 {
            self.aborted_seen = true;
            self.cur.clear();
            return;
        }
        st.total += self.cur.len() as u64;
        let next = st.free.pop().unwrap_or_default();
        let full = std::mem::replace(&mut self.cur, next);
        let pending = st.active;
        st.queue.push_back(Slot {
            data: Arc::new(full),
            pending,
        });
        self.shared.cond.notify_all();
    }

    /// Flush the final partial chunk and close the channel.
    pub fn finish(mut self) {
        self.flush();
        // Drop runs next and marks the channel closed.
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // Close without flushing: an abandoned writer (interpreter error)
        // must still unblock the readers.
        let mut st = self.shared.state.lock().unwrap();
        st.closed = true;
        self.shared.cond.notify_all();
    }
}

impl TraceReader {
    /// Receive the next chunk, blocking; `None` once the channel is closed
    /// and this cursor has drained it (at which point
    /// [`TraceReader::total`] is exact).
    pub fn recv(&self) -> Option<Arc<Vec<TraceEntry>>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            let seq = st.cursors[self.me];
            if seq < st.base_seq + st.queue.len() as u64 {
                let idx = (seq - st.base_seq) as usize;
                let slot = &mut st.queue[idx];
                let data = slot.data.clone();
                slot.pending -= 1;
                st.cursors[self.me] = seq + 1;
                st.pop_consumed();
                // Space may have opened for the writer, and siblings may be
                // waiting on the same chunk bookkeeping.
                self.shared.cond.notify_all();
                return Some(data);
            }
            if st.closed {
                return None;
            }
            st = self.shared.cond.wait(st).unwrap();
        }
    }

    /// Return a consumed chunk's buffer for reuse by the writer.  With
    /// several consumers only the last one back actually recycles (the
    /// others still held references); that is what keeps the steady state
    /// allocation-free without any cross-consumer coordination.
    pub fn recycle(&self, buf: Arc<Vec<TraceEntry>>) {
        if let Ok(mut buf) = Arc::try_unwrap(buf) {
            buf.clear();
            let mut st = self.shared.state.lock().unwrap();
            if st.free.len() < MAX_CHUNKS {
                st.free.push(buf);
            }
        }
    }

    /// Total entries sent, once the channel has closed.
    pub fn total(&self) -> Option<u64> {
        let st = self.shared.state.lock().unwrap();
        st.closed.then_some(st.total)
    }
}

impl Drop for TraceReader {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        // Release this cursor's claim on everything still queued ahead of
        // it, then let fully-consumed chunks leave the ring.
        let seq = st.cursors[self.me];
        if seq != DETACHED {
            let base = st.base_seq;
            let start = seq.max(base) - base;
            for i in start as usize..st.queue.len() {
                st.queue[i].pending -= 1;
            }
            st.cursors[self.me] = DETACHED;
            st.active -= 1;
            st.pop_consumed();
        }
        self.shared.cond.notify_all();
    }
}

/// Observer that streams the trace into a [`TraceWriter`] instead of
/// accumulating it.  Entry encoding is identical to
/// [`crate::trace::TraceRecorder`].
pub struct StreamObserver<'a> {
    layout: &'a StaticLayout,
    writer: TraceWriter,
}

impl<'a> StreamObserver<'a> {
    pub fn new(layout: &'a StaticLayout, writer: TraceWriter) -> StreamObserver<'a> {
        StreamObserver { layout, writer }
    }

    /// Flush and close the channel (call after a successful run).
    pub fn finish(self) {
        self.writer.finish();
    }
}

impl Observer for StreamObserver<'_> {
    fn on_retire(&mut self, _insn: &Instruction, ev: &RetireEvent) {
        self.writer
            .push(TraceEntry::from_retire(self.layout.id(ev.site), ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_program;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn entry(id: u32) -> TraceEntry {
        TraceEntry::from_retire(
            id,
            &RetireEvent {
                site: guardspec_ir::InsnRef {
                    func: guardspec_ir::FuncId(0),
                    block: guardspec_ir::BlockId(0),
                    idx: 0,
                },
                taken: None,
                target_block: None,
                mem_addr: None,
                store_value: None,
                annulled: false,
            },
        )
    }

    #[test]
    fn channel_delivers_all_entries_in_order() {
        let (mut w, rd) = trace_channel();
        let n = 3 * CHUNK_LEN + 17; // several full chunks plus a partial
        let h = std::thread::spawn(move || {
            for i in 0..n {
                w.push(entry(i as u32));
            }
            w.finish();
        });
        let mut got = Vec::new();
        while let Some(chunk) = rd.recv() {
            got.extend(chunk.iter().map(|e| e.id));
            rd.recycle(chunk);
        }
        h.join().unwrap();
        assert_eq!(rd.total(), Some(n as u64));
        assert_eq!(got.len(), n);
        assert!(got.iter().enumerate().all(|(i, &id)| id == i as u32));
    }

    #[test]
    fn broadcast_delivers_everything_to_every_consumer() {
        let consumers = 3;
        let n = 5 * CHUNK_LEN + 123;
        let (mut w, readers) = broadcast_channel(consumers);
        let handles: Vec<_> = readers
            .into_iter()
            .map(|rd| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(chunk) = rd.recv() {
                        got.extend(chunk.iter().map(|e| e.id));
                        rd.recycle(chunk);
                    }
                    assert_eq!(rd.total(), Some(n as u64));
                    got
                })
            })
            .collect();
        for i in 0..n {
            w.push(entry(i as u32));
        }
        w.finish();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.len(), n);
            assert!(got.iter().enumerate().all(|(i, &id)| id == i as u32));
        }
    }

    #[test]
    fn one_dropped_consumer_does_not_stall_the_rest() {
        let n = (MAX_CHUNKS + 4) * CHUNK_LEN; // more than the ring holds
        let (mut w, mut readers) = broadcast_channel(2);
        let slowpoke = readers.pop().unwrap();
        let keeper = readers.pop().unwrap();
        let h = std::thread::spawn(move || {
            for i in 0..n {
                w.push(entry(i as u32));
            }
            w.finish();
        });
        // Take one chunk on the doomed cursor, then abandon it mid-stream.
        let first = slowpoke.recv().expect("first chunk");
        slowpoke.recycle(first);
        drop(slowpoke);
        let mut count = 0usize;
        while let Some(chunk) = keeper.recv() {
            count += chunk.len();
            keeper.recycle(chunk);
        }
        h.join().unwrap();
        assert_eq!(count, n, "surviving consumer must see the full trace");
    }

    #[test]
    fn dropped_reader_does_not_block_writer() {
        let (mut w, rd) = trace_channel();
        drop(rd);
        // Far more than the channel bound: must not deadlock.
        for i in 0..(MAX_CHUNKS + 2) * CHUNK_LEN {
            w.push(entry(i as u32));
        }
        w.finish();
    }

    #[test]
    fn all_readers_dropped_aborts_writer() {
        let (mut w, readers) = broadcast_channel(3);
        drop(readers);
        for i in 0..(MAX_CHUNKS + 2) * CHUNK_LEN {
            w.push(entry(i as u32));
        }
        w.finish();
    }

    #[test]
    fn dropped_writer_closes_channel() {
        let (w, rd) = trace_channel();
        drop(w); // abandoned without finish(), e.g. interpreter error
        assert!(rd.recv().is_none());
        assert_eq!(rd.total(), Some(0));
    }

    #[test]
    fn streamed_trace_matches_recorded_trace() {
        let mut fb = FuncBuilder::new("s");
        fb.block("e");
        fb.li(r(1), 300);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.sw(r(1), r(0), 3);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let (layout, recorded, _) = trace_program(&prog).unwrap();

        let (w, rd) = trace_channel();
        let streamed = std::thread::scope(|s| {
            s.spawn(|| {
                let mut obs = StreamObserver::new(&layout, w);
                crate::exec::Interp::new(&prog).run_with(&mut obs).unwrap();
                obs.finish();
            });
            let mut got = Vec::new();
            while let Some(chunk) = rd.recv() {
                got.extend_from_slice(&chunk);
                rd.recycle(chunk);
            }
            got
        });
        assert_eq!(streamed.len(), recorded.len());
        for (a, b) in streamed.iter().zip(recorded.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.taken(), b.taken());
            assert_eq!(a.mem_addr(), b.mem_addr());
            assert_eq!(a.annulled(), b.annulled());
        }
    }
}
