//! Dense numbering of static instruction sites.
//!
//! Both the profiler and the cycle-level simulator want a flat `u32` id per
//! static instruction, plus the pseudo-PC the branch-prediction structures
//! hash on.  Ids are assigned in layout order (function, block, index), so
//! `id + 1` is the next instruction in fetch order within a block.

use guardspec_ir::{BlockId, FuncId, InsnRef, Program};

/// Layout table mapping `InsnRef` <-> dense id <-> pseudo-PC.
///
/// `id()` is on the retire path of both the profiler and the trace
/// recorder (once per dynamic instruction), so it is pure arithmetic over
/// a dense per-function table of block-start ids — no hashing.
#[derive(Clone, Debug)]
pub struct StaticLayout {
    sites: Vec<InsnRef>,
    /// `starts[func][block]` = first dense id of that block (empty blocks
    /// get the id the next instruction would have).
    starts: Vec<Vec<u32>>,
}

impl StaticLayout {
    pub fn build(prog: &Program) -> StaticLayout {
        let mut sites = Vec::with_capacity(prog.num_insns());
        let mut starts = Vec::new();
        for (fid, f) in prog.iter_funcs() {
            let mut fstarts = Vec::new();
            for (bid, b) in f.iter_blocks() {
                fstarts.push(sites.len() as u32);
                for idx in 0..b.insns.len() {
                    sites.push(InsnRef {
                        func: fid,
                        block: bid,
                        idx: idx as u32,
                    });
                }
            }
            starts.push(fstarts);
        }
        StaticLayout { sites, starts }
    }

    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    pub fn id(&self, site: InsnRef) -> u32 {
        self.starts[site.func.index()][site.block.index()] + site.idx
    }

    pub fn site(&self, id: u32) -> InsnRef {
        self.sites[id as usize]
    }

    /// Dense id of the first instruction of a block (empty blocks get the
    /// id the next instruction would have).
    pub fn block_start(&self, func: FuncId, block: BlockId) -> u32 {
        self.starts[func.index()][block.index()]
    }

    /// Pseudo program counter: 4 bytes per instruction starting at 0x1000,
    /// matching [`Program::assign_pcs`].
    pub fn pc(&self, id: u32) -> u64 {
        0x1000 + 4 * id as u64
    }

    pub fn pc_of(&self, site: InsnRef) -> u64 {
        self.pc(self.id(site))
    }

    /// Per-block `(first_site_id, len)` spans in layout order (function,
    /// then block).  Empty blocks yield zero-length spans.  Ids are
    /// assigned contiguously in this exact order, so flattening the
    /// per-function start tables and differencing adjacent bounds
    /// recovers every span.
    pub fn block_spans(&self) -> Vec<(u32, u32)> {
        let mut bounds: Vec<u32> = self.starts.iter().flatten().copied().collect();
        bounds.push(self.sites.len() as u32);
        bounds.windows(2).map(|w| (w[0], w[1] - w[0])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    #[test]
    fn ids_are_dense_and_layout_ordered() {
        let mut fb = FuncBuilder::new("m");
        fb.block("a");
        fb.li(r(1), 1);
        fb.li(r(2), 2);
        fb.block("b");
        fb.halt();
        let prog = single_func_program(fb);
        let lay = StaticLayout::build(&prog);
        assert_eq!(lay.num_sites(), 3);
        for i in 0..3 {
            assert_eq!(lay.id(lay.site(i)), i);
        }
        assert_eq!(lay.block_start(FuncId(0), BlockId(0)), 0);
        assert_eq!(lay.block_start(FuncId(0), BlockId(1)), 2);
        assert_eq!(lay.pc(0), 0x1000);
        assert_eq!(lay.pc(2), 0x1008);
    }

    #[test]
    fn pcs_agree_with_program_assignment() {
        let mut fb = FuncBuilder::new("m");
        fb.block("a");
        fb.li(r(1), 1);
        fb.block("b");
        fb.halt();
        let prog = single_func_program(fb);
        let lay = StaticLayout::build(&prog);
        let pcs = prog.assign_pcs();
        for i in 0..lay.num_sites() as u32 {
            assert_eq!(lay.pc(i), pcs.pc(lay.site(i)));
        }
    }
}
