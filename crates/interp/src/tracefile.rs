//! Compact binary serialization of dynamic traces — the persistent half of
//! "trace once, simulate many".
//!
//! The harness caches one encoded trace per distinct (program text, scale)
//! so warm experiment runs skip functional interpretation entirely.  Traces
//! are large (millions of entries at paper scale), so the format is built
//! for size and decode speed rather than generality:
//!
//! * a fixed header carrying a format magic/version, the producing
//!   [`StaticLayout`]'s site count and digest, an opaque caller-supplied
//!   execution digest, and the exact entry count;
//! * one record per entry: the flags byte, then the **zigzag-varint delta**
//!   of the site id against the previous entry (fetch mostly walks forward
//!   through a block, so deltas are tiny), then — only for memory
//!   operations — the zigzag-varint delta of the effective address against
//!   the previous memory operation (strided access patterns collapse to a
//!   byte);
//! * a trailing 64-bit FNV-1a checksum over **everything before it**
//!   (header included), so any single corrupted byte fails decode loudly.
//!
//! Typical density is ~1.5–2.5 bytes per entry versus 12 bytes in memory.
//! Decoders never trust the input: truncation, bad counts, unknown flag
//! bits, out-of-range site ids and checksum mismatches all return a
//! [`TraceFileError`], which cache consumers treat as a miss (re-interpret
//! and overwrite — the same recovery discipline as the JSON stage caches).

use crate::layout::StaticLayout;
use crate::trace::{SharedTrace, SharedTraceBuilder, TraceEntry};
use std::fmt;

/// `"GSTF"` — guardspec trace file.
pub const MAGIC: [u8; 4] = *b"GSTF";
/// Bumped on any incompatible format change; old blobs then decode-fail
/// and are re-recorded.
pub const VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 2 + 4 + 8 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

/// Why a blob failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFileError {
    Truncated,
    BadMagic,
    BadVersion(u16),
    BadChecksum { want: u64, got: u64 },
    BadEntry { index: u64 },
    SiteOutOfRange { index: u64, id: u64, num_sites: u32 },
    TrailingBytes(usize),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Truncated => write!(f, "trace blob truncated"),
            TraceFileError::BadMagic => write!(f, "not a trace blob (bad magic)"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceFileError::BadChecksum { want, got } => {
                write!(
                    f,
                    "trace checksum mismatch: stored {want:016x}, computed {got:016x}"
                )
            }
            TraceFileError::BadEntry { index } => write!(f, "malformed trace entry {index}"),
            TraceFileError::SiteOutOfRange {
                index,
                id,
                num_sites,
            } => write!(
                f,
                "trace entry {index}: site id {id} out of range (layout has {num_sites})"
            ),
            TraceFileError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// A successfully decoded blob: the header fields a consumer should verify
/// against its own layout/run, plus the trace itself.
#[derive(Debug)]
pub struct DecodedTrace {
    /// Site count of the layout the trace was recorded against.
    pub num_sites: u32,
    /// [`layout_digest`] of that layout.
    pub layout_digest: u64,
    /// Opaque caller digest stored at encode time (e.g. a hash of the
    /// run's golden memory results).
    pub exec_digest: u64,
    pub trace: SharedTrace,
}

/// 64-bit FNV-1a (stable across runs/platforms; fast enough to be
/// invisible next to varint coding).
fn fnv64(state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut s = state;
    for &b in bytes {
        s ^= b as u64;
        s = s.wrapping_mul(PRIME);
    }
    s
}
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A stable digest of the layout geometry (site count + per-block start
/// ids), so a blob recorded against a different program shape can never be
/// replayed silently even if site ids happen to stay in range.
pub fn layout_digest(layout: &StaticLayout) -> u64 {
    let mut s = fnv64(FNV_OFFSET, &(layout.num_sites() as u64).to_le_bytes());
    for id in 0..layout.num_sites() as u32 {
        let site = layout.site(id);
        s = fnv64(
            s,
            &[
                site.func.0.to_le_bytes(),
                site.block.0.to_le_bytes(),
                site.idx.to_le_bytes(),
            ]
            .concat(),
        );
    }
    s
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceFileError> {
        let end = self.pos.checked_add(n).ok_or(TraceFileError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(TraceFileError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, TraceFileError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = *self.bytes.get(self.pos).ok_or(TraceFileError::Truncated)?;
            self.pos += 1;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceFileError::Truncated)
    }
}

/// Encode a trace recorded against `layout` into a self-checking blob.
/// `exec_digest` is stored verbatim for the consumer to interpret.
pub fn encode<'a>(
    layout: &StaticLayout,
    entries: impl IntoIterator<Item = &'a TraceEntry>,
    exec_digest: u64,
) -> Vec<u8> {
    let mut body = Vec::new();
    let mut count = 0u64;
    let mut prev_id = 0i64;
    let mut prev_addr = 0i64;
    for e in entries {
        let (id, addr, flags) = e.to_raw();
        body.push(flags);
        push_varint(&mut body, zigzag(id as i64 - prev_id));
        prev_id = id as i64;
        if e.mem_addr().is_some() {
            push_varint(&mut body, zigzag(addr as i64 - prev_addr));
            prev_addr = addr as i64;
        }
        count += 1;
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved flags
    out.extend_from_slice(&(layout.num_sites() as u32).to_le_bytes());
    out.extend_from_slice(&layout_digest(layout).to_le_bytes());
    out.extend_from_slice(&exec_digest.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&body);
    let sum = fnv64(FNV_OFFSET, &out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes(b.try_into().unwrap())
}
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

/// Decode a blob produced by [`encode`], verifying structure and checksum.
pub fn decode(bytes: &[u8]) -> Result<DecodedTrace, TraceFileError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(TraceFileError::Truncated);
    }
    // Checksum first: covers header + body, stored in the final 8 bytes.
    let body_end = bytes.len() - CHECKSUM_LEN;
    let want = le_u64(&bytes[body_end..]);
    let got = fnv64(FNV_OFFSET, &bytes[..body_end]);
    if want != got {
        return Err(TraceFileError::BadChecksum { want, got });
    }

    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = le_u16(r.take(2)?);
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    let _reserved = le_u16(r.take(2)?);
    let num_sites = le_u32(r.take(4)?);
    let layout_digest = le_u64(r.take(8)?);
    let exec_digest = le_u64(r.take(8)?);
    let count = le_u64(r.take(8)?);

    let mut builder = SharedTraceBuilder::default();
    let mut prev_id = 0i64;
    let mut prev_addr = 0i64;
    for index in 0..count {
        if r.pos >= body_end {
            return Err(TraceFileError::Truncated);
        }
        let flags = r.take(1)?[0];
        let id = prev_id + unzigzag(r.varint()?);
        if id < 0 || id as u64 >= num_sites as u64 {
            return Err(TraceFileError::SiteOutOfRange {
                index,
                id: id as u64,
                num_sites,
            });
        }
        prev_id = id;
        let mut addr = 0i64;
        if crate::trace::flags_has_addr(flags) {
            addr = prev_addr + unzigzag(r.varint()?);
            if !(0..=u32::MAX as i64).contains(&addr) {
                return Err(TraceFileError::BadEntry { index });
            }
            prev_addr = addr;
        }
        let entry = TraceEntry::from_raw(id as u32, addr as u32, flags)
            .ok_or(TraceFileError::BadEntry { index })?;
        builder.push(entry);
    }
    if r.pos != body_end {
        return Err(TraceFileError::TrailingBytes(body_end - r.pos));
    }
    Ok(DecodedTrace {
        num_sites,
        layout_digest,
        exec_digest,
        trace: builder.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_program;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn sample_program() -> guardspec_ir::Program {
        let mut fb = FuncBuilder::new("s");
        fb.block("e");
        fb.li(r(1), 700);
        fb.block("loop");
        fb.subi(r(1), r(1), 1);
        fb.sw(r(1), r(0), 3);
        fb.lw(r(2), r(0), 3);
        fb.bgtz(r(1), "loop");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    fn sample_blob() -> (StaticLayout, Vec<TraceEntry>, Vec<u8>) {
        let prog = sample_program();
        let (layout, entries, _) = trace_program(&prog).expect("runs");
        let blob = encode(&layout, &entries, 0xfeed_beef);
        (layout, entries, blob)
    }

    #[test]
    fn roundtrip_preserves_every_entry_and_header() {
        let (layout, entries, blob) = sample_blob();
        assert!(
            blob.len() < entries.len() * 4 + 64,
            "blob too large: {} bytes for {} entries",
            blob.len(),
            entries.len()
        );
        let d = decode(&blob).expect("decodes");
        assert_eq!(d.num_sites, layout.num_sites() as u32);
        assert_eq!(d.layout_digest, layout_digest(&layout));
        assert_eq!(d.exec_digest, 0xfeed_beef);
        assert_eq!(d.trace.len(), entries.len() as u64);
        assert!(d.trace.iter().copied().eq(entries.iter().copied()));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let prog = sample_program();
        let layout = StaticLayout::build(&prog);
        let d = decode(&encode(&layout, [], 7)).expect("decodes");
        assert!(d.trace.is_empty());
        assert_eq!(d.exec_digest, 7);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (_, _, blob) = sample_blob();
        for pos in 0..blob.len() {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "flip at byte {pos}/{} decoded successfully",
                blob.len()
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (_, _, blob) = sample_blob();
        for len in 0..blob.len() {
            assert!(decode(&blob[..len]).is_err(), "prefix of {len} decoded");
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert!(decode(&extended).is_err(), "trailing byte decoded");
    }

    #[test]
    fn layout_digest_distinguishes_shapes() {
        let a = StaticLayout::build(&sample_program());
        let mut fb = FuncBuilder::new("other");
        fb.block("e");
        fb.li(r(1), 1);
        fb.halt();
        let b = StaticLayout::build(&single_func_program(fb));
        assert_ne!(layout_digest(&a), layout_digest(&b));
    }
}
