//! # guardspec-interp
//!
//! Functional execution of guardspec IR programs, plus the profiling
//! infrastructure the paper's feedback heuristics consume:
//!
//! * [`machine`] — architectural state (register files + flat word memory),
//! * [`exec`] — the interpreter proper, with an [`exec::Observer`] hook that
//!   sees every retired instruction (this is how profiles and timing-model
//!   traces are collected),
//! * [`layout`] — dense numbering of static instruction sites and their
//!   pseudo-PCs (what the 512-entry branch-history table indexes),
//! * [`blocks`] — a block-granular cursor over recorded traces (maximal
//!   consecutive-site runs), the trace-side half of the compiled
//!   simulator's decoded-uop cache,
//! * [`bitvec`] — compact branch-outcome bit vectors ("the previous branch
//!   outcomes are recorded using bit vectors", Section 5),
//! * [`profile`] — the profiler observer: per-branch outcome vectors, edge
//!   frequencies, dynamic instruction mix,
//! * [`trace`] — the trace recorder feeding the cycle-level simulator,
//!   including the chunked [`trace::SharedTrace`] form many simulator
//!   instances can consume concurrently,
//! * [`stream`] — a bounded chunked SPMC broadcast channel so one
//!   interpreter run can feed one or many simulators incrementally instead
//!   of the trace being materialized in full,
//! * [`tracefile`] — a compact self-checking binary trace codec, the
//!   persistent form behind the harness trace cache.

pub mod bitvec;
pub mod blocks;
pub mod exec;
pub mod layout;
pub mod machine;
pub mod profile;
pub mod stream;
pub mod trace;
pub mod tracefile;

pub use bitvec::BitVec;
pub use blocks::{block_of_table, BlockCursor, BlockRun};
pub use exec::{run, ExecError, ExecResult, ExecSummary, Interp, Observer, RetireEvent};
pub use layout::StaticLayout;
pub use machine::Machine;
pub use profile::{BranchProfile, Profile, Profiler};
pub use stream::{broadcast_channel, trace_channel, StreamObserver, TraceReader, TraceWriter};
pub use trace::{ChunkRecorder, SharedTrace, TraceEntry, TraceRecorder};
