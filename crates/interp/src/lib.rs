//! # guardspec-interp
//!
//! Functional execution of guardspec IR programs, plus the profiling
//! infrastructure the paper's feedback heuristics consume:
//!
//! * [`machine`] — architectural state (register files + flat word memory),
//! * [`exec`] — the interpreter proper, with an [`exec::Observer`] hook that
//!   sees every retired instruction (this is how profiles and timing-model
//!   traces are collected),
//! * [`layout`] — dense numbering of static instruction sites and their
//!   pseudo-PCs (what the 512-entry branch-history table indexes),
//! * [`bitvec`] — compact branch-outcome bit vectors ("the previous branch
//!   outcomes are recorded using bit vectors", Section 5),
//! * [`profile`] — the profiler observer: per-branch outcome vectors, edge
//!   frequencies, dynamic instruction mix,
//! * [`trace`] — the trace recorder feeding the cycle-level simulator,
//! * [`stream`] — a bounded chunked SPSC channel so the trace can feed the
//!   simulator incrementally instead of being materialized in full.

pub mod bitvec;
pub mod exec;
pub mod layout;
pub mod machine;
pub mod profile;
pub mod stream;
pub mod trace;

pub use bitvec::BitVec;
pub use exec::{run, ExecError, ExecResult, ExecSummary, Interp, Observer, RetireEvent};
pub use layout::StaticLayout;
pub use machine::Machine;
pub use profile::{BranchProfile, Profile, Profiler};
pub use stream::{trace_channel, StreamObserver, TraceReader, TraceWriter};
pub use trace::{TraceEntry, TraceRecorder};
