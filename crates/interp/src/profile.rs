//! The profiler: per-branch outcome bit vectors and dynamic statistics.
//!
//! This is the instrumentation pass of Section 5: "Each loop is instrumented
//! with additional feedback metrics which would tell ... branch execution
//! frequency, distribution of loop iteration space into classes with similar
//! branch execution behavior.  The previous branch outcomes are recorded
//! using bit vectors."

use crate::bitvec::BitVec;
use crate::exec::{class_index, Observer, RetireEvent};
use crate::layout::StaticLayout;
use guardspec_ir::{FuClass, InsnRef, Instruction, Program};

/// Profile data for one static conditional-branch site.
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    /// Dynamic executions of the branch.
    pub executed: u64,
    /// How many were taken.
    pub taken: u64,
    /// The outcome bit vector, in execution order (capped; counts above are
    /// exact regardless).
    pub outcomes: BitVec,
}

impl BranchProfile {
    /// Taken frequency in `[0, 1]`; 0 for never-executed branches.
    pub fn taken_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.taken as f64 / self.executed as f64
        }
    }
}

/// Complete profile of one program run.
///
/// Branch profiles are stored as two parallel vectors sorted by site
/// (which is also dense layout-id order, since ids are assigned in
/// `InsnRef` order), so iteration visits sites exactly as the previous
/// `BTreeMap` representation did while lookups stay a binary search over
/// a compact array.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Per static-site execution counts, indexed by dense layout id.
    pub site_counts: Vec<u64>,
    /// Executed conditional-branch sites, sorted.
    branch_sites: Vec<InsnRef>,
    /// Profile for `branch_sites[i]`.
    branch_profiles: Vec<BranchProfile>,
    /// Total retired instructions.
    pub retired: u64,
    /// Retired per functional-unit class.
    pub by_class: [u64; 8],
    /// Annulled (guard-false) instructions.
    pub annulled: u64,
}

impl Profile {
    /// Build from (site, profile) pairs in any order; used by the profiler
    /// and by deserialization (which has no layout at hand).
    pub fn from_branch_pairs(
        site_counts: Vec<u64>,
        mut pairs: Vec<(InsnRef, BranchProfile)>,
        retired: u64,
        by_class: [u64; 8],
        annulled: u64,
    ) -> Profile {
        pairs.sort_by_key(|(site, _)| *site);
        let mut branch_sites = Vec::with_capacity(pairs.len());
        let mut branch_profiles = Vec::with_capacity(pairs.len());
        for (site, bp) in pairs {
            branch_sites.push(site);
            branch_profiles.push(bp);
        }
        Profile {
            site_counts,
            branch_sites,
            branch_profiles,
            retired,
            by_class,
            annulled,
        }
    }

    /// Fraction of the dynamic instruction stream that is branches
    /// (conditional + unconditional control) — the paper's Table 1
    /// "Branch Instructions (%)" column.
    pub fn branch_fraction(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        self.by_class[class_index(FuClass::Branch)] as f64 / self.retired as f64
    }

    /// Dynamic instruction count in millions (Table 1 column).
    pub fn dynamic_millions(&self) -> f64 {
        self.retired as f64 / 1.0e6
    }

    /// The branch profile for a site, if it executed.
    pub fn branch(&self, site: InsnRef) -> Option<&BranchProfile> {
        let i = self.branch_sites.binary_search(&site).ok()?;
        Some(&self.branch_profiles[i])
    }

    /// Executed branch sites with their profiles, in site order.
    pub fn branches(&self) -> impl Iterator<Item = (InsnRef, &BranchProfile)> {
        self.branch_sites
            .iter()
            .copied()
            .zip(self.branch_profiles.iter())
    }

    /// Number of distinct executed conditional-branch sites.
    pub fn num_branch_sites(&self) -> usize {
        self.branch_sites.len()
    }
}

/// Observer that accumulates a [`Profile`].
///
/// Branch data is recorded into a dense vector indexed by layout site id,
/// so the per-retire hot path is array arithmetic with no tree or hash
/// operations; [`Profiler::finish`] compacts it to executed sites only.
pub struct Profiler {
    layout: StaticLayout,
    site_counts: Vec<u64>,
    /// Dense by site id; only conditional-branch sites are ever touched.
    branch_by_id: Vec<BranchProfile>,
    retired: u64,
    by_class: [u64; 8],
    annulled: u64,
    /// Maximum outcome-vector length recorded per branch (memory guard).
    pub max_outcomes: usize,
}

impl Profiler {
    pub fn new(prog: &Program) -> Profiler {
        let layout = StaticLayout::build(prog);
        let n = layout.num_sites();
        Profiler {
            layout,
            site_counts: vec![0; n],
            branch_by_id: vec![BranchProfile::default(); n],
            retired: 0,
            by_class: [0; 8],
            annulled: 0,
            max_outcomes: 1 << 22,
        }
    }

    pub fn layout(&self) -> &StaticLayout {
        &self.layout
    }

    pub fn finish(self) -> Profile {
        // Ids are assigned in `InsnRef` order, so this pass yields pairs
        // already sorted by site.
        let pairs: Vec<(InsnRef, BranchProfile)> = self
            .branch_by_id
            .into_iter()
            .enumerate()
            .filter(|(_, bp)| bp.executed > 0)
            .map(|(id, bp)| (self.layout.site(id as u32), bp))
            .collect();
        Profile::from_branch_pairs(
            self.site_counts,
            pairs,
            self.retired,
            self.by_class,
            self.annulled,
        )
    }
}

impl Observer for Profiler {
    fn on_retire(&mut self, insn: &Instruction, ev: &RetireEvent) {
        let id = self.layout.id(ev.site);
        self.site_counts[id as usize] += 1;
        self.retired += 1;
        self.by_class[class_index(insn.fu_class())] += 1;
        if ev.annulled {
            self.annulled += 1;
            return;
        }
        if let Some(taken) = ev.taken {
            let bp = &mut self.branch_by_id[id as usize];
            bp.executed += 1;
            bp.taken += taken as u64;
            if bp.outcomes.len() < self.max_outcomes {
                bp.outcomes.push(taken);
            }
        }
    }
}

/// Convenience: run `prog` and return its profile together with the
/// execution result.
pub fn profile_program(
    prog: &Program,
) -> Result<(Profile, crate::exec::ExecResult), crate::exec::ExecError> {
    let mut p = Profiler::new(prog);
    let res = crate::exec::Interp::new(prog).run_with(&mut p)?;
    Ok((p.finish(), res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;
    use guardspec_ir::{BlockId, FuncId};

    /// A loop whose branch is taken on iterations 0..6 and not on 7..9:
    /// a phased (non-monotonic overall) branch.
    fn phased_loop() -> guardspec_ir::Program {
        let mut fb = FuncBuilder::new("ph");
        fb.block("e");
        fb.li(r(1), 0); // i
        fb.block("loop");
        fb.slti(r(2), r(1), 7);
        fb.bne(r(2), r(0), "skip"); // taken while i < 7
        fb.block("notk");
        fb.addi(r(3), r(3), 1);
        fb.block("skip");
        fb.addi(r(1), r(1), 1);
        fb.slti(r(4), r(1), 10);
        fb.bne(r(4), r(0), "loop");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    #[test]
    fn branch_outcome_vectors_capture_phases() {
        let prog = phased_loop();
        let (profile, _res) = profile_program(&prog).expect("runs");
        // The forward branch sits in block `loop` (BlockId 1), idx 1.
        let site = InsnRef {
            func: FuncId(0),
            block: BlockId(1),
            idx: 1,
        };
        let bp = profile.branch(site).expect("profiled");
        assert_eq!(bp.executed, 10);
        assert_eq!(bp.taken, 7);
        let pat: String = bp
            .outcomes
            .iter()
            .map(|b| if b { 'T' } else { 'F' })
            .collect();
        assert_eq!(pat, "TTTTTTTFFF");
        assert!((bp.taken_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn site_counts_and_mix() {
        let prog = phased_loop();
        let (profile, res) = profile_program(&prog).expect("runs");
        assert_eq!(profile.retired, res.summary.retired);
        assert!(profile.branch_fraction() > 0.1);
        // The latch branch ran 10 times.
        let latch = InsnRef {
            func: FuncId(0),
            block: BlockId(3),
            idx: 2,
        };
        let bp = profile.branch(latch).expect("latch profiled");
        assert_eq!(bp.executed, 10);
        assert_eq!(bp.taken, 9);
        // Entry block ran once.
        let lay = StaticLayout::build(&prog);
        assert_eq!(
            profile.site_counts[lay.block_start(FuncId(0), BlockId(0)) as usize],
            1
        );
    }

    #[test]
    fn outcome_cap_respected() {
        let prog = phased_loop();
        let mut p = Profiler::new(&prog);
        p.max_outcomes = 4;
        crate::exec::Interp::new(&prog)
            .run_with(&mut p)
            .expect("runs");
        let profile = p.finish();
        let site = InsnRef {
            func: FuncId(0),
            block: BlockId(1),
            idx: 1,
        };
        let bp = profile.branch(site).unwrap();
        assert_eq!(bp.outcomes.len(), 4);
        assert_eq!(bp.executed, 10); // counts stay exact
    }
}
