//! The functional interpreter.

use crate::machine::Machine;
use guardspec_ir::insn::{AluKind, FAluKind, PLogicKind, ShiftKind};
use guardspec_ir::{BlockId, BranchCond, FuClass, FuncId, InsnRef, Instruction, Opcode, Program};
use std::fmt;

/// What one retired instruction did — everything an observer (profiler,
/// trace recorder) needs.
#[derive(Clone, Copy, Debug)]
pub struct RetireEvent {
    pub site: InsnRef,
    /// Conditional-branch outcome, if this was a conditional branch.
    pub taken: Option<bool>,
    /// Actual next block for control transfers (branch taken, jump, jtab).
    pub target_block: Option<BlockId>,
    /// Effective word address for memory operations.
    pub mem_addr: Option<i64>,
    /// Word written to memory, for (non-annulled) stores.  Float stores
    /// report the IEEE bit pattern.  Lets an observer reconstruct the
    /// committed-store trace without shadowing the memory image.
    pub store_value: Option<i64>,
    /// Guard predicate evaluated false: the instruction was fetched and
    /// issued but its result was annulled.
    pub annulled: bool,
}

/// Observer of retired instructions.
pub trait Observer {
    fn on_retire(&mut self, insn: &Instruction, ev: &RetireEvent);
}

/// The no-op observer.
impl Observer for () {
    fn on_retire(&mut self, _insn: &Instruction, _ev: &RetireEvent) {}
}

impl<A: Observer, B: Observer> Observer for (&mut A, &mut B) {
    fn on_retire(&mut self, insn: &Instruction, ev: &RetireEvent) {
        self.0.on_retire(insn, ev);
        self.1.on_retire(insn, ev);
    }
}

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    MemOutOfBounds {
        site: InsnRef,
        addr: i64,
    },
    JtabOutOfBounds {
        site: InsnRef,
        index: i64,
        table_len: usize,
    },
    CallDepthExceeded {
        site: InsnRef,
    },
    ReturnFromEntry {
        site: InsnRef,
    },
    FuelExhausted {
        retired: u64,
    },
    FellOffEnd {
        func: FuncId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemOutOfBounds { site, addr } => {
                write!(f, "memory access out of bounds at {site:?}: addr {addr}")
            }
            ExecError::JtabOutOfBounds {
                site,
                index,
                table_len,
            } => {
                write!(f, "jtab index {index} out of range {table_len} at {site:?}")
            }
            ExecError::CallDepthExceeded { site } => write!(f, "call depth exceeded at {site:?}"),
            ExecError::ReturnFromEntry { site } => write!(f, "ret with empty stack at {site:?}"),
            ExecError::FuelExhausted { retired } => {
                write!(f, "fuel exhausted after {retired} instructions")
            }
            ExecError::FellOffEnd { func } => write!(f, "fell off end of function @{}", func.0),
        }
    }
}

impl std::error::Error for ExecError {}

/// Aggregate execution counts.
#[derive(Clone, Debug, Default)]
pub struct ExecSummary {
    /// All retired instructions, including annulled guarded ones.
    pub retired: u64,
    /// Guarded instructions whose guard was false.
    pub annulled: u64,
    /// Retired count per functional-unit class (index by `FuClass as usize`
    /// via [`class_index`]).
    pub by_class: [u64; 8],
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
}

/// Dense index for [`FuClass`] stat arrays.
pub fn class_index(c: FuClass) -> usize {
    c.index()
}

/// Result of a successful run (the program reached `halt`).
#[derive(Clone, Debug)]
pub struct ExecResult {
    pub summary: ExecSummary,
    pub machine: Machine,
}

/// Interpreter over a program.  Create with [`Interp::new`], step with
/// [`Interp::run_with`].
pub struct Interp<'p> {
    prog: &'p Program,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Instruction budget (guards against runaway programs in tests).
    pub fuel: u64,
}

const DEFAULT_FUEL: u64 = 200_000_000;

impl<'p> Interp<'p> {
    pub fn new(prog: &'p Program) -> Interp<'p> {
        Interp {
            prog,
            max_call_depth: 1024,
            fuel: DEFAULT_FUEL,
        }
    }

    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Run from the program entry to `halt`, reporting every retired
    /// instruction to `obs`.
    pub fn run_with(&self, obs: &mut impl Observer) -> Result<ExecResult, ExecError> {
        let prog = self.prog;
        let mut m = Machine::for_program(prog);
        let mut summary = ExecSummary::default();
        // (func, block, idx) return positions.
        let mut stack: Vec<(FuncId, BlockId, u32)> = Vec::new();
        let mut func = prog.entry;
        let mut block = BlockId(0);
        let mut idx: u32 = 0;

        loop {
            let f = prog.func(func);
            let blk = &f.blocks[block.index()];
            if idx as usize >= blk.insns.len() {
                // Fall through to the next block in layout order.
                let next = BlockId(block.0 + 1);
                if next.index() >= f.blocks.len() {
                    return Err(ExecError::FellOffEnd { func });
                }
                block = next;
                idx = 0;
                continue;
            }
            let insn = &blk.insns[idx as usize];
            let site = InsnRef { func, block, idx };
            if summary.retired >= self.fuel {
                return Err(ExecError::FuelExhausted {
                    retired: summary.retired,
                });
            }
            summary.retired += 1;
            summary.by_class[class_index(insn.fu_class())] += 1;

            // Guard evaluation: annulled instructions retire with no effect
            // (control instructions can't be guarded, so flow is unaffected).
            let annulled = match insn.guard {
                Some(g) => m.get_pred(g.pred) != g.expect,
                None => false,
            };
            if annulled {
                summary.annulled += 1;
                obs.on_retire(
                    insn,
                    &RetireEvent {
                        site,
                        taken: None,
                        target_block: None,
                        mem_addr: None,
                        store_value: None,
                        annulled,
                    },
                );
                idx += 1;
                continue;
            }

            let mut ev = RetireEvent {
                site,
                taken: None,
                target_block: None,
                mem_addr: None,
                store_value: None,
                annulled,
            };

            use Opcode::*;
            match &insn.op {
                Alu { kind, dst, a, b } => {
                    let (x, y) = (m.get_int(*a), m.get_int(*b));
                    m.set_int(*dst, alu_eval(*kind, x, y));
                }
                AluImm { kind, dst, a, imm } => {
                    let x = m.get_int(*a);
                    m.set_int(*dst, alu_eval(*kind, x, *imm));
                }
                Li { dst, imm } => m.set_int(*dst, *imm),
                Mov { dst, src } => {
                    let v = m.get_int(*src);
                    m.set_int(*dst, v);
                }
                Shift { kind, dst, a, b } => {
                    let (x, s) = (m.get_int(*a), m.get_int(*b) as u32 & 63);
                    m.set_int(*dst, shift_eval(*kind, x, s));
                }
                ShiftImm { kind, dst, a, sh } => {
                    let x = m.get_int(*a);
                    m.set_int(*dst, shift_eval(*kind, x, *sh as u32 & 63));
                }
                Load { dst, base, off } => {
                    let addr = m.get_int(*base) + off;
                    ev.mem_addr = Some(addr);
                    match m.load(addr) {
                        Some(v) => m.set_int(*dst, v),
                        None => return Err(ExecError::MemOutOfBounds { site, addr }),
                    }
                }
                Store { src, base, off } => {
                    let addr = m.get_int(*base) + off;
                    ev.mem_addr = Some(addr);
                    let v = m.get_int(*src);
                    ev.store_value = Some(v);
                    if !m.store(addr, v) {
                        return Err(ExecError::MemOutOfBounds { site, addr });
                    }
                }
                FAlu { kind, dst, a, b } => {
                    let (x, y) = (m.get_flt(*a), m.get_flt(*b));
                    let v = match kind {
                        FAluKind::Add => x + y,
                        FAluKind::Sub => x - y,
                        FAluKind::Mul => x * y,
                        FAluKind::Div => x / y,
                        FAluKind::Sqrt => x.sqrt(),
                    };
                    m.set_flt(*dst, v);
                }
                FMov { dst, src } => {
                    let v = m.get_flt(*src);
                    m.set_flt(*dst, v);
                }
                FLoad { dst, base, off } => {
                    let addr = m.get_int(*base) + off;
                    ev.mem_addr = Some(addr);
                    match m.load(addr) {
                        Some(v) => m.set_flt(*dst, f64::from_bits(v as u64)),
                        None => return Err(ExecError::MemOutOfBounds { site, addr }),
                    }
                }
                FStore { src, base, off } => {
                    let addr = m.get_int(*base) + off;
                    ev.mem_addr = Some(addr);
                    let v = m.get_flt(*src).to_bits() as i64;
                    ev.store_value = Some(v);
                    if !m.store(addr, v) {
                        return Err(ExecError::MemOutOfBounds { site, addr });
                    }
                }
                ItoF { dst, src } => {
                    let v = m.get_int(*src) as f64;
                    m.set_flt(*dst, v);
                }
                FtoI { dst, src } => {
                    let v = m.get_flt(*src) as i64;
                    m.set_int(*dst, v);
                }
                SetP { cond, dst, a, b } => {
                    let v = cond.eval(m.get_int(*a), m.get_int(*b));
                    m.set_pred(*dst, v);
                }
                SetPImm { cond, dst, a, imm } => {
                    let v = cond.eval(m.get_int(*a), *imm);
                    m.set_pred(*dst, v);
                }
                PLogic { kind, dst, a, b } => {
                    let (x, y) = (m.get_pred(*a), m.get_pred(*b));
                    let v = match kind {
                        PLogicKind::And => x && y,
                        PLogicKind::Or => x || y,
                        PLogicKind::Xor => x != y,
                    };
                    m.set_pred(*dst, v);
                }
                PNot { dst, src } => {
                    let v = !m.get_pred(*src);
                    m.set_pred(*dst, v);
                }
                Branch { cond, target, .. } => {
                    let taken = branch_eval(&m, *cond);
                    summary.cond_branches += 1;
                    ev.taken = Some(taken);
                    if taken {
                        summary.taken_branches += 1;
                        ev.target_block = Some(*target);
                        obs.on_retire(insn, &ev);
                        block = *target;
                        idx = 0;
                        continue;
                    }
                }
                Jump { target } => {
                    ev.target_block = Some(*target);
                    obs.on_retire(insn, &ev);
                    block = *target;
                    idx = 0;
                    continue;
                }
                Jtab { index, table } => {
                    let i = m.get_int(*index);
                    if i < 0 || i as usize >= table.len() {
                        return Err(ExecError::JtabOutOfBounds {
                            site,
                            index: i,
                            table_len: table.len(),
                        });
                    }
                    let t = table[i as usize];
                    ev.target_block = Some(t);
                    obs.on_retire(insn, &ev);
                    block = t;
                    idx = 0;
                    continue;
                }
                Call { func: callee } => {
                    if stack.len() >= self.max_call_depth {
                        return Err(ExecError::CallDepthExceeded { site });
                    }
                    obs.on_retire(insn, &ev);
                    stack.push((func, block, idx + 1));
                    func = *callee;
                    block = BlockId(0);
                    idx = 0;
                    continue;
                }
                Ret => match stack.pop() {
                    Some((rf, rb, ri)) => {
                        obs.on_retire(insn, &ev);
                        func = rf;
                        block = rb;
                        idx = ri;
                        continue;
                    }
                    None => return Err(ExecError::ReturnFromEntry { site }),
                },
                Halt => {
                    obs.on_retire(insn, &ev);
                    return Ok(ExecResult {
                        summary,
                        machine: m,
                    });
                }
                Nop => {}
            }
            obs.on_retire(insn, &ev);
            idx += 1;
        }
    }
}

fn alu_eval(kind: AluKind, a: i64, b: i64) -> i64 {
    match kind {
        AluKind::Add => a.wrapping_add(b),
        AluKind::Sub => a.wrapping_sub(b),
        AluKind::And => a & b,
        AluKind::Or => a | b,
        AluKind::Xor => a ^ b,
        AluKind::Nor => !(a | b),
        AluKind::Slt => (a < b) as i64,
        AluKind::Sltu => ((a as u32) < (b as u32)) as i64,
        AluKind::Mul => a.wrapping_mul(b),
    }
}

fn shift_eval(kind: ShiftKind, a: i64, s: u32) -> i64 {
    match kind {
        ShiftKind::Sll => ((a as u64) << s) as i64,
        ShiftKind::Srl => ((a as u64) >> s) as i64,
        ShiftKind::Sra => a >> s,
    }
}

fn branch_eval(m: &Machine, cond: BranchCond) -> bool {
    match cond {
        BranchCond::Eq(a, b) => m.get_int(a) == m.get_int(b),
        BranchCond::Ne(a, b) => m.get_int(a) != m.get_int(b),
        BranchCond::Lez(a) => m.get_int(a) <= 0,
        BranchCond::Gtz(a) => m.get_int(a) > 0,
        BranchCond::Ltz(a) => m.get_int(a) < 0,
        BranchCond::Gez(a) => m.get_int(a) >= 0,
        BranchCond::PredT(p) => m.get_pred(p),
        BranchCond::PredF(p) => !m.get_pred(p),
    }
}

/// Run `prog` with the no-op observer.
///
/// ```
/// use guardspec_ir::builder::{single_func_program, FuncBuilder};
/// use guardspec_ir::reg::r;
/// let mut fb = FuncBuilder::new("m");
/// fb.block("e");
/// fb.li(r(1), 21);
/// fb.add(r(1), r(1), r(1));
/// fb.sw(r(1), r(0), 0);
/// fb.halt();
/// let prog = single_func_program(fb);
/// let res = guardspec_interp::run(&prog).unwrap();
/// assert_eq!(res.machine.mem[0], 42);
/// ```
pub fn run(prog: &Program) -> Result<ExecResult, ExecError> {
    Interp::new(prog).run_with(&mut ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::{p, r};
    use guardspec_ir::SetCond;

    #[test]
    fn arithmetic_loop_sums_correctly() {
        // r3 = sum of 1..=10
        let mut fb = FuncBuilder::new("sum");
        fb.block("entry");
        fb.li(r(1), 1);
        fb.li(r(2), 10);
        fb.li(r(3), 0);
        fb.block("loop");
        fb.add(r(3), r(3), r(1));
        fb.addi(r(1), r(1), 1);
        fb.slt(r(4), r(2), r(1)); // r4 = 10 < i
        fb.beq(r(4), r(0), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(3)), 55);
        assert_eq!(res.summary.cond_branches, 10);
        assert_eq!(res.summary.taken_branches, 9);
    }

    #[test]
    fn guarded_instruction_annuls() {
        let mut fb = FuncBuilder::new("g");
        fb.block("e");
        fb.li(r(1), 5);
        fb.setpi(SetCond::Gt, p(1), r(1), 3); // true
        fb.cmov(r(2), r(1), p(1), true); // executes
        fb.cmov(r(3), r(1), p(1), false); // annulled
        fb.halt();
        let prog = single_func_program(fb);
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(2)), 5);
        assert_eq!(res.machine.get_int(r(3)), 0);
        assert_eq!(res.summary.annulled, 1);
    }

    #[test]
    fn memory_roundtrip_and_class_counts() {
        let mut fb = FuncBuilder::new("mem");
        fb.block("e");
        fb.li(r(1), 8);
        fb.li(r(2), 1234);
        fb.sw(r(2), r(1), 1); // mem[9] = 1234
        fb.lw(r(3), r(1), 1);
        fb.sll(r(4), r(3), 1);
        fb.halt();
        let prog = single_func_program(fb);
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(3)), 1234);
        assert_eq!(res.machine.get_int(r(4)), 2468);
        assert_eq!(
            res.summary.by_class[class_index(guardspec_ir::FuClass::LoadStore)],
            2
        );
        assert_eq!(
            res.summary.by_class[class_index(guardspec_ir::FuClass::Shift)],
            1
        );
    }

    #[test]
    fn jtab_dispatch() {
        let mut fb = FuncBuilder::new("sw");
        fb.block("e");
        fb.li(r(1), 1);
        fb.jtab(r(1), &["c0", "c1", "c2"]);
        fb.block("c0");
        fb.li(r(2), 100);
        fb.jump("done");
        fb.block("c1");
        fb.li(r(2), 200);
        fb.jump("done");
        fb.block("c2");
        fb.li(r(2), 300);
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(2)), 200);
    }

    #[test]
    fn jtab_out_of_range_traps() {
        let mut fb = FuncBuilder::new("sw");
        fb.block("e");
        fb.li(r(1), 7);
        fb.jtab(r(1), &["done"]);
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        match run(&prog) {
            Err(ExecError::JtabOutOfBounds {
                index: 7,
                table_len: 1,
                ..
            }) => {}
            other => panic!("expected jtab trap, got {other:?}"),
        }
    }

    #[test]
    fn call_ret_midblock_resume() {
        let mut pb = ProgramBuilder::new();
        let mut main = FuncBuilder::new("main");
        main.block("e");
        main.li(r(1), 1);
        main.call("double");
        main.addi(r(1), r(1), 5); // executes after return, same block
        main.halt();
        let mut dbl = FuncBuilder::new("double");
        dbl.block("e");
        dbl.add(r(1), r(1), r(1));
        dbl.ret();
        pb.add_func(main);
        pb.add_func(dbl);
        let prog = pb.finish("main");
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(1)), 7);
    }

    #[test]
    fn recursion_depth_guard() {
        let mut pb = ProgramBuilder::new();
        let mut f = FuncBuilder::new("f");
        f.block("e");
        f.call("f");
        f.ret();
        pb.add_func(f);
        let prog = pb.finish("f");
        match run(&prog) {
            Err(ExecError::CallDepthExceeded { .. }) => {}
            other => panic!("expected depth trap, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion() {
        let mut fb = FuncBuilder::new("spin");
        fb.block("a");
        fb.jump("a");
        let prog = single_func_program(fb);
        match Interp::new(&prog).with_fuel(100).run_with(&mut ()) {
            Err(ExecError::FuelExhausted { retired: 100 }) => {}
            other => panic!("expected fuel trap, got {other:?}"),
        }
    }

    #[test]
    fn oob_store_traps() {
        let mut fb = FuncBuilder::new("bad");
        fb.block("e");
        fb.li(r(1), 1 << 30);
        fb.sw(r(1), r(1), 0);
        fb.halt();
        let mut prog = single_func_program(fb);
        prog.mem_words = 16;
        match run(&prog) {
            Err(ExecError::MemOutOfBounds { .. }) => {}
            other => panic!("expected mem trap, got {other:?}"),
        }
    }

    #[test]
    fn fp_pipeline() {
        let mut fb = FuncBuilder::new("fp");
        fb.block("e");
        fb.li(r(1), 9);
        fb.itof(guardspec_ir::reg::f(1), r(1));
        fb.fmul(
            guardspec_ir::reg::f(2),
            guardspec_ir::reg::f(1),
            guardspec_ir::reg::f(1),
        );
        fb.ftoi(r(2), guardspec_ir::reg::f(2));
        fb.halt();
        let prog = single_func_program(fb);
        let res = run(&prog).expect("runs");
        assert_eq!(res.machine.get_int(r(2)), 81);
    }

    #[test]
    fn observer_sees_store_values_except_annulled() {
        struct Stores(Vec<(i64, i64)>);
        impl Observer for Stores {
            fn on_retire(&mut self, _i: &Instruction, ev: &RetireEvent) {
                if let (Some(a), Some(v)) = (ev.mem_addr, ev.store_value) {
                    assert!(!ev.annulled, "annulled stores must not report a value");
                    self.0.push((a, v));
                }
            }
        }
        let mut fb = FuncBuilder::new("s");
        fb.block("e");
        fb.li(r(1), 3);
        fb.setpi(SetCond::Gt, p(1), r(1), 0); // true
        fb.sw(r(1), r(0), 4);
        fb.push_guarded(
            guardspec_ir::Opcode::Store {
                src: r(1),
                base: r(0),
                off: 5,
            },
            p(1),
            false, // guard false: annulled, must not appear in the trace
        );
        fb.itof(guardspec_ir::reg::f(1), r(1));
        fb.fsw(guardspec_ir::reg::f(1), r(0), 6);
        fb.halt();
        let prog = single_func_program(fb);
        let mut s = Stores(Vec::new());
        Interp::new(&prog).run_with(&mut s).expect("runs");
        assert_eq!(
            s.0,
            vec![(4, 3), (6, 3.0f64.to_bits() as i64)],
            "committed stores only, float stores as bit patterns"
        );
    }

    #[test]
    fn observer_sees_branch_outcomes() {
        struct Count(u64, u64);
        impl Observer for Count {
            fn on_retire(&mut self, _i: &Instruction, ev: &RetireEvent) {
                if let Some(t) = ev.taken {
                    self.0 += 1;
                    self.1 += t as u64;
                }
            }
        }
        let mut fb = FuncBuilder::new("b");
        fb.block("e");
        fb.li(r(1), 0);
        fb.block("loop");
        fb.addi(r(1), r(1), 1);
        fb.slti(r(2), r(1), 5);
        fb.bne(r(2), r(0), "loop");
        fb.block("done");
        fb.halt();
        let prog = single_func_program(fb);
        let mut c = Count(0, 0);
        Interp::new(&prog).run_with(&mut c).expect("runs");
        assert_eq!(c.0, 5);
        assert_eq!(c.1, 4);
    }
}
