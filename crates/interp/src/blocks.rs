//! Block-granular view of a dynamic trace.
//!
//! The compiled simulator ([`guardspec-sim`]'s decoded-uop cache) executes
//! per-basic-block descriptors rather than per-instruction dispatch.  This
//! module supplies the trace-side half of that contract: a cursor that
//! groups a retired-instruction trace into **maximal runs of consecutive
//! static sites inside one basic block**.  Within a run there is no
//! control transfer (ids advance by exactly one and stay inside the
//! block), so a consumer can process the whole run against one block
//! descriptor without re-deciding which block it is in per entry.
//!
//! [`guardspec-sim`]: ../guardspec_sim/index.html

use crate::layout::StaticLayout;
use crate::trace::TraceEntry;

/// A maximal run of trace entries with consecutive site ids inside one
/// static block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRun {
    /// Dense block index, in layout order (function, then block).
    pub block: u32,
    /// Trace offset of the first entry of the run.
    pub start: usize,
    /// Number of entries in the run (always ≥ 1).
    pub len: usize,
}

/// Dense site-id → block-index table derived from the layout's spans.
pub fn block_of_table(layout: &StaticLayout) -> Vec<u32> {
    let mut table = vec![0u32; layout.num_sites()];
    for (bi, (first, len)) in layout.block_spans().into_iter().enumerate() {
        for id in first..first + len {
            table[id as usize] = bi as u32;
        }
    }
    table
}

/// Iterator yielding maximal [`BlockRun`]s over a materialized trace.
///
/// The runs partition the trace exactly: concatenating them in order
/// reproduces every entry once.
pub struct BlockCursor<'a> {
    trace: &'a [TraceEntry],
    block_of: Vec<u32>,
    pos: usize,
}

impl<'a> BlockCursor<'a> {
    pub fn new(layout: &StaticLayout, trace: &'a [TraceEntry]) -> BlockCursor<'a> {
        BlockCursor {
            trace,
            block_of: block_of_table(layout),
            pos: 0,
        }
    }
}

impl Iterator for BlockCursor<'_> {
    type Item = BlockRun;

    fn next(&mut self) -> Option<BlockRun> {
        let first = *self.trace.get(self.pos)?;
        let block = self.block_of[first.id as usize];
        let start = self.pos;
        let mut len = 1usize;
        while let Some(e) = self.trace.get(start + len) {
            if e.id != first.id + len as u32 || self.block_of[e.id as usize] != block {
                break;
            }
            len += 1;
        }
        self.pos = start + len;
        Some(BlockRun { block, start, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_program;
    use guardspec_ir::builder::*;
    use guardspec_ir::reg::r;

    fn loop_prog(n: i64) -> guardspec_ir::Program {
        let mut fb = FuncBuilder::new("loop");
        fb.block("e");
        fb.li(r(1), n);
        fb.block("body");
        fb.subi(r(1), r(1), 1);
        fb.bgtz(r(1), "body");
        fb.block("done");
        fb.halt();
        single_func_program(fb)
    }

    #[test]
    fn spans_cover_all_sites_exactly_once() {
        let prog = loop_prog(3);
        let layout = StaticLayout::build(&prog);
        let spans = layout.block_spans();
        let total: u32 = spans.iter().map(|(_, l)| l).sum();
        assert_eq!(total as usize, layout.num_sites());
        let mut next = 0u32;
        for (first, len) in spans {
            assert_eq!(first, next);
            next = first + len;
        }
    }

    #[test]
    fn runs_partition_the_trace() {
        let prog = loop_prog(10);
        let (layout, trace, _) = trace_program(&prog).expect("runs");
        let runs: Vec<BlockRun> = BlockCursor::new(&layout, &trace).collect();
        // Partition: contiguous, covering, nonempty.
        let mut pos = 0usize;
        for run in &runs {
            assert_eq!(run.start, pos);
            assert!(run.len >= 1);
            pos += run.len;
        }
        assert_eq!(pos, trace.len());
        // Each run stays in one block with consecutive ids.
        let block_of = block_of_table(&layout);
        for run in &runs {
            for k in 0..run.len {
                let e = trace[run.start + k];
                assert_eq!(e.id, trace[run.start].id + k as u32);
                assert_eq!(block_of[e.id as usize], run.block);
            }
        }
        // The loop body is a 2-instruction block executed 10 times; it must
        // appear as maximal 2-entry runs, not split per instruction.
        assert!(runs.iter().filter(|r| r.len == 2).count() >= 10);
    }

    #[test]
    fn runs_are_maximal() {
        let prog = loop_prog(5);
        let (layout, trace, _) = trace_program(&prog).expect("runs");
        let block_of = block_of_table(&layout);
        let runs: Vec<BlockRun> = BlockCursor::new(&layout, &trace).collect();
        for w in runs.windows(2) {
            let (a, b) = (w[0], w[1]);
            let last = trace[a.start + a.len - 1];
            let next = trace[b.start];
            // If the next entry continued the id run inside the same block,
            // the cursor should have merged it.
            assert!(next.id != last.id + 1 || block_of[next.id as usize] != a.block);
        }
    }
}
