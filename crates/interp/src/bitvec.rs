//! Growable bit vector for branch-outcome recording.

/// A compact, append-only sequence of booleans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    pub fn new() -> BitVec {
        BitVec {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Build from an iterator of outcomes.
    pub fn from_bools(it: impl IntoIterator<Item = bool>) -> BitVec {
        let mut v = BitVec::new();
        for b in it {
            v.push(b);
        }
        v
    }

    /// Build from a `T`/`F` pattern string (other characters are ignored),
    /// e.g. the paper's `"TTTFFFTTFF"` trace notation.
    pub fn from_pattern(s: &str) -> BitVec {
        BitVec::from_bools(s.chars().filter_map(|c| match c {
            'T' | 't' | '1' => Some(true),
            'F' | 'f' | '0' => Some(false),
            _ => None,
        }))
    }

    pub fn push(&mut self, b: bool) {
        let (w, o) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if b {
            self.words[w] |= 1 << o;
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `true` bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of `true` bits within `[start, end)`.
    pub fn count_ones_in(&self, start: usize, end: usize) -> usize {
        (start..end.min(self.len)).filter(|&i| self.get(i)).count()
    }

    /// Number of adjacent positions whose outcome differs — the raw count
    /// behind the paper's *toggle factor*.
    pub fn toggles(&self) -> usize {
        (1..self.len)
            .filter(|&i| self.get(i) != self.get(i - 1))
            .count()
    }

    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copy out the sub-vector `[start, end)` (clamped to the length).
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        BitVec::from_bools((start..end.min(self.len)).map(|i| self.get(i)))
    }

    /// The packed 64-bit words backing the vector (LSB-first within each
    /// word) — the serialization hook used by `guardspec-harness` to persist
    /// branch-outcome vectors in its on-disk cache.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from packed words and a bit length (inverse of
    /// [`BitVec::words`] + [`BitVec::len`]).  Bits at and above `len` are
    /// cleared so equality with the original vector holds.
    pub fn from_raw(mut words: Vec<u64>, len: usize) -> BitVec {
        assert!(
            len <= words.len() * 64,
            "bit length {len} exceeds {} words",
            words.len()
        );
        words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        BitVec { words, len }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> BitVec {
        BitVec::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_across_word_boundary() {
        let mut v = BitVec::new();
        let pat: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        for &b in &pat {
            v.push(b);
        }
        assert_eq!(v.len(), 150);
        for (i, &b) in pat.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
        assert_eq!(v.count_ones(), pat.iter().filter(|b| **b).count());
    }

    #[test]
    fn pattern_parsing_matches_paper_notation() {
        let v = BitVec::from_pattern("TTTFFFTTFF");
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 5);
        assert!(v.get(0) && v.get(1) && v.get(2));
        assert!(!v.get(3) && !v.get(9));
    }

    #[test]
    fn toggle_count() {
        assert_eq!(BitVec::from_pattern("TTTT").toggles(), 0);
        assert_eq!(BitVec::from_pattern("TFTF").toggles(), 3);
        assert_eq!(BitVec::from_pattern("TTTFFFTTFF").toggles(), 3);
        assert_eq!(BitVec::new().toggles(), 0);
    }

    #[test]
    fn count_ones_in_window() {
        let v = BitVec::from_pattern("TTFFTTFF");
        assert_eq!(v.count_ones_in(0, 4), 2);
        assert_eq!(v.count_ones_in(2, 6), 2);
        assert_eq!(v.count_ones_in(4, 100), 2);
    }
}
