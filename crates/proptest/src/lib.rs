//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header and any
//!   number of `#[test] fn name(arg in strategy, ...) { .. }` items),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies over the primitive integers and floats,
//! * `any::<T>()` for primitives,
//! * `prop::collection::vec(strategy, len_range)`,
//! * `prop::sample::select(vec![...])`,
//! * tuple strategies up to arity 6.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name, overridable
//! with `PROPTEST_SEED`), and failing cases are **not shrunk** — the panic
//! message reports the case number and the formatted assertion instead.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property-test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator driving value production (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's identity so every test has its own stable
        /// stream; `PROPTEST_SEED` perturbs all of them at once.
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                for b in extra.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let mut x = self.next_u64();
            let mut m = (x as u128) * (n as u128);
            let mut lo = m as u64;
            if lo < n {
                let t = n.wrapping_neg() % n;
                while lo < t {
                    x = self.next_u64();
                    m = (x as u128) * (n as u128);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
                }
            }
        )*};
    }

    int_strategy! {
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F) }

    /// `Strategy::prop_map` equivalent is intentionally omitted — the
    /// workspace's tests compose with tuples and plain code instead.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker produced by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for a primitive type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }

    /// `prop::sample::select(vec![...])`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select: no choices");
        Select { choices }
    }
}

/// The `prop::` paths used inside [`proptest!`] bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; vec lengths honour their range.
        #[test]
        fn strategies_respect_bounds(
            x in -4096i64..4096,
            y in 0u8..14,
            v in prop::collection::vec((0u64..1000, any::<u8>()), 1..40),
            pick in prop::sample::select(vec![0i64, 1, 3, 7]),
        ) {
            prop_assert!((-4096..4096).contains(&x));
            prop_assert!(y < 14);
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (a, _) in &v {
                prop_assert!(*a < 1000);
            }
            prop_assert!([0i64, 1, 3, 7].contains(&pick));
        }
    }

    #[test]
    fn deterministic_per_test_stream() {
        let mut a = crate::test_runner::TestRng::deterministic("x::t");
        let mut b = crate::test_runner::TestRng::deterministic("x::t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("x::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn prop_assert_reports_failure() {
        let r: Result<(), crate::test_runner::TestCaseError> = (|| {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        })();
        assert!(r.is_err());
        assert!(format!("{}", r.unwrap_err()).contains("1 + 1"));
    }
}
