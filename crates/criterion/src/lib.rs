//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's API for this workspace's benches:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `throughput`, and `Bencher::iter`.  Measurement is
//! a simple calibrated wall-clock loop (no statistics, no HTML reports); each
//! benchmark prints one line:
//!
//! ```text
//! name                    time: 12.345 µs/iter (+ 81.0 Melem/s)
//! ```
//!
//! Honours `--bench` and name-filter CLI arguments loosely: any non-flag
//! argument filters benchmark names by substring (so `cargo bench foo` works).

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` in a calibrated loop and record the mean time per iteration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~200 ms of measurement, capped to keep huge kernels fast.
        let iters = (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.1} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.1} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// The benchmark manager.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }
}

impl Criterion {
    fn runs(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, mean_ns: f64, throughput: Option<Throughput>) {
        let extra = match throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!(" (+ {})", human_rate(n as f64 * 1e9 / mean_ns, "elem"))
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(" (+ {})", human_rate(n as f64 * 1e9 / mean_ns, "B"))
            }
            _ => String::new(),
        };
        println!("{name:<40} time: {}/iter{extra}", human_time(mean_ns));
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.runs(name) {
            let mut b = Bencher { mean_ns: 0.0 };
            f(&mut b);
            self.report(name, b.mean_ns, None);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.parent.runs(&full) {
            let mut b = Bencher { mean_ns: 0.0 };
            f(&mut b);
            self.parent.report(&full, b.mean_ns, self.throughput);
        }
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, bench_fn, ...)` — also accepts the
/// `config = ...; targets = ...` long form (config is ignored).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's `black_box` (std's suffices here).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(g, bench_nothing);

    #[test]
    fn group_runs() {
        g();
    }

    #[test]
    fn humanize() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(12_345.0), "12.345 µs");
        assert!(human_rate(81.0e6, "elem").starts_with("81.0 M"));
    }
}
