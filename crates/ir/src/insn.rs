//! Instructions: opcodes, guards, operand accessors.

use crate::program::{BlockId, FuncId};
use crate::reg::{FltReg, IntReg, PredReg, Reg};

/// Integer ALU operation kinds (execute on the two integer ALUs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluKind {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    /// Set-less-than (signed): `dst = (a < b) as i64`.
    Slt,
    /// Set-less-than (unsigned compare of the low 32 bits).
    Sltu,
    /// Integer multiply (low word).
    Mul,
}

/// Shift kinds (execute on the dedicated shifter).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftKind {
    Sll,
    Srl,
    Sra,
}

/// Floating-point operation kinds, one per R10000 FP pipe
/// (adder, multiplier, divide/square-root).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FAluKind {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
}

/// Predicate-register logic kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PLogicKind {
    And,
    Or,
    Xor,
}

/// Comparison conditions for `setp` (predicate-defining compares).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetCond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl SetCond {
    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> SetCond {
        match self {
            SetCond::Eq => SetCond::Ne,
            SetCond::Ne => SetCond::Eq,
            SetCond::Lt => SetCond::Ge,
            SetCond::Le => SetCond::Gt,
            SetCond::Gt => SetCond::Le,
            SetCond::Ge => SetCond::Lt,
        }
    }

    /// Evaluate the comparison on two integer values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            SetCond::Eq => a == b,
            SetCond::Ne => a != b,
            SetCond::Lt => a < b,
            SetCond::Le => a <= b,
            SetCond::Gt => a > b,
            SetCond::Ge => a >= b,
        }
    }
}

/// The condition of a conditional branch, with its operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if `a == b`.
    Eq(IntReg, IntReg),
    /// Branch if `a != b`.
    Ne(IntReg, IntReg),
    /// Branch if `a <= 0`.
    Lez(IntReg),
    /// Branch if `a > 0`.
    Gtz(IntReg),
    /// Branch if `a < 0`.
    Ltz(IntReg),
    /// Branch if `a >= 0`.
    Gez(IntReg),
    /// Branch if predicate register is true.
    PredT(PredReg),
    /// Branch if predicate register is false.
    PredF(PredReg),
}

impl BranchCond {
    /// The condition that is taken exactly when `self` is not.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq(a, b) => BranchCond::Ne(a, b),
            BranchCond::Ne(a, b) => BranchCond::Eq(a, b),
            BranchCond::Lez(a) => BranchCond::Gtz(a),
            BranchCond::Gtz(a) => BranchCond::Lez(a),
            BranchCond::Ltz(a) => BranchCond::Gez(a),
            BranchCond::Gez(a) => BranchCond::Ltz(a),
            BranchCond::PredT(p) => BranchCond::PredF(p),
            BranchCond::PredF(p) => BranchCond::PredT(p),
        }
    }

    /// The `setp` condition + operand shape equivalent to this branch
    /// condition, as `(cond, a, rhs)` where `rhs` is either a register or
    /// the constant zero.  Used by if-conversion to materialize the branch
    /// condition into a predicate register.  Predicate-operand branches
    /// return `None` (they already have a predicate).
    pub fn as_compare(self) -> Option<(SetCond, IntReg, Option<IntReg>)> {
        match self {
            BranchCond::Eq(a, b) => Some((SetCond::Eq, a, Some(b))),
            BranchCond::Ne(a, b) => Some((SetCond::Ne, a, Some(b))),
            BranchCond::Lez(a) => Some((SetCond::Le, a, None)),
            BranchCond::Gtz(a) => Some((SetCond::Gt, a, None)),
            BranchCond::Ltz(a) => Some((SetCond::Lt, a, None)),
            BranchCond::Gez(a) => Some((SetCond::Ge, a, None)),
            BranchCond::PredT(_) | BranchCond::PredF(_) => None,
        }
    }
}

/// A guard on an instruction: the instruction only takes architectural
/// effect when predicate register `pred` holds the value `expect`.
///
/// This is the paper's *guarded execution*: "the guarded instruction is
/// executed conditionally depending on the value of this predicate operand".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Guard {
    pub pred: PredReg,
    pub expect: bool,
}

impl Guard {
    /// Guard that fires when `pred` is true.
    pub fn if_true(pred: PredReg) -> Guard {
        Guard { pred, expect: true }
    }
    /// Guard that fires when `pred` is false.
    pub fn if_false(pred: PredReg) -> Guard {
        Guard {
            pred,
            expect: false,
        }
    }
}

/// Instruction opcodes with their operands.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// Three-register integer ALU op.
    Alu {
        kind: AluKind,
        dst: IntReg,
        a: IntReg,
        b: IntReg,
    },
    /// Register-immediate integer ALU op.
    AluImm {
        kind: AluKind,
        dst: IntReg,
        a: IntReg,
        imm: i64,
    },
    /// Load immediate.
    Li { dst: IntReg, imm: i64 },
    /// Register move (assembles to `or dst, src, r0`).
    Mov { dst: IntReg, src: IntReg },
    /// Three-register shift (shift amount in `b`).
    Shift {
        kind: ShiftKind,
        dst: IntReg,
        a: IntReg,
        b: IntReg,
    },
    /// Immediate shift.
    ShiftImm {
        kind: ShiftKind,
        dst: IntReg,
        a: IntReg,
        sh: u8,
    },
    /// Word load: `dst = mem[base + off]` (word addressing).
    Load { dst: IntReg, base: IntReg, off: i64 },
    /// Word store: `mem[base + off] = src`.
    Store { src: IntReg, base: IntReg, off: i64 },
    /// Floating-point arithmetic.
    FAlu {
        kind: FAluKind,
        dst: FltReg,
        a: FltReg,
        b: FltReg,
    },
    /// Floating-point move.
    FMov { dst: FltReg, src: FltReg },
    /// Floating-point word load.
    FLoad { dst: FltReg, base: IntReg, off: i64 },
    /// Floating-point word store.
    FStore { src: FltReg, base: IntReg, off: i64 },
    /// Convert integer register to floating point.
    ItoF { dst: FltReg, src: IntReg },
    /// Truncate floating point to integer register.
    FtoI { dst: IntReg, src: FltReg },
    /// Predicate-defining compare: `dst = cond(a, b)`.
    SetP {
        cond: SetCond,
        dst: PredReg,
        a: IntReg,
        b: IntReg,
    },
    /// Predicate-defining compare against an immediate.
    SetPImm {
        cond: SetCond,
        dst: PredReg,
        a: IntReg,
        imm: i64,
    },
    /// Predicate logic: `dst = a <op> b`.
    PLogic {
        kind: PLogicKind,
        dst: PredReg,
        a: PredReg,
        b: PredReg,
    },
    /// Predicate negate: `dst = !src`.
    PNot { dst: PredReg, src: PredReg },
    /// Conditional branch.  `likely` marks the MIPS-IV branch-likely form:
    /// statically predicted taken, never allocated a BTB/BHT entry.
    Branch {
        cond: BranchCond,
        target: BlockId,
        likely: bool,
    },
    /// Unconditional direct jump.
    Jump { target: BlockId },
    /// Register-relative jump through a compile-time table
    /// (`switch` dispatch).  Not predictable by the BTB.
    Jtab { index: IntReg, table: Vec<BlockId> },
    /// Direct call to another function (return block is implicit: control
    /// resumes at the next block in layout order).
    Call { func: FuncId },
    /// Return from the current function.  Register-relative in hardware,
    /// hence not predictable by the BTB.
    Ret,
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit classes, matching the columns of Tables 3 and 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FuClass {
    /// Integer ALU (two units on the R10000).
    Alu,
    /// Dedicated shifter.
    Shift,
    /// Address-calculation / load-store unit.
    LoadStore,
    /// Branch unit.
    Branch,
    /// Floating-point adder pipe.
    FpAdd,
    /// Floating-point multiplier pipe.
    FpMul,
    /// Floating-point divide/square-root pipe.
    FpDiv,
    /// Consumes an issue slot but no functional unit.
    Nop,
}

impl FuClass {
    /// All classes, for stats tables.
    pub const ALL: [FuClass; 8] = [
        FuClass::Alu,
        FuClass::Shift,
        FuClass::LoadStore,
        FuClass::Branch,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
        FuClass::Nop,
    ];

    /// Dense index of this class: its position in [`FuClass::ALL`].
    pub const fn index(self) -> usize {
        match self {
            FuClass::Alu => 0,
            FuClass::Shift => 1,
            FuClass::LoadStore => 2,
            FuClass::Branch => 3,
            FuClass::FpAdd => 4,
            FuClass::FpMul => 5,
            FuClass::FpDiv => 6,
            FuClass::Nop => 7,
        }
    }
}

/// A complete instruction: opcode plus optional guard predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instruction {
    pub op: Opcode,
    pub guard: Option<Guard>,
}

/// Iterator over the (at most five) register uses of an instruction.
pub struct Uses {
    slots: [Option<Reg>; 5],
    next: usize,
}

impl Iterator for Uses {
    type Item = Reg;
    fn next(&mut self) -> Option<Reg> {
        while self.next < self.slots.len() {
            let s = self.slots[self.next];
            self.next += 1;
            if s.is_some() {
                return s;
            }
        }
        None
    }
}

impl Instruction {
    /// An unguarded instruction.
    pub fn new(op: Opcode) -> Instruction {
        Instruction { op, guard: None }
    }

    /// A guarded instruction.
    pub fn guarded(op: Opcode, guard: Guard) -> Instruction {
        Instruction {
            op,
            guard: Some(guard),
        }
    }

    /// The register this instruction defines, if any.  Writes to the
    /// hard-wired `r0` still report a def; callers that care should filter
    /// with [`Reg::is_int_zero`].
    pub fn def(&self) -> Option<Reg> {
        use Opcode::*;
        match &self.op {
            Alu { dst, .. }
            | AluImm { dst, .. }
            | Li { dst, .. }
            | Mov { dst, .. }
            | Shift { dst, .. }
            | ShiftImm { dst, .. }
            | Load { dst, .. }
            | FtoI { dst, .. } => Some((*dst).into()),
            FAlu { dst, .. } | FMov { dst, .. } | FLoad { dst, .. } | ItoF { dst, .. } => {
                Some((*dst).into())
            }
            SetP { dst, .. } | SetPImm { dst, .. } | PLogic { dst, .. } | PNot { dst, .. } => {
                Some((*dst).into())
            }
            Store { .. }
            | FStore { .. }
            | Branch { .. }
            | Jump { .. }
            | Jtab { .. }
            | Call { .. }
            | Ret
            | Halt
            | Nop => None,
        }
    }

    /// Iterate over the registers this instruction reads, including the
    /// guard predicate and branch-condition operands.
    pub fn uses(&self) -> Uses {
        use Opcode::*;
        let mut slots: [Option<Reg>; 5] = [None; 5];
        let mut n = 0;
        let mut push = |r: Reg| {
            slots[n] = Some(r);
            n += 1;
        };
        match &self.op {
            Alu { a, b, .. } | Shift { a, b, .. } => {
                push((*a).into());
                push((*b).into());
            }
            AluImm { a, .. } | ShiftImm { a, .. } => push((*a).into()),
            Li { .. } => {}
            Mov { src, .. } => push((*src).into()),
            Load { base, .. } => push((*base).into()),
            Store { src, base, .. } => {
                push((*src).into());
                push((*base).into());
            }
            FAlu { a, b, .. } => {
                push((*a).into());
                push((*b).into());
            }
            FMov { src, .. } => push((*src).into()),
            FLoad { base, .. } => push((*base).into()),
            FStore { src, base, .. } => {
                push((*src).into());
                push((*base).into());
            }
            ItoF { src, .. } => push((*src).into()),
            FtoI { src, .. } => push((*src).into()),
            SetP { a, b, .. } => {
                push((*a).into());
                push((*b).into());
            }
            SetPImm { a, .. } => push((*a).into()),
            PLogic { a, b, .. } => {
                push((*a).into());
                push((*b).into());
            }
            PNot { src, .. } => push((*src).into()),
            Branch { cond, .. } => match cond {
                BranchCond::Eq(a, b) | BranchCond::Ne(a, b) => {
                    push((*a).into());
                    push((*b).into());
                }
                BranchCond::Lez(a)
                | BranchCond::Gtz(a)
                | BranchCond::Ltz(a)
                | BranchCond::Gez(a) => push((*a).into()),
                BranchCond::PredT(p) | BranchCond::PredF(p) => push((*p).into()),
            },
            Jtab { index, .. } => push((*index).into()),
            Jump { .. } | Call { .. } | Ret | Halt | Nop => {}
        }
        if let Some(g) = self.guard {
            push(g.pred.into());
        }
        Uses { slots, next: 0 }
    }

    /// The functional-unit class the instruction occupies, i.e. the column
    /// it contributes to in Tables 3 and 4.
    pub fn fu_class(&self) -> FuClass {
        use Opcode::*;
        match &self.op {
            Alu { .. }
            | AluImm { .. }
            | Li { .. }
            | Mov { .. }
            | SetP { .. }
            | SetPImm { .. }
            | PLogic { .. }
            | PNot { .. }
            | ItoF { .. }
            | FtoI { .. } => FuClass::Alu,
            Shift { .. } | ShiftImm { .. } => FuClass::Shift,
            Load { .. } | Store { .. } | FLoad { .. } | FStore { .. } => FuClass::LoadStore,
            Branch { .. } | Jump { .. } | Jtab { .. } | Call { .. } | Ret | Halt => FuClass::Branch,
            FAlu { kind, .. } => match kind {
                FAluKind::Add | FAluKind::Sub => FuClass::FpAdd,
                FAluKind::Mul => FuClass::FpMul,
                FAluKind::Div | FAluKind::Sqrt => FuClass::FpDiv,
            },
            FMov { .. } => FuClass::FpAdd,
            Nop => FuClass::Nop,
        }
    }

    /// True for a *conditional* branch (the instruction kind the paper's
    /// feedback metrics profile).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.op, Opcode::Branch { .. })
    }

    /// True for the branch-likely form.
    pub fn is_branch_likely(&self) -> bool {
        matches!(self.op, Opcode::Branch { likely: true, .. })
    }

    /// True if the instruction may transfer control (must be last in block).
    pub fn is_control(&self) -> bool {
        matches!(
            self.op,
            Opcode::Branch { .. }
                | Opcode::Jump { .. }
                | Opcode::Jtab { .. }
                | Opcode::Ret
                | Opcode::Halt
        )
    }

    /// True if the instruction ends fetch along the fall-through path
    /// unconditionally (no fall-through successor).
    pub fn is_unconditional_exit(&self) -> bool {
        matches!(
            self.op,
            Opcode::Jump { .. } | Opcode::Jtab { .. } | Opcode::Ret | Opcode::Halt
        )
    }

    /// True if the instruction may legally carry a guard predicate:
    /// computational and memory instructions, plus *conditional branches*
    /// (the "predicated branch instructions" of the authors' prior work
    /// [13], which the split-branch transform relies on: a false guard
    /// annuls the branch entirely).  Unconditional control flow and calls
    /// cannot be guarded.
    pub fn can_guard(&self) -> bool {
        match self.op {
            Opcode::Branch { .. } => true,
            Opcode::Call { .. } => false,
            _ => !self.is_control(),
        }
    }

    /// True if speculating (unconditionally hoisting) this instruction above
    /// a branch is safe: no memory writes, no control, no faulting ops.
    /// Loads are allowed only when `allow_loads` (the "dismissible load"
    /// model); integer ops cannot fault in this IR.
    pub fn can_speculate(&self, allow_loads: bool) -> bool {
        use Opcode::*;
        match &self.op {
            Store { .. } | FStore { .. } => false,
            Load { .. } | FLoad { .. } => allow_loads,
            FAlu {
                kind: FAluKind::Div,
                ..
            }
            | FAlu {
                kind: FAluKind::Sqrt,
                ..
            } => false,
            Call { .. } => false,
            _ => !self.is_control(),
        }
    }

    /// Direct control-flow targets of this instruction (empty for
    /// non-control instructions; the fall-through successor is implicit).
    pub fn targets(&self) -> Vec<BlockId> {
        match &self.op {
            Opcode::Branch { target, .. } | Opcode::Jump { target } => vec![*target],
            Opcode::Jtab { table, .. } => table.clone(),
            _ => Vec::new(),
        }
    }

    /// Rewrite every use of register `from` into `to` (same file required
    /// for a rewrite to apply).  Returns the number of operands rewritten.
    /// This is the primitive behind *forward substitution* (Figure 1(b)).
    pub fn rewrite_uses(&mut self, from: Reg, to: Reg) -> usize {
        use Opcode::*;
        let mut n = 0;
        let (fi, ti) = (from.as_int(), to.as_int());
        let mut ri = |r: &mut IntReg| {
            if let (Some(f), Some(t)) = (fi, ti) {
                if *r == f {
                    *r = t;
                    n += 1;
                }
            }
        };
        match &mut self.op {
            Alu { a, b, .. } | Shift { a, b, .. } => {
                ri(a);
                ri(b);
            }
            AluImm { a, .. } | ShiftImm { a, .. } => ri(a),
            Mov { src, .. } => ri(src),
            Load { base, .. } => ri(base),
            Store { src, base, .. } => {
                ri(src);
                ri(base);
            }
            FLoad { base, .. } | FStore { base, .. } => ri(base),
            ItoF { src, .. } => ri(src),
            SetP { a, b, .. } => {
                ri(a);
                ri(b);
            }
            SetPImm { a, .. } => ri(a),
            Branch { cond, .. } => match cond {
                BranchCond::Eq(a, b) | BranchCond::Ne(a, b) => {
                    ri(a);
                    ri(b);
                }
                BranchCond::Lez(a)
                | BranchCond::Gtz(a)
                | BranchCond::Ltz(a)
                | BranchCond::Gez(a) => ri(a),
                BranchCond::PredT(_) | BranchCond::PredF(_) => {}
            },
            Jtab { index, .. } => ri(index),
            _ => {}
        }
        // FP and predicate operand rewrites.
        let (ff, tf) = (from.as_flt(), to.as_flt());
        if let (Some(f), Some(t)) = (ff, tf) {
            let mut rf = |r: &mut FltReg| {
                if *r == f {
                    *r = t;
                    n += 1;
                }
            };
            match &mut self.op {
                FAlu { a, b, .. } => {
                    rf(a);
                    rf(b);
                }
                FMov { src, .. } => rf(src),
                FStore { src, .. } => rf(src),
                FtoI { src, .. } => rf(src),
                _ => {}
            }
        }
        let (fp, tp) = (from.as_pred(), to.as_pred());
        if let (Some(f), Some(t)) = (fp, tp) {
            let mut rp = |r: &mut PredReg| {
                if *r == f {
                    *r = t;
                    n += 1;
                }
            };
            match &mut self.op {
                PLogic { a, b, .. } => {
                    rp(a);
                    rp(b);
                }
                PNot { src, .. } => rp(src),
                Branch {
                    cond: BranchCond::PredT(p) | BranchCond::PredF(p),
                    ..
                } => rp(p),
                _ => {}
            }
            if let Some(g) = &mut self.guard {
                if g.pred == f {
                    g.pred = t;
                    n += 1;
                }
            }
        }
        n
    }

    /// Replace the destination register (must be the same register file).
    /// Returns false if the instruction has no def or the file differs.
    /// This is the primitive behind *software renaming* (Figure 1(b)).
    pub fn rename_def(&mut self, to: Reg) -> bool {
        use Opcode::*;
        match (&mut self.op, to) {
            (Alu { dst, .. }, Reg::Int(t))
            | (AluImm { dst, .. }, Reg::Int(t))
            | (Li { dst, .. }, Reg::Int(t))
            | (Mov { dst, .. }, Reg::Int(t))
            | (Shift { dst, .. }, Reg::Int(t))
            | (ShiftImm { dst, .. }, Reg::Int(t))
            | (Load { dst, .. }, Reg::Int(t))
            | (FtoI { dst, .. }, Reg::Int(t)) => {
                *dst = t;
                true
            }
            (FAlu { dst, .. }, Reg::Flt(t))
            | (FMov { dst, .. }, Reg::Flt(t))
            | (FLoad { dst, .. }, Reg::Flt(t))
            | (ItoF { dst, .. }, Reg::Flt(t)) => {
                *dst = t;
                true
            }
            (SetP { dst, .. }, Reg::Pred(t))
            | (SetPImm { dst, .. }, Reg::Pred(t))
            | (PLogic { dst, .. }, Reg::Pred(t))
            | (PNot { dst, .. }, Reg::Pred(t)) => {
                *dst = t;
                true
            }
            _ => false,
        }
    }

    /// Remap every block-id target through `f` (used when blocks are
    /// inserted/renumbered by transforms).
    pub fn remap_targets(&mut self, f: &mut dyn FnMut(BlockId) -> BlockId) {
        match &mut self.op {
            Opcode::Branch { target, .. } | Opcode::Jump { target } => *target = f(*target),
            Opcode::Jtab { table, .. } => {
                for t in table.iter_mut() {
                    *t = f(*t);
                }
            }
            _ => {}
        }
    }
}

impl From<Opcode> for Instruction {
    fn from(op: Opcode) -> Instruction {
        Instruction::new(op)
    }
}
