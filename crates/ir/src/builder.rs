//! Ergonomic program construction with label-based control flow.
//!
//! Branch targets are given as string labels and resolved when the function
//! is finished; calls are given as function names and resolved when the
//! program is finished.

use crate::insn::*;
use crate::program::*;
use crate::reg::*;

/// Builds one [`Function`], resolving block labels at the end.
///
/// ```
/// use guardspec_ir::builder::{single_func_program, FuncBuilder};
/// use guardspec_ir::reg::r;
/// let mut fb = FuncBuilder::new("count");
/// fb.block("entry");
/// fb.li(r(1), 10);
/// fb.block("loop");
/// fb.subi(r(1), r(1), 1);
/// fb.bgtz(r(1), "loop");
/// fb.block("done");
/// fb.halt();
/// let prog = single_func_program(fb);
/// assert!(guardspec_ir::validate::validate(&prog).is_empty());
/// ```
pub struct FuncBuilder {
    func: Function,
    /// `(block, insn index, label)` fixups for branch/jump targets.
    fixups: Vec<(usize, usize, String)>,
    /// `(block, insn index, table of labels)` fixups for jump tables.
    tab_fixups: Vec<(usize, usize, Vec<String>)>,
    /// `(block, insn index, callee name)` fixups for calls.
    call_fixups: Vec<(usize, usize, String)>,
    started: bool,
}

impl FuncBuilder {
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        FuncBuilder {
            func: Function::new(name),
            fixups: Vec::new(),
            tab_fixups: Vec::new(),
            call_fixups: Vec::new(),
            started: false,
        }
    }

    /// Start a new basic block with the given label.
    pub fn block(&mut self, label: impl Into<String>) -> &mut Self {
        self.func.blocks.push(BasicBlock::new(label));
        self.started = true;
        self
    }

    fn cur(&mut self) -> &mut BasicBlock {
        if !self.started {
            self.block("entry");
        }
        self.func.blocks.last_mut().expect("block started")
    }

    /// Iterate the instructions appended so far, in block order.  Useful for
    /// generators that adapt later code to what earlier code touched.
    pub fn insns(&self) -> impl Iterator<Item = &Instruction> {
        self.func.blocks.iter().flat_map(|b| b.insns.iter())
    }

    /// Append an already-formed instruction.
    pub fn push(&mut self, i: impl Into<Instruction>) -> &mut Self {
        self.cur().insns.push(i.into());
        self
    }

    /// Append an instruction guarded by `(pred, expect)`.
    pub fn push_guarded(&mut self, op: Opcode, pred: PredReg, expect: bool) -> &mut Self {
        self.cur()
            .insns
            .push(Instruction::guarded(op, Guard { pred, expect }));
        self
    }

    // ---- integer ops -----------------------------------------------------

    pub fn alu(&mut self, kind: AluKind, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Alu { kind, dst, a, b })
    }
    pub fn alui(&mut self, kind: AluKind, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::AluImm { kind, dst, a, imm })
    }
    pub fn add(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Add, dst, a, b)
    }
    pub fn addi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Add, dst, a, imm)
    }
    pub fn sub(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Sub, dst, a, b)
    }
    pub fn subi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Sub, dst, a, imm)
    }
    pub fn and(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::And, dst, a, b)
    }
    pub fn andi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::And, dst, a, imm)
    }
    pub fn or(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Or, dst, a, b)
    }
    pub fn ori(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Or, dst, a, imm)
    }
    pub fn xor(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Xor, dst, a, b)
    }
    pub fn xori(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Xor, dst, a, imm)
    }
    pub fn mul(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Mul, dst, a, b)
    }
    pub fn slt(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Slt, dst, a, b)
    }
    pub fn slti(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Slt, dst, a, imm)
    }
    pub fn sltu(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Sltu, dst, a, b)
    }
    pub fn sltui(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Sltu, dst, a, imm)
    }
    pub fn nor(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.alu(AluKind::Nor, dst, a, b)
    }
    pub fn muli(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.alui(AluKind::Mul, dst, a, imm)
    }
    pub fn li(&mut self, dst: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::Li { dst, imm })
    }
    pub fn mov(&mut self, dst: IntReg, src: IntReg) -> &mut Self {
        self.push(Opcode::Mov { dst, src })
    }
    pub fn sll(&mut self, dst: IntReg, a: IntReg, sh: u8) -> &mut Self {
        self.push(Opcode::ShiftImm {
            kind: ShiftKind::Sll,
            dst,
            a,
            sh,
        })
    }
    pub fn srl(&mut self, dst: IntReg, a: IntReg, sh: u8) -> &mut Self {
        self.push(Opcode::ShiftImm {
            kind: ShiftKind::Srl,
            dst,
            a,
            sh,
        })
    }
    pub fn sra(&mut self, dst: IntReg, a: IntReg, sh: u8) -> &mut Self {
        self.push(Opcode::ShiftImm {
            kind: ShiftKind::Sra,
            dst,
            a,
            sh,
        })
    }
    pub fn sllv(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Shift {
            kind: ShiftKind::Sll,
            dst,
            a,
            b,
        })
    }
    pub fn srlv(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Shift {
            kind: ShiftKind::Srl,
            dst,
            a,
            b,
        })
    }
    pub fn srav(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Shift {
            kind: ShiftKind::Sra,
            dst,
            a,
            b,
        })
    }

    // ---- memory ----------------------------------------------------------

    pub fn lw(&mut self, dst: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::Load { dst, base, off })
    }
    pub fn sw(&mut self, src: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::Store { src, base, off })
    }

    // ---- floating point --------------------------------------------------

    pub fn fadd(&mut self, dst: FltReg, a: FltReg, b: FltReg) -> &mut Self {
        self.push(Opcode::FAlu {
            kind: FAluKind::Add,
            dst,
            a,
            b,
        })
    }
    pub fn fsub(&mut self, dst: FltReg, a: FltReg, b: FltReg) -> &mut Self {
        self.push(Opcode::FAlu {
            kind: FAluKind::Sub,
            dst,
            a,
            b,
        })
    }
    pub fn fmul(&mut self, dst: FltReg, a: FltReg, b: FltReg) -> &mut Self {
        self.push(Opcode::FAlu {
            kind: FAluKind::Mul,
            dst,
            a,
            b,
        })
    }
    pub fn fdiv(&mut self, dst: FltReg, a: FltReg, b: FltReg) -> &mut Self {
        self.push(Opcode::FAlu {
            kind: FAluKind::Div,
            dst,
            a,
            b,
        })
    }
    pub fn fsqrt(&mut self, dst: FltReg, a: FltReg) -> &mut Self {
        self.push(Opcode::FAlu {
            kind: FAluKind::Sqrt,
            dst,
            a,
            b: a,
        })
    }
    pub fn fmov(&mut self, dst: FltReg, src: FltReg) -> &mut Self {
        self.push(Opcode::FMov { dst, src })
    }
    pub fn flw(&mut self, dst: FltReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::FLoad { dst, base, off })
    }
    pub fn fsw(&mut self, src: FltReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::FStore { src, base, off })
    }
    pub fn itof(&mut self, dst: FltReg, src: IntReg) -> &mut Self {
        self.push(Opcode::ItoF { dst, src })
    }
    pub fn ftoi(&mut self, dst: IntReg, src: FltReg) -> &mut Self {
        self.push(Opcode::FtoI { dst, src })
    }

    // ---- predicates ------------------------------------------------------

    pub fn setp(&mut self, cond: SetCond, dst: PredReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::SetP { cond, dst, a, b })
    }
    pub fn setpi(&mut self, cond: SetCond, dst: PredReg, a: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::SetPImm { cond, dst, a, imm })
    }
    pub fn pand(&mut self, dst: PredReg, a: PredReg, b: PredReg) -> &mut Self {
        self.push(Opcode::PLogic {
            kind: PLogicKind::And,
            dst,
            a,
            b,
        })
    }
    pub fn por(&mut self, dst: PredReg, a: PredReg, b: PredReg) -> &mut Self {
        self.push(Opcode::PLogic {
            kind: PLogicKind::Or,
            dst,
            a,
            b,
        })
    }
    pub fn pnot(&mut self, dst: PredReg, src: PredReg) -> &mut Self {
        self.push(Opcode::PNot { dst, src })
    }

    /// Conditional move: `dst = src` when `pred == expect` (guarded `mov`).
    pub fn cmov(&mut self, dst: IntReg, src: IntReg, pred: PredReg, expect: bool) -> &mut Self {
        self.push_guarded(Opcode::Mov { dst, src }, pred, expect)
    }

    // ---- control flow ----------------------------------------------------

    fn branch_fix(&mut self, cond: BranchCond, label: &str, likely: bool) -> &mut Self {
        let placeholder = BlockId(u32::MAX);
        self.push(Opcode::Branch {
            cond,
            target: placeholder,
            likely,
        });
        let bi = self.func.blocks.len() - 1;
        let ii = self.func.blocks[bi].insns.len() - 1;
        self.fixups.push((bi, ii, label.to_string()));
        self
    }

    pub fn beq(&mut self, a: IntReg, b: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Eq(a, b), label, false)
    }
    pub fn bne(&mut self, a: IntReg, b: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Ne(a, b), label, false)
    }
    pub fn blez(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Lez(a), label, false)
    }
    pub fn bgtz(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Gtz(a), label, false)
    }
    pub fn bltz(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Ltz(a), label, false)
    }
    pub fn bgez(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Gez(a), label, false)
    }
    pub fn bpt(&mut self, p: PredReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::PredT(p), label, false)
    }
    pub fn bpf(&mut self, p: PredReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::PredF(p), label, false)
    }

    /// Branch-likely forms (statically predicted taken, no BTB entry).
    pub fn beql(&mut self, a: IntReg, b: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Eq(a, b), label, true)
    }
    pub fn bnel(&mut self, a: IntReg, b: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Ne(a, b), label, true)
    }
    pub fn bptl(&mut self, p: PredReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::PredT(p), label, true)
    }
    pub fn bpfl(&mut self, p: PredReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::PredF(p), label, true)
    }
    pub fn blezl(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Lez(a), label, true)
    }
    pub fn bgtzl(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Gtz(a), label, true)
    }
    pub fn bltzl(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Ltz(a), label, true)
    }
    pub fn bgezl(&mut self, a: IntReg, label: &str) -> &mut Self {
        self.branch_fix(BranchCond::Gez(a), label, true)
    }

    pub fn jump(&mut self, label: &str) -> &mut Self {
        let placeholder = BlockId(u32::MAX);
        self.push(Opcode::Jump {
            target: placeholder,
        });
        let bi = self.func.blocks.len() - 1;
        let ii = self.func.blocks[bi].insns.len() - 1;
        self.fixups.push((bi, ii, label.to_string()));
        self
    }

    /// Register-relative jump through a label table (`switch` dispatch).
    pub fn jtab(&mut self, index: IntReg, labels: &[&str]) -> &mut Self {
        self.push(Opcode::Jtab {
            index,
            table: Vec::new(),
        });
        let bi = self.func.blocks.len() - 1;
        let ii = self.func.blocks[bi].insns.len() - 1;
        self.tab_fixups
            .push((bi, ii, labels.iter().map(|s| s.to_string()).collect()));
        self
    }

    pub fn call(&mut self, name: &str) -> &mut Self {
        self.push(Opcode::Call {
            func: FuncId(u32::MAX),
        });
        let bi = self.func.blocks.len() - 1;
        let ii = self.func.blocks[bi].insns.len() - 1;
        self.call_fixups.push((bi, ii, name.to_string()));
        self
    }

    pub fn ret(&mut self) -> &mut Self {
        self.push(Opcode::Ret)
    }
    pub fn halt(&mut self) -> &mut Self {
        self.push(Opcode::Halt)
    }
    pub fn nop(&mut self) -> &mut Self {
        self.push(Opcode::Nop)
    }

    /// Resolve label fixups and hand back the function plus unresolved call
    /// fixups (resolved later by [`ProgramBuilder::finish`]).
    fn finish_internal(mut self) -> (Function, Vec<(usize, usize, String)>) {
        for (bi, ii, label) in std::mem::take(&mut self.fixups) {
            let target = self
                .func
                .block_by_label(&label)
                .unwrap_or_else(|| panic!("undefined label `{label}` in `{}`", self.func.name));
            match &mut self.func.blocks[bi].insns[ii].op {
                Opcode::Branch { target: t, .. } | Opcode::Jump { target: t } => *t = target,
                other => panic!("fixup on non-branch {other:?}"),
            }
        }
        for (bi, ii, labels) in std::mem::take(&mut self.tab_fixups) {
            let table: Vec<BlockId> = labels
                .iter()
                .map(|l| {
                    self.func
                        .block_by_label(l)
                        .unwrap_or_else(|| panic!("undefined label `{l}` in `{}`", self.func.name))
                })
                .collect();
            match &mut self.func.blocks[bi].insns[ii].op {
                Opcode::Jtab { table: t, .. } => *t = table,
                other => panic!("table fixup on non-jtab {other:?}"),
            }
        }
        (self.func, self.call_fixups)
    }

    /// Finish a function that makes no calls.
    pub fn finish(self) -> Function {
        let name = self.func.name.clone();
        let (f, calls) = self.finish_internal();
        assert!(
            calls.is_empty(),
            "function `{name}` has unresolved calls; use ProgramBuilder"
        );
        f
    }
}

/// Builds a whole [`Program`], resolving cross-function calls by name.
pub struct ProgramBuilder {
    funcs: Vec<Function>,
    pending_calls: Vec<(usize, usize, usize, String)>,
    data: Vec<(u64, i64)>,
    mem_words: u64,
}

impl ProgramBuilder {
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            funcs: Vec::new(),
            pending_calls: Vec::new(),
            data: Vec::new(),
            mem_words: 1 << 16,
        }
    }

    /// Add an already-built function (no label/call fixups performed).
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Add a finished builder's function.
    pub fn add_func(&mut self, fb: FuncBuilder) -> FuncId {
        let (f, calls) = fb.finish_internal();
        let fi = self.funcs.len();
        for (bi, ii, name) in calls {
            self.pending_calls.push((fi, bi, ii, name));
        }
        self.funcs.push(f);
        FuncId(fi as u32)
    }

    /// Preload one memory word.
    pub fn data_word(&mut self, addr: u64, value: i64) -> &mut Self {
        self.data.push((addr, value));
        self
    }

    /// Preload a slice of memory words starting at `addr`.
    pub fn data_words(&mut self, addr: u64, values: &[i64]) -> &mut Self {
        for (i, v) in values.iter().enumerate() {
            self.data.push((addr + i as u64, *v));
        }
        self
    }

    /// Set the memory size in words.
    pub fn mem_words(&mut self, words: u64) -> &mut Self {
        self.mem_words = words;
        self
    }

    /// Resolve calls and produce the program; entry is the function named
    /// `entry_name`.
    pub fn finish(mut self, entry_name: &str) -> Program {
        let lookup: std::collections::HashMap<String, FuncId> = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        for (fi, bi, ii, name) in std::mem::take(&mut self.pending_calls) {
            let id = *lookup
                .get(&name)
                .unwrap_or_else(|| panic!("call to undefined function `{name}`"));
            match &mut self.funcs[fi].blocks[bi].insns[ii].op {
                Opcode::Call { func } => *func = id,
                other => panic!("call fixup on non-call {other:?}"),
            }
        }
        let entry = *lookup
            .get(entry_name)
            .unwrap_or_else(|| panic!("entry function `{entry_name}` not defined"));
        Program {
            funcs: self.funcs,
            entry,
            data: self.data,
            mem_words: self.mem_words,
        }
    }
}

impl Default for ProgramBuilder {
    fn default() -> ProgramBuilder {
        ProgramBuilder::new()
    }
}

/// Wrap a single call-free function into a program.
pub fn single_func_program(fb: FuncBuilder) -> Program {
    let mut pb = ProgramBuilder::new();
    let name = fb.func.name.clone();
    pb.add_func(fb);
    pb.finish(&name)
}
