//! Textual assembly parsing — the inverse of [`crate::print`].
//!
//! Grammar (line oriented, `#` starts a comment):
//!
//! ```text
//! program  := directive* func*
//! directive:= ".mem_words" N | ".entry" NAME | ".data" ADDR ":" VALUE+
//! func     := "func" NAME ":" block*
//! block    := LABEL ":" insn*
//! insn     := guard? MNEMONIC operands
//! guard    := "(" "!"? PREG ")"
//! ```
//!
//! The directives carry the non-code program state (memory size, initial
//! memory image, entry point), so `Program::to_string` → `parse_program`
//! round-trips the *whole* program, not just its instructions.

use crate::insn::*;
use crate::program::*;
use crate::reg::*;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a whole program.  `entry` names the entry function (defaults to the
/// first function when `None`).
pub fn parse_program(src: &str, entry: Option<&str>) -> PResult<Program> {
    // Pass 1: split into functions.
    struct RawFunc<'a> {
        name: String,
        lines: Vec<(usize, &'a str)>,
    }
    let mut raw: Vec<RawFunc> = Vec::new();
    let mut data: Vec<(u64, i64)> = Vec::new();
    let mut mem_words: u64 = 1 << 16;
    let mut entry_directive: Option<String> = None;
    for (ln0, raw_line) in src.lines().enumerate() {
        let line = ln0 + 1;
        let text = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('.') {
            parse_directive(line, rest, &mut data, &mut mem_words, &mut entry_directive)?;
            continue;
        }
        if let Some(rest) = text.strip_prefix("func ") {
            let name = rest.trim_end_matches(':').trim();
            if name.is_empty() {
                return err(line, "empty function name");
            }
            raw.push(RawFunc {
                name: name.to_string(),
                lines: Vec::new(),
            });
        } else {
            match raw.last_mut() {
                Some(f) => f.lines.push((line, text)),
                None => return err(line, "instruction before any `func` header"),
            }
        }
    }
    if raw.is_empty() {
        return err(0, "no functions in source");
    }

    let func_ids: HashMap<String, FuncId> = raw
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
        .collect();

    let mut funcs = Vec::new();
    for rf in &raw {
        funcs.push(parse_func(&rf.name, &rf.lines, &func_ids)?);
    }

    // Explicit argument beats the `.entry` directive beats the first func.
    let entry_name = entry.or(entry_directive.as_deref()).unwrap_or(&raw[0].name);
    let entry = match func_ids.get(entry_name) {
        Some(id) => *id,
        None => return err(0, format!("entry function `{entry_name}` not found")),
    };
    Ok(Program {
        funcs,
        entry,
        data,
        mem_words,
    })
}

/// Parse a header directive (the leading `.` already stripped):
///
/// * `.mem_words N` — memory size in words,
/// * `.entry NAME` — entry function (overridden by an explicit caller arg),
/// * `.data ADDR: V ...` — initial memory words at consecutive addresses.
fn parse_directive(
    line: usize,
    rest: &str,
    data: &mut Vec<(u64, i64)>,
    mem_words: &mut u64,
    entry: &mut Option<String>,
) -> PResult<()> {
    let mut toks = rest.split_whitespace();
    match toks.next() {
        Some("mem_words") => {
            let n = toks
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| ParseError {
                    line,
                    msg: ".mem_words needs a word count".into(),
                })?;
            *mem_words = n;
        }
        Some("entry") => {
            let name = toks.next().ok_or_else(|| ParseError {
                line,
                msg: ".entry needs a function name".into(),
            })?;
            *entry = Some(name.to_string());
        }
        Some("data") => {
            let addr_tok = toks.next().ok_or_else(|| ParseError {
                line,
                msg: ".data needs an address".into(),
            })?;
            let addr = addr_tok
                .trim_end_matches(':')
                .parse::<u64>()
                .map_err(|_| ParseError {
                    line,
                    msg: format!(".data address `{addr_tok}` is not a number"),
                })?;
            let mut any = false;
            for (i, t) in toks.enumerate() {
                let v = t.parse::<i64>().map_err(|_| ParseError {
                    line,
                    msg: format!(".data value `{t}` is not a number"),
                })?;
                data.push((addr + i as u64, v));
                any = true;
            }
            if !any {
                return err(line, ".data needs at least one value");
            }
        }
        Some(other) => return err(line, format!("unknown directive `.{other}`")),
        None => return err(line, "empty directive"),
    }
    Ok(())
}

/// Parse a single function body (without the `func` header line).
pub fn parse_func_body(name: &str, src: &str) -> PResult<Function> {
    let lines: Vec<(usize, &str)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| {
            (
                i + 1,
                match l.find('#') {
                    Some(k) => l[..k].trim(),
                    None => l.trim(),
                },
            )
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();
    parse_func(name, &lines, &HashMap::new())
}

fn parse_func(
    name: &str,
    lines: &[(usize, &str)],
    func_ids: &HashMap<String, FuncId>,
) -> PResult<Function> {
    // Pass 1: labels.
    let mut labels: HashMap<String, BlockId> = HashMap::new();
    let mut nblocks = 0u32;
    for (line, text) in lines {
        if let Some(lbl) = as_label(text) {
            if labels.insert(lbl.to_string(), BlockId(nblocks)).is_some() {
                return err(*line, format!("duplicate label `{lbl}`"));
            }
            nblocks += 1;
        }
    }

    let mut f = Function::new(name);
    for (line, text) in lines {
        if let Some(lbl) = as_label(text) {
            f.blocks.push(BasicBlock::new(lbl));
            continue;
        }
        if f.blocks.is_empty() {
            return err(*line, "instruction before any label");
        }
        let insn = parse_insn(*line, text, &labels, func_ids)?;
        f.blocks.last_mut().unwrap().insns.push(insn);
    }
    if f.blocks.is_empty() {
        return err(0, format!("function `{name}` has no blocks"));
    }
    Ok(f)
}

fn as_label(text: &str) -> Option<&str> {
    let t = text.strip_suffix(':')?;
    if !t.is_empty() && !t.contains(char::is_whitespace) && !t.contains(',') {
        Some(t)
    } else {
        None
    }
}

fn parse_insn(
    line: usize,
    text: &str,
    labels: &HashMap<String, BlockId>,
    func_ids: &HashMap<String, FuncId>,
) -> PResult<Instruction> {
    let mut rest = text;
    // Optional guard prefix.
    let mut guard = None;
    if rest.starts_with('(') {
        let close = match rest.find(')') {
            Some(i) => i,
            None => return err(line, "unterminated guard"),
        };
        let inner = rest[1..close].trim();
        let (expect, pname) = match inner.strip_prefix('!') {
            Some(p) => (false, p.trim()),
            None => (true, inner),
        };
        let pred = parse_pred(line, pname)?;
        guard = Some(Guard { pred, expect });
        rest = rest[close + 1..].trim_start();
    }

    let (mnem, ops) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };

    let args: Vec<String> = split_operands(ops);
    let a = |i: usize| -> PResult<&str> {
        args.get(i).map(|s| s.as_str()).ok_or(ParseError {
            line,
            msg: format!("missing operand {i} for `{mnem}`"),
        })
    };
    let nargs = args.len();
    let want = |n: usize| -> PResult<()> {
        if nargs != n {
            err(line, format!("`{mnem}` wants {n} operands, got {nargs}"))
        } else {
            Ok(())
        }
    };

    let ir = |line: usize, s: &str| parse_int_reg(line, s);
    let fr = |line: usize, s: &str| parse_flt_reg(line, s);
    let blk = |line: usize, s: &str| -> PResult<BlockId> {
        labels.get(s).copied().ok_or(ParseError {
            line,
            msg: format!("undefined label `{s}`"),
        })
    };

    use Opcode::*;
    let alu3 = |k: AluKind, line: usize, args: &[String]| -> PResult<Opcode> {
        Ok(Alu {
            kind: k,
            dst: ir(line, &args[0])?,
            a: ir(line, &args[1])?,
            b: ir(line, &args[2])?,
        })
    };
    let alui = |k: AluKind, line: usize, args: &[String]| -> PResult<Opcode> {
        Ok(AluImm {
            kind: k,
            dst: ir(line, &args[0])?,
            a: ir(line, &args[1])?,
            imm: parse_imm(line, &args[2])?,
        })
    };

    let op: Opcode = match mnem {
        "add" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" | "mul" => {
            want(3)?;
            alu3(alu_kind(mnem), line, &args)?
        }
        "addi" | "subi" | "andi" | "ori" | "xori" | "nori" | "slti" | "sltui" | "muli" => {
            want(3)?;
            alui(alu_kind(&mnem[..mnem.len() - 1]), line, &args)?
        }
        "li" => {
            want(2)?;
            Li {
                dst: ir(line, a(0)?)?,
                imm: parse_imm(line, a(1)?)?,
            }
        }
        "mov" => {
            want(2)?;
            Mov {
                dst: ir(line, a(0)?)?,
                src: ir(line, a(1)?)?,
            }
        }
        "sll" | "srl" | "sra" => {
            want(3)?;
            ShiftImm {
                kind: shift_kind(mnem),
                dst: ir(line, a(0)?)?,
                a: ir(line, a(1)?)?,
                sh: parse_imm(line, a(2)?)? as u8,
            }
        }
        "sllv" | "srlv" | "srav" => {
            want(3)?;
            Shift {
                kind: shift_kind(&mnem[..3]),
                dst: ir(line, a(0)?)?,
                a: ir(line, a(1)?)?,
                b: ir(line, a(2)?)?,
            }
        }
        "lw" => {
            want(2)?;
            let (off, base) = parse_mem(line, a(1)?)?;
            Load {
                dst: ir(line, a(0)?)?,
                base,
                off,
            }
        }
        "sw" => {
            want(2)?;
            let (off, base) = parse_mem(line, a(1)?)?;
            Store {
                src: ir(line, a(0)?)?,
                base,
                off,
            }
        }
        "fadd" | "fsub" | "fmul" | "fdiv" | "fsqrt" => {
            want(3)?;
            FAlu {
                kind: falu_kind(mnem),
                dst: fr(line, a(0)?)?,
                a: fr(line, a(1)?)?,
                b: fr(line, a(2)?)?,
            }
        }
        "fmov" => {
            want(2)?;
            FMov {
                dst: fr(line, a(0)?)?,
                src: fr(line, a(1)?)?,
            }
        }
        "flw" => {
            want(2)?;
            let (off, base) = parse_mem(line, a(1)?)?;
            FLoad {
                dst: fr(line, a(0)?)?,
                base,
                off,
            }
        }
        "fsw" => {
            want(2)?;
            let (off, base) = parse_mem(line, a(1)?)?;
            FStore {
                src: fr(line, a(0)?)?,
                base,
                off,
            }
        }
        "itof" => {
            want(2)?;
            ItoF {
                dst: fr(line, a(0)?)?,
                src: ir(line, a(1)?)?,
            }
        }
        "ftoi" => {
            want(2)?;
            FtoI {
                dst: ir(line, a(0)?)?,
                src: fr(line, a(1)?)?,
            }
        }
        _ if mnem.starts_with("setp.") => {
            want(3)?;
            let suffix = &mnem[5..];
            let (cond, is_imm) = match suffix.strip_suffix('i') {
                Some(c) if set_cond(c).is_some() => (set_cond(c).unwrap(), true),
                _ => match set_cond(suffix) {
                    Some(c) => (c, false),
                    None => return err(line, format!("bad setp condition `{suffix}`")),
                },
            };
            let dst = parse_pred(line, a(0)?)?;
            let ra = ir(line, a(1)?)?;
            if is_imm {
                SetPImm {
                    cond,
                    dst,
                    a: ra,
                    imm: parse_imm(line, a(2)?)?,
                }
            } else {
                SetP {
                    cond,
                    dst,
                    a: ra,
                    b: ir(line, a(2)?)?,
                }
            }
        }
        "pand" | "por" | "pxor" => {
            want(3)?;
            PLogic {
                kind: match mnem {
                    "pand" => PLogicKind::And,
                    "por" => PLogicKind::Or,
                    _ => PLogicKind::Xor,
                },
                dst: parse_pred(line, a(0)?)?,
                a: parse_pred(line, a(1)?)?,
                b: parse_pred(line, a(2)?)?,
            }
        }
        "pnot" => {
            want(2)?;
            PNot {
                dst: parse_pred(line, a(0)?)?,
                src: parse_pred(line, a(1)?)?,
            }
        }
        "beq" | "bne" | "beql" | "bnel" => {
            want(3)?;
            let likely = mnem.ends_with('l') && mnem.len() == 4;
            let (ra, rb) = (ir(line, a(0)?)?, ir(line, a(1)?)?);
            let cond = if mnem.starts_with("beq") {
                BranchCond::Eq(ra, rb)
            } else {
                BranchCond::Ne(ra, rb)
            };
            Branch {
                cond,
                target: blk(line, a(2)?)?,
                likely,
            }
        }
        "blez" | "bgtz" | "bltz" | "bgez" | "blezl" | "bgtzl" | "bltzl" | "bgezl" => {
            want(2)?;
            let likely = mnem.len() == 5;
            let base = &mnem[..4];
            let ra = ir(line, a(0)?)?;
            let cond = match base {
                "blez" => BranchCond::Lez(ra),
                "bgtz" => BranchCond::Gtz(ra),
                "bltz" => BranchCond::Ltz(ra),
                _ => BranchCond::Gez(ra),
            };
            Branch {
                cond,
                target: blk(line, a(1)?)?,
                likely,
            }
        }
        "bpt" | "bpf" | "bptl" | "bpfl" => {
            want(2)?;
            let likely = mnem.len() == 4;
            let p = parse_pred(line, a(0)?)?;
            let cond = if mnem.starts_with("bpt") {
                BranchCond::PredT(p)
            } else {
                BranchCond::PredF(p)
            };
            Branch {
                cond,
                target: blk(line, a(1)?)?,
                likely,
            }
        }
        "j" => {
            want(1)?;
            Jump {
                target: blk(line, a(0)?)?,
            }
        }
        "jtab" => {
            if nargs < 2 {
                return err(line, "`jtab` wants an index register and a label table");
            }
            let index = ir(line, a(0)?)?;
            let mut table = Vec::new();
            for lbl in &args[1..] {
                let l = lbl.trim_start_matches('[').trim_end_matches(']').trim();
                if l.is_empty() {
                    continue;
                }
                table.push(blk(line, l)?);
            }
            Jtab { index, table }
        }
        "call" => {
            want(1)?;
            let name = a(0)?;
            match func_ids.get(name) {
                Some(id) => Call { func: *id },
                None => return err(line, format!("call to undefined function `{name}`")),
            }
        }
        "ret" => {
            want(0)?;
            Ret
        }
        "halt" => {
            want(0)?;
            Halt
        }
        "nop" => {
            want(0)?;
            Nop
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    };
    Ok(Instruction { op, guard })
}

fn alu_kind(m: &str) -> AluKind {
    match m {
        "add" => AluKind::Add,
        "sub" => AluKind::Sub,
        "and" => AluKind::And,
        "or" => AluKind::Or,
        "xor" => AluKind::Xor,
        "nor" => AluKind::Nor,
        "slt" => AluKind::Slt,
        "sltu" => AluKind::Sltu,
        "mul" => AluKind::Mul,
        _ => unreachable!("alu_kind({m})"),
    }
}

fn shift_kind(m: &str) -> ShiftKind {
    match m {
        "sll" => ShiftKind::Sll,
        "srl" => ShiftKind::Srl,
        _ => ShiftKind::Sra,
    }
}

fn falu_kind(m: &str) -> FAluKind {
    match m {
        "fadd" => FAluKind::Add,
        "fsub" => FAluKind::Sub,
        "fmul" => FAluKind::Mul,
        "fdiv" => FAluKind::Div,
        _ => FAluKind::Sqrt,
    }
}

fn set_cond(s: &str) -> Option<SetCond> {
    Some(match s {
        "eq" => SetCond::Eq,
        "ne" => SetCond::Ne,
        "lt" => SetCond::Lt,
        "le" => SetCond::Le,
        "gt" => SetCond::Gt,
        "ge" => SetCond::Ge,
        _ => return None,
    })
}

fn split_operands(s: &str) -> Vec<String> {
    s.split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_int_reg(line: usize, s: &str) -> PResult<IntReg> {
    match s.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
        Some(i) if i < NUM_INT_REGS => Ok(IntReg(i)),
        _ => err(line, format!("bad integer register `{s}`")),
    }
}

fn parse_flt_reg(line: usize, s: &str) -> PResult<FltReg> {
    match s.strip_prefix('f').and_then(|n| n.parse::<u8>().ok()) {
        Some(i) if i < NUM_FLT_REGS => Ok(FltReg(i)),
        _ => err(line, format!("bad FP register `{s}`")),
    }
}

fn parse_pred(line: usize, s: &str) -> PResult<PredReg> {
    match s.strip_prefix('p').and_then(|n| n.parse::<u8>().ok()) {
        Some(i) if i < NUM_PRED_REGS => Ok(PredReg(i)),
        _ => err(line, format!("bad predicate register `{s}`")),
    }
}

fn parse_imm(line: usize, s: &str) -> PResult<i64> {
    let t = s.trim();
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        t.parse::<i64>().ok()
    };
    v.ok_or(ParseError {
        line,
        msg: format!("bad immediate `{s}`"),
    })
}

/// Parse `off(base)` memory operands.
fn parse_mem(line: usize, s: &str) -> PResult<(i64, IntReg)> {
    let open = s.find('(');
    let close = s.rfind(')');
    match (open, close) {
        (Some(o), Some(c)) if c > o => {
            let off = if o == 0 { 0 } else { parse_imm(line, &s[..o])? };
            let base = parse_int_reg(line, s[o + 1..c].trim())?;
            Ok((off, base))
        }
        _ => err(line, format!("bad memory operand `{s}`")),
    }
}
