//! Program structure: blocks, functions, whole programs.

use crate::insn::{Instruction, Opcode};

/// Index of a basic block within its function's layout order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a function within a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncId(pub u32);

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stable reference to one static instruction site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InsnRef {
    pub func: FuncId,
    pub block: BlockId,
    pub idx: u32,
}

/// A basic block: a label, straight-line instructions, and (as the last
/// instruction) an optional control transfer.  A block whose last
/// instruction is not an unconditional exit falls through to the next block
/// in layout order.
#[derive(Clone, PartialEq, Debug)]
pub struct BasicBlock {
    pub label: String,
    pub insns: Vec<Instruction>,
}

impl BasicBlock {
    pub fn new(label: impl Into<String>) -> BasicBlock {
        BasicBlock {
            label: label.into(),
            insns: Vec::new(),
        }
    }

    /// The control-flow instruction ending the block, if any.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.insns.last().filter(|i| i.is_control())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut Instruction> {
        self.insns.last_mut().filter(|i| i.is_control())
    }

    /// The straight-line body: all instructions except a trailing terminator.
    pub fn body(&self) -> &[Instruction] {
        match self.terminator() {
            Some(_) => &self.insns[..self.insns.len() - 1],
            None => &self.insns[..],
        }
    }

    /// Number of instructions in the straight-line body.
    pub fn body_len(&self) -> usize {
        self.body().len()
    }

    /// True if this block can fall through to the next block in layout.
    pub fn falls_through(&self) -> bool {
        match self.insns.last() {
            Some(i) => !i.is_unconditional_exit(),
            None => true,
        }
    }
}

/// A function: an entry block (always block 0) plus a layout-ordered list of
/// basic blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    pub name: String,
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate `(BlockId, &BasicBlock)` in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Find a block by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .map(|i| BlockId(i as u32))
    }

    /// Total static instruction count.
    pub fn num_insns(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len()).sum()
    }

    /// Successor block ids of `id`, fall-through first (when present).
    /// `Jtab` successors appear in table order, deduplicated.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        let b = self.block(id);
        let mut out = Vec::new();
        if b.falls_through() {
            let next = BlockId(id.0 + 1);
            if next.index() < self.blocks.len() {
                out.push(next);
            }
        }
        if let Some(t) = b.terminator() {
            for s in t.targets() {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Append a fresh block and return its id.
    pub fn push_block(&mut self, b: BasicBlock) -> BlockId {
        self.blocks.push(b);
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Generate a label not currently used by any block.
    pub fn fresh_label(&self, stem: &str) -> String {
        let mut n = 0usize;
        loop {
            let cand = format!("{stem}{n}");
            if self.block_by_label(&cand).is_none() {
                return cand;
            }
            n += 1;
        }
    }
}

/// A whole program: functions plus static data to preload into memory and
/// the number of memory words the program needs.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    pub funcs: Vec<Function>,
    /// Function executed first.
    pub entry: FuncId,
    /// `(word_address, value)` pairs loaded into memory before execution.
    pub data: Vec<(u64, i64)>,
    /// Memory size in words; addresses are word-granular.
    pub mem_words: u64,
}

impl Program {
    pub fn new() -> Program {
        Program {
            funcs: Vec::new(),
            entry: FuncId(0),
            data: Vec::new(),
            mem_words: 1 << 16,
        }
    }

    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Iterate `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total static instruction count across all functions.
    pub fn num_insns(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insns()).sum()
    }

    /// Look up an instruction by reference.
    pub fn insn(&self, r: InsnRef) -> &Instruction {
        &self.funcs[r.func.index()].blocks[r.block.index()].insns[r.idx as usize]
    }

    /// Assign a unique pseudo-PC (byte address) to every static instruction
    /// site, in layout order, 4 bytes apart — what the branch-prediction
    /// tables index with.  Returns a map keyed by `InsnRef`.
    pub fn assign_pcs(&self) -> PcMap {
        let mut map = std::collections::HashMap::new();
        let mut pc = 0x1000u64;
        for (fid, f) in self.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for idx in 0..b.insns.len() {
                    map.insert(
                        InsnRef {
                            func: fid,
                            block: bid,
                            idx: idx as u32,
                        },
                        pc,
                    );
                    pc += 4;
                }
            }
        }
        PcMap { map }
    }
}

impl Default for Program {
    fn default() -> Program {
        Program::new()
    }
}

/// Pseudo program-counter assignment for static instruction sites.
#[derive(Clone, Debug)]
pub struct PcMap {
    map: std::collections::HashMap<InsnRef, u64>,
}

impl PcMap {
    pub fn pc(&self, r: InsnRef) -> u64 {
        self.map[&r]
    }

    pub fn get(&self, r: InsnRef) -> Option<u64> {
        self.map.get(&r).copied()
    }
}

/// Convenience: classify a branch at block `b` in function `f` as forward
/// (target later in layout order) or backward (target at or before `b` —
/// a loop latch).  The paper's Figure-6 algorithm branches on this.
pub fn is_backward_branch(block: BlockId, i: &Instruction) -> Option<bool> {
    match &i.op {
        Opcode::Branch { target, .. } => Some(target.0 <= block.0),
        _ => None,
    }
}
