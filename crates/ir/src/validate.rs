//! Structural validation of programs.
//!
//! Checks invariants every pass must preserve:
//!
//! * control-flow instructions only as the last instruction of a block,
//! * branch/jump/jtab targets inside the owning function,
//! * call targets inside the program,
//! * register names in range,
//! * guards only on guardable instructions,
//! * the program entry function exists and ends reachably in `halt`,
//! * data preloads inside the declared memory size.

use crate::insn::Opcode;
use crate::program::{BlockId, Program};
use std::fmt;

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    pub func: String,
    pub block: String,
    pub insn: Option<usize>,
    pub msg: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.insn {
            Some(i) => write!(f, "{}/{} insn {}: {}", self.func, self.block, i, self.msg),
            None => write!(f, "{}/{}: {}", self.func, self.block, self.msg),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate the whole program; returns all failures found.
pub fn validate(prog: &Program) -> Vec<ValidateError> {
    let mut errs = Vec::new();
    if prog.entry.index() >= prog.funcs.len() {
        errs.push(ValidateError {
            func: format!("@{}", prog.entry.0),
            block: String::new(),
            insn: None,
            msg: "entry function out of range".into(),
        });
        return errs;
    }
    for f in &prog.funcs {
        let nblocks = f.blocks.len() as u32;
        if f.blocks.is_empty() {
            errs.push(ValidateError {
                func: f.name.clone(),
                block: String::new(),
                insn: None,
                msg: "function has no blocks".into(),
            });
            continue;
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            let e = |insn: Option<usize>, msg: String| ValidateError {
                func: f.name.clone(),
                block: b.label.clone(),
                insn,
                msg,
            };
            for (ii, insn) in b.insns.iter().enumerate() {
                let last = ii + 1 == b.insns.len();
                if insn.is_control() && !last {
                    errs.push(e(
                        Some(ii),
                        "control instruction not at end of block".into(),
                    ));
                }
                if insn.guard.is_some() && !insn.can_guard() {
                    errs.push(e(Some(ii), "guard on non-guardable instruction".into()));
                }
                for t in insn.targets() {
                    if t.0 >= nblocks {
                        errs.push(e(Some(ii), format!("target @{} out of range", t.0)));
                    }
                }
                if let Opcode::Jtab { table, .. } = &insn.op {
                    if table.is_empty() {
                        errs.push(e(Some(ii), "empty jump table".into()));
                    }
                }
                if let Opcode::Call { func } = insn.op {
                    if func.index() >= prog.funcs.len() {
                        errs.push(e(Some(ii), format!("call to @{} out of range", func.0)));
                    }
                }
                if let Some(def) = insn.def() {
                    if !def.in_range() {
                        errs.push(e(Some(ii), format!("def register {def} out of range")));
                    }
                }
                for u in insn.uses() {
                    if !u.in_range() {
                        errs.push(e(Some(ii), format!("use register {u} out of range")));
                    }
                }
            }
            // The final block of a function must not fall off the end.
            let last_block = bi + 1 == f.blocks.len();
            if last_block && b.falls_through() {
                errs.push(e(
                    None,
                    "last block falls through past end of function".into(),
                ));
            }
        }
    }
    for (addr, _) in &prog.data {
        if *addr >= prog.mem_words {
            errs.push(ValidateError {
                func: String::new(),
                block: String::new(),
                insn: None,
                msg: format!(
                    "data preload at {addr} outside memory of {} words",
                    prog.mem_words
                ),
            });
        }
    }
    errs
}

/// Panic with a readable report if the program is invalid.  Transform tests
/// call this after every pass.
pub fn assert_valid(prog: &Program) {
    let errs = validate(prog);
    if !errs.is_empty() {
        let mut s = String::from("program failed validation:\n");
        for e in &errs {
            s.push_str(&format!("  - {e}\n"));
        }
        panic!("{s}");
    }
}

/// Check whether every block of function `fidx` is reachable from its entry;
/// returns the unreachable block ids (transforms may legitimately create
/// these; the cleanup pass removes them).
pub fn unreachable_blocks(prog: &Program, fidx: usize) -> Vec<BlockId> {
    let f = &prog.funcs[fidx];
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        for s in f.successors(b) {
            if !seen[s.index()] {
                stack.push(s);
            }
        }
    }
    (0..n)
        .filter(|i| !seen[*i])
        .map(|i| BlockId(i as u32))
        .collect()
}
