//! Textual assembly printing.
//!
//! The format round-trips through [`crate::parse`]:
//!
//! ```text
//! func main:
//! entry:
//!     li r1, 0
//!     beq r1, r2, L1
//! body:
//!     (p1) mov r6, r9
//!     (!p2) add r8, r6, r4
//!     jtab r3, [a, b, c]
//!     bnel r5, r6, L0
//!     halt
//! ```

use crate::insn::*;
use crate::program::*;
use std::fmt;

fn alu_name(k: AluKind) -> &'static str {
    match k {
        AluKind::Add => "add",
        AluKind::Sub => "sub",
        AluKind::And => "and",
        AluKind::Or => "or",
        AluKind::Xor => "xor",
        AluKind::Nor => "nor",
        AluKind::Slt => "slt",
        AluKind::Sltu => "sltu",
        AluKind::Mul => "mul",
    }
}

fn shift_name(k: ShiftKind) -> &'static str {
    match k {
        ShiftKind::Sll => "sll",
        ShiftKind::Srl => "srl",
        ShiftKind::Sra => "sra",
    }
}

fn falu_name(k: FAluKind) -> &'static str {
    match k {
        FAluKind::Add => "fadd",
        FAluKind::Sub => "fsub",
        FAluKind::Mul => "fmul",
        FAluKind::Div => "fdiv",
        FAluKind::Sqrt => "fsqrt",
    }
}

fn setcond_name(c: SetCond) -> &'static str {
    match c {
        SetCond::Eq => "eq",
        SetCond::Ne => "ne",
        SetCond::Lt => "lt",
        SetCond::Le => "le",
        SetCond::Gt => "gt",
        SetCond::Ge => "ge",
    }
}

fn plogic_name(k: PLogicKind) -> &'static str {
    match k {
        PLogicKind::And => "pand",
        PLogicKind::Or => "por",
        PLogicKind::Xor => "pxor",
    }
}

/// Context for printing block targets as labels.
pub struct InsnDisplay<'a> {
    pub insn: &'a Instruction,
    pub func: Option<&'a Function>,
    pub prog: Option<&'a Program>,
}

fn label_of(func: Option<&Function>, b: BlockId) -> String {
    match func {
        Some(f) if b.index() < f.blocks.len() => f.blocks[b.index()].label.clone(),
        _ => format!("@{}", b.0),
    }
}

impl fmt::Display for InsnDisplay<'_> {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = self.insn;
        if let Some(g) = i.guard {
            if g.expect {
                write!(fm, "({}) ", g.pred)?;
            } else {
                write!(fm, "(!{}) ", g.pred)?;
            }
        }
        use Opcode::*;
        match &i.op {
            Alu { kind, dst, a, b } => write!(fm, "{} {dst}, {a}, {b}", alu_name(*kind)),
            AluImm { kind, dst, a, imm } => write!(fm, "{}i {dst}, {a}, {imm}", alu_name(*kind)),
            Li { dst, imm } => write!(fm, "li {dst}, {imm}"),
            Mov { dst, src } => write!(fm, "mov {dst}, {src}"),
            Shift { kind, dst, a, b } => write!(fm, "{}v {dst}, {a}, {b}", shift_name(*kind)),
            ShiftImm { kind, dst, a, sh } => write!(fm, "{} {dst}, {a}, {sh}", shift_name(*kind)),
            Load { dst, base, off } => write!(fm, "lw {dst}, {off}({base})"),
            Store { src, base, off } => write!(fm, "sw {src}, {off}({base})"),
            FAlu { kind, dst, a, b } => write!(fm, "{} {dst}, {a}, {b}", falu_name(*kind)),
            FMov { dst, src } => write!(fm, "fmov {dst}, {src}"),
            FLoad { dst, base, off } => write!(fm, "flw {dst}, {off}({base})"),
            FStore { src, base, off } => write!(fm, "fsw {src}, {off}({base})"),
            ItoF { dst, src } => write!(fm, "itof {dst}, {src}"),
            FtoI { dst, src } => write!(fm, "ftoi {dst}, {src}"),
            SetP { cond, dst, a, b } => {
                write!(fm, "setp.{} {dst}, {a}, {b}", setcond_name(*cond))
            }
            SetPImm { cond, dst, a, imm } => {
                write!(fm, "setp.{}i {dst}, {a}, {imm}", setcond_name(*cond))
            }
            PLogic { kind, dst, a, b } => write!(fm, "{} {dst}, {a}, {b}", plogic_name(*kind)),
            PNot { dst, src } => write!(fm, "pnot {dst}, {src}"),
            Branch {
                cond,
                target,
                likely,
            } => {
                let l = if *likely { "l" } else { "" };
                let t = label_of(self.func, *target);
                match cond {
                    BranchCond::Eq(a, b) => write!(fm, "beq{l} {a}, {b}, {t}"),
                    BranchCond::Ne(a, b) => write!(fm, "bne{l} {a}, {b}, {t}"),
                    BranchCond::Lez(a) => write!(fm, "blez{l} {a}, {t}"),
                    BranchCond::Gtz(a) => write!(fm, "bgtz{l} {a}, {t}"),
                    BranchCond::Ltz(a) => write!(fm, "bltz{l} {a}, {t}"),
                    BranchCond::Gez(a) => write!(fm, "bgez{l} {a}, {t}"),
                    BranchCond::PredT(p) => write!(fm, "bpt{l} {p}, {t}"),
                    BranchCond::PredF(p) => write!(fm, "bpf{l} {p}, {t}"),
                }
            }
            Jump { target } => write!(fm, "j {}", label_of(self.func, *target)),
            Jtab { index, table } => {
                write!(fm, "jtab {index}, [")?;
                for (k, t) in table.iter().enumerate() {
                    if k > 0 {
                        write!(fm, ", ")?;
                    }
                    write!(fm, "{}", label_of(self.func, *t))?;
                }
                write!(fm, "]")
            }
            Call { func } => match self.prog {
                Some(p) if func.index() < p.funcs.len() => {
                    write!(fm, "call {}", p.funcs[func.index()].name)
                }
                _ => write!(fm, "call @{}", func.0),
            },
            Ret => write!(fm, "ret"),
            Halt => write!(fm, "halt"),
            Nop => write!(fm, "nop"),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        InsnDisplay {
            insn: self,
            func: None,
            prog: None,
        }
        .fmt(fm)
    }
}

/// Print a function with labels resolved.
pub fn func_to_string(f: &Function, prog: Option<&Program>) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "func {}:", f.name).unwrap();
    for b in &f.blocks {
        writeln!(s, "{}:", b.label).unwrap();
        for i in &b.insns {
            writeln!(
                s,
                "    {}",
                InsnDisplay {
                    insn: i,
                    func: Some(f),
                    prog
                }
            )
            .unwrap();
        }
    }
    s
}

impl fmt::Display for Function {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fm.write_str(&func_to_string(self, None))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Header directives, so the text is a *complete* description of the
        // program (the parser's defaults are omitted): memory size, initial
        // memory image, and a non-first entry function.  The harness caches
        // transformed programs as text and keys simulations on it — losing
        // the memory image here silently runs workloads on zeroed input.
        if self.mem_words != 1 << 16 {
            writeln!(fm, ".mem_words {}", self.mem_words)?;
        }
        if self.entry.index() != 0 && self.entry.index() < self.funcs.len() {
            writeln!(fm, ".entry {}", self.funcs[self.entry.index()].name)?;
        }
        // Emit `.data` runs: consecutive pairs with consecutive addresses
        // share a line (capped), preserving the pair sequence exactly.
        let mut i = 0;
        while i < self.data.len() {
            let (start, _) = self.data[i];
            let mut n = 1;
            while i + n < self.data.len() && n < 16 && self.data[i + n].0 == start + n as u64 {
                n += 1;
            }
            write!(fm, ".data {start}:")?;
            for (_, v) in &self.data[i..i + n] {
                write!(fm, " {v}")?;
            }
            writeln!(fm)?;
            i += n;
        }
        for (i, f) in self.funcs.iter().enumerate() {
            if i > 0 {
                writeln!(fm)?;
            }
            fm.write_str(&func_to_string(f, Some(self)))?;
        }
        Ok(())
    }
}
