//! # guardspec-ir
//!
//! A MIPS-like register intermediate representation, modeled after the
//! "MIPS-like intermediate code" the paper's toolchain produces from GNU C
//! output.  It carries everything the paper's transforms need:
//!
//! * integer / floating-point / predicate (condition-code) register files,
//! * the functional-unit classes the R10000 evaluation reports on
//!   (ALU, shifter, load/store, branch, three FP pipes),
//! * ordinary conditional branches **and** MIPS-IV style *branch-likely*
//!   variants (statically predicted taken, never entered in the BTB),
//! * guarded (predicated) instructions: any computational instruction may
//!   carry a guard `(p, expect)` and only retires its result when predicate
//!   register `p` equals `expect` — the "full predicated execution support
//!   synthesized in the compiler" of Section 3,
//! * register-relative jumps (`jtab`) and call/return, which the paper calls
//!   out as the branch kinds a BTB cannot capture.
//!
//! The crate provides the data model ([`Program`], [`Function`],
//! [`BasicBlock`], [`Instruction`]), an ergonomic [`builder`], a textual
//! assembly [`parse`]r and printer, and a structural [`validate`]r.
//!
//! Control flow is block-structured: every [`BasicBlock`] holds straight-line
//! instructions and ends with an optional terminator; a block without a
//! terminator falls through to the next block in layout order, exactly like
//! linear assembly.

pub mod builder;
pub mod encode;
pub mod insn;
pub mod parse;
pub mod print;
pub mod program;
pub mod reg;
pub mod validate;

pub use builder::{FuncBuilder, ProgramBuilder};
pub use insn::{BranchCond, FuClass, Guard, Instruction, Opcode, SetCond};
pub use program::{BasicBlock, BlockId, FuncId, Function, InsnRef, Program};
pub use reg::{FltReg, IntReg, PredReg, Reg};

#[cfg(test)]
mod tests;
