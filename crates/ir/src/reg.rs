//! Register name spaces.
//!
//! Three architectural register files, mirroring the machine model of
//! Section 6 of the paper:
//!
//! * **integer** registers `r0..r63` — the R10000 has 64 physical integer
//!   registers of which 32 are architecturally visible; the compiler's
//!   software-renaming pool draws from the upper half, so the IR exposes all
//!   64 names (`r0` is hard-wired to zero, as on MIPS),
//! * **floating-point** registers `f0..f63`, same split,
//! * **predicate** (condition-code) registers `p0..p15` — the "extra
//!   condition code registers which can be used as operands in the
//!   instructions" that guarded execution requires (Section 3).

use std::fmt;

/// Number of integer register names visible to the IR.
pub const NUM_INT_REGS: u8 = 64;
/// Number of floating-point register names visible to the IR.
pub const NUM_FLT_REGS: u8 = 64;
/// Number of predicate (condition-code) register names.
pub const NUM_PRED_REGS: u8 = 16;
/// Integer registers `r0..r31` are architecturally visible; `r32..r63` form
/// the software-renaming pool.
pub const NUM_ARCH_INT_REGS: u8 = 32;

/// An integer register name, `r0..r63`. `r0` always reads zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntReg(pub u8);

/// A floating-point register name, `f0..f63`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FltReg(pub u8);

/// A predicate (condition-code) register name, `p0..p15`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredReg(pub u8);

/// Any register operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    Int(IntReg),
    Flt(FltReg),
    Pred(PredReg),
}

impl IntReg {
    /// The hard-wired zero register.
    pub const ZERO: IntReg = IntReg(0);

    /// True if this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True if the register is architecturally visible (r0..r31).
    pub fn is_architectural(self) -> bool {
        self.0 < NUM_ARCH_INT_REGS
    }
}

impl From<IntReg> for Reg {
    fn from(r: IntReg) -> Reg {
        Reg::Int(r)
    }
}
impl From<FltReg> for Reg {
    fn from(r: FltReg) -> Reg {
        Reg::Flt(r)
    }
}
impl From<PredReg> for Reg {
    fn from(r: PredReg) -> Reg {
        Reg::Pred(r)
    }
}

impl Reg {
    /// The integer register inside, if any.
    pub fn as_int(self) -> Option<IntReg> {
        match self {
            Reg::Int(r) => Some(r),
            _ => None,
        }
    }

    /// The floating-point register inside, if any.
    pub fn as_flt(self) -> Option<FltReg> {
        match self {
            Reg::Flt(r) => Some(r),
            _ => None,
        }
    }

    /// The predicate register inside, if any.
    pub fn as_pred(self) -> Option<PredReg> {
        match self {
            Reg::Pred(r) => Some(r),
            _ => None,
        }
    }

    /// True for the integer zero register, which is never really written.
    pub fn is_int_zero(self) -> bool {
        matches!(self, Reg::Int(r) if r.is_zero())
    }

    /// A dense index usable as a table key: integer regs first, then FP,
    /// then predicates.
    pub fn dense_index(self) -> usize {
        match self {
            Reg::Int(IntReg(i)) => i as usize,
            Reg::Flt(FltReg(i)) => NUM_INT_REGS as usize + i as usize,
            Reg::Pred(PredReg(i)) => (NUM_INT_REGS + NUM_FLT_REGS) as usize + i as usize,
        }
    }

    /// Total number of dense register indices.
    pub const DENSE_COUNT: usize = (NUM_INT_REGS + NUM_FLT_REGS + NUM_PRED_REGS) as usize;

    /// True if the register name is in range for its file.
    pub fn in_range(self) -> bool {
        match self {
            Reg::Int(IntReg(i)) => i < NUM_INT_REGS,
            Reg::Flt(FltReg(i)) => i < NUM_FLT_REGS,
            Reg::Pred(PredReg(i)) => i < NUM_PRED_REGS,
        }
    }
}

/// Shorthand constructor for an integer register.
pub fn r(i: u8) -> IntReg {
    IntReg(i)
}
/// Shorthand constructor for a floating-point register.
pub fn f(i: u8) -> FltReg {
    FltReg(i)
}
/// Shorthand constructor for a predicate register.
pub fn p(i: u8) -> PredReg {
    PredReg(i)
}

impl fmt::Display for IntReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fm, "r{}", self.0)
    }
}
impl fmt::Display for FltReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fm, "f{}", self.0)
    }
}
impl fmt::Display for PredReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fm, "p{}", self.0)
    }
}
impl fmt::Display for Reg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(r) => r.fmt(fm),
            Reg::Flt(r) => r.fmt(fm),
            Reg::Pred(r) => r.fmt(fm),
        }
    }
}

impl fmt::Debug for IntReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, fm)
    }
}
impl fmt::Debug for FltReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, fm)
    }
}
impl fmt::Debug for PredReg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, fm)
    }
}
impl fmt::Debug for Reg {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, fm)
    }
}
