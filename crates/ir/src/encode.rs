//! Binary encoding of programs — the "resultant MIPS-binary … fed to the
//! superscalar simulator" of Section 6.
//!
//! The format is a word stream (u32), one header word per instruction plus
//! trailing words for wide immediates and jump tables:
//!
//! ```text
//! word 0:  GSXB magic
//! word 1:  format version
//! word 2:  entry function index
//! word 3:  memory size in words (lo), word 4: (hi)
//! word 5:  data preload count, then per entry: addr lo/hi, value lo/hi
//! word k:  function count, then per function:
//!            name length + UTF-8 bytes (word-padded), block count,
//!            per block: label length + bytes, instruction count,
//!            per instruction: header word [+ operand words]
//! ```
//!
//! The header word packs `op:8 | a:8 | b:8 | c:8`; wide operands (64-bit
//! immediates, block targets, jump tables) follow as full words.  Encoding
//! and decoding round-trip exactly (including labels), which the property
//! tests lock in.

use crate::insn::*;
use crate::program::*;
use crate::reg::{FltReg, IntReg, PredReg};
use std::fmt;

const MAGIC: u32 = 0x4753_5842; // "GSXB"
const VERSION: u32 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at word {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for DecodeError {}

// Opcode tags.
const T_ALU: u8 = 1;
const T_ALUI: u8 = 2;
const T_LI: u8 = 3;
const T_MOV: u8 = 4;
const T_SHIFT: u8 = 5;
const T_SHIFTI: u8 = 6;
const T_LOAD: u8 = 7;
const T_STORE: u8 = 8;
const T_FALU: u8 = 9;
const T_FMOV: u8 = 10;
const T_FLOAD: u8 = 11;
const T_FSTORE: u8 = 12;
const T_ITOF: u8 = 13;
const T_FTOI: u8 = 14;
const T_SETP: u8 = 15;
const T_SETPI: u8 = 16;
const T_PLOGIC: u8 = 17;
const T_PNOT: u8 = 18;
const T_BRANCH: u8 = 19;
const T_JUMP: u8 = 20;
const T_JTAB: u8 = 21;
const T_CALL: u8 = 22;
const T_RET: u8 = 23;
const T_HALT: u8 = 24;
const T_NOP: u8 = 25;

struct Writer {
    words: Vec<u32>,
}

impl Writer {
    fn w(&mut self, v: u32) {
        self.words.push(v);
    }

    fn w64(&mut self, v: i64) {
        self.w(v as u64 as u32);
        self.w(((v as u64) >> 32) as u32);
    }

    fn header(&mut self, op: u8, a: u8, b: u8, c: u8) {
        self.w(u32::from_le_bytes([op, a, b, c]));
    }

    fn string(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.w(bytes.len() as u32);
        for chunk in bytes.chunks(4) {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.w(u32::from_le_bytes(word));
        }
    }
}

struct Reader<'a> {
    words: &'a [u32],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn r(&mut self) -> Result<u32, DecodeError> {
        let v = self.words.get(self.pos).copied().ok_or(DecodeError {
            at: self.pos,
            msg: "unexpected end of stream".into(),
        })?;
        self.pos += 1;
        Ok(v)
    }

    fn r64(&mut self) -> Result<i64, DecodeError> {
        let lo = self.r()? as u64;
        let hi = self.r()? as u64;
        Ok((lo | (hi << 32)) as i64)
    }

    fn header(&mut self) -> Result<(u8, u8, u8, u8), DecodeError> {
        let [op, a, b, c] = self.r()?.to_le_bytes();
        Ok((op, a, b, c))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let at = self.pos;
        let len = self.r()? as usize;
        if len > 1 << 20 {
            return Err(DecodeError {
                at,
                msg: format!("string length {len} too large"),
            });
        }
        let mut bytes = Vec::with_capacity(len);
        let mut remaining = len;
        while remaining > 0 {
            let word = self.r()?.to_le_bytes();
            let take = remaining.min(4);
            bytes.extend_from_slice(&word[..take]);
            remaining -= take;
        }
        String::from_utf8(bytes).map_err(|e| DecodeError {
            at,
            msg: format!("bad UTF-8 in string: {e}"),
        })
    }
}

fn alu_code(k: AluKind) -> u8 {
    match k {
        AluKind::Add => 0,
        AluKind::Sub => 1,
        AluKind::And => 2,
        AluKind::Or => 3,
        AluKind::Xor => 4,
        AluKind::Nor => 5,
        AluKind::Slt => 6,
        AluKind::Sltu => 7,
        AluKind::Mul => 8,
    }
}

fn alu_kind(c: u8, at: usize) -> Result<AluKind, DecodeError> {
    Ok(match c {
        0 => AluKind::Add,
        1 => AluKind::Sub,
        2 => AluKind::And,
        3 => AluKind::Or,
        4 => AluKind::Xor,
        5 => AluKind::Nor,
        6 => AluKind::Slt,
        7 => AluKind::Sltu,
        8 => AluKind::Mul,
        _ => {
            return Err(DecodeError {
                at,
                msg: format!("bad alu kind {c}"),
            })
        }
    })
}

fn cond_code(c: SetCond) -> u8 {
    match c {
        SetCond::Eq => 0,
        SetCond::Ne => 1,
        SetCond::Lt => 2,
        SetCond::Le => 3,
        SetCond::Gt => 4,
        SetCond::Ge => 5,
    }
}

fn set_cond(c: u8, at: usize) -> Result<SetCond, DecodeError> {
    Ok(match c {
        0 => SetCond::Eq,
        1 => SetCond::Ne,
        2 => SetCond::Lt,
        3 => SetCond::Le,
        4 => SetCond::Gt,
        5 => SetCond::Ge,
        _ => {
            return Err(DecodeError {
                at,
                msg: format!("bad set cond {c}"),
            })
        }
    })
}

fn encode_insn(w: &mut Writer, i: &Instruction) {
    // Guard marker word: 0 = none, 1 = expect-true, 2 = expect-false, with
    // the predicate register in the high byte.
    match i.guard {
        None => w.w(0),
        Some(g) => w.w(1 + g.expect as u32 + ((g.pred.0 as u32) << 8)),
    }
    use Opcode::*;
    match &i.op {
        Alu { kind, dst, a, b } => {
            w.header(T_ALU, dst.0, a.0, b.0);
            w.w(alu_code(*kind) as u32);
        }
        AluImm { kind, dst, a, imm } => {
            w.header(T_ALUI, dst.0, a.0, alu_code(*kind));
            w.w64(*imm);
        }
        Li { dst, imm } => {
            w.header(T_LI, dst.0, 0, 0);
            w.w64(*imm);
        }
        Mov { dst, src } => w.header(T_MOV, dst.0, src.0, 0),
        Shift { kind, dst, a, b } => w.header(T_SHIFT, dst.0, a.0, b.0 | ((*kind as u8) << 6)),
        ShiftImm { kind, dst, a, sh } => {
            w.header(T_SHIFTI, dst.0, a.0, *kind as u8);
            w.w(*sh as u32);
        }
        Load { dst, base, off } => {
            w.header(T_LOAD, dst.0, base.0, 0);
            w.w64(*off);
        }
        Store { src, base, off } => {
            w.header(T_STORE, src.0, base.0, 0);
            w.w64(*off);
        }
        FAlu { kind, dst, a, b } => {
            w.header(T_FALU, dst.0, a.0, b.0);
            w.w(*kind as u32);
        }
        FMov { dst, src } => w.header(T_FMOV, dst.0, src.0, 0),
        FLoad { dst, base, off } => {
            w.header(T_FLOAD, dst.0, base.0, 0);
            w.w64(*off);
        }
        FStore { src, base, off } => {
            w.header(T_FSTORE, src.0, base.0, 0);
            w.w64(*off);
        }
        ItoF { dst, src } => w.header(T_ITOF, dst.0, src.0, 0),
        FtoI { dst, src } => w.header(T_FTOI, dst.0, src.0, 0),
        SetP { cond, dst, a, b } => {
            w.header(T_SETP, dst.0, a.0, b.0);
            w.w(cond_code(*cond) as u32);
        }
        SetPImm { cond, dst, a, imm } => {
            w.header(T_SETPI, dst.0, a.0, cond_code(*cond));
            w.w64(*imm);
        }
        PLogic { kind, dst, a, b } => w.header(T_PLOGIC, dst.0, a.0, b.0 | ((*kind as u8) << 5)),
        PNot { dst, src } => w.header(T_PNOT, dst.0, src.0, 0),
        Branch {
            cond,
            target,
            likely,
        } => {
            let (code, ra, rb) = match cond {
                BranchCond::Eq(a, b) => (0u8, a.0, b.0),
                BranchCond::Ne(a, b) => (1, a.0, b.0),
                BranchCond::Lez(a) => (2, a.0, 0),
                BranchCond::Gtz(a) => (3, a.0, 0),
                BranchCond::Ltz(a) => (4, a.0, 0),
                BranchCond::Gez(a) => (5, a.0, 0),
                BranchCond::PredT(p) => (6, p.0, 0),
                BranchCond::PredF(p) => (7, p.0, 0),
            };
            w.header(T_BRANCH, ra, rb, code | ((*likely as u8) << 7));
            w.w(target.0);
        }
        Jump { target } => {
            w.header(T_JUMP, 0, 0, 0);
            w.w(target.0);
        }
        Jtab { index, table } => {
            w.header(T_JTAB, index.0, 0, 0);
            w.w(table.len() as u32);
            for t in table {
                w.w(t.0);
            }
        }
        Call { func } => {
            w.header(T_CALL, 0, 0, 0);
            w.w(func.0);
        }
        Ret => w.header(T_RET, 0, 0, 0),
        Halt => w.header(T_HALT, 0, 0, 0),
        Nop => w.header(T_NOP, 0, 0, 0),
    }
}

fn decode_insn(rd: &mut Reader) -> Result<Instruction, DecodeError> {
    let at = rd.pos;
    let gw = rd.r()?;
    let guard = match gw & 0xFF {
        0 => None,
        1 => Some(Guard {
            pred: PredReg(((gw >> 8) & 0xFF) as u8),
            expect: false,
        }),
        2 => Some(Guard {
            pred: PredReg(((gw >> 8) & 0xFF) as u8),
            expect: true,
        }),
        other => {
            return Err(DecodeError {
                at,
                msg: format!("bad guard marker {other}"),
            })
        }
    };
    let (op, a, b, c) = rd.header()?;
    use Opcode::*;
    let opcode = match op {
        T_ALU => {
            let (dst, ra, rb) = (IntReg(a), IntReg(b), IntReg(c));
            let kind = alu_kind(rd.r()? as u8, at)?;
            Alu {
                kind,
                dst,
                a: ra,
                b: rb,
            }
        }
        T_ALUI => {
            let kind = alu_kind(c, at)?;
            AluImm {
                kind,
                dst: IntReg(a),
                a: IntReg(b),
                imm: rd.r64()?,
            }
        }
        T_LI => Li {
            dst: IntReg(a),
            imm: rd.r64()?,
        },
        T_MOV => Mov {
            dst: IntReg(a),
            src: IntReg(b),
        },
        T_SHIFT => Shift {
            kind: shift_kind(c >> 6, at)?,
            dst: IntReg(a),
            a: IntReg(b),
            b: IntReg(c & 0x3F),
        },
        T_SHIFTI => {
            let kind = shift_kind(c, at)?;
            ShiftImm {
                kind,
                dst: IntReg(a),
                a: IntReg(b),
                sh: rd.r()? as u8,
            }
        }
        T_LOAD => Load {
            dst: IntReg(a),
            base: IntReg(b),
            off: rd.r64()?,
        },
        T_STORE => Store {
            src: IntReg(a),
            base: IntReg(b),
            off: rd.r64()?,
        },
        T_FALU => {
            let (dst, ra, rb) = (FltReg(a), FltReg(b), FltReg(c));
            let kind = falu_kind(rd.r()? as u8, at)?;
            FAlu {
                kind,
                dst,
                a: ra,
                b: rb,
            }
        }
        T_FMOV => FMov {
            dst: FltReg(a),
            src: FltReg(b),
        },
        T_FLOAD => FLoad {
            dst: FltReg(a),
            base: IntReg(b),
            off: rd.r64()?,
        },
        T_FSTORE => FStore {
            src: FltReg(a),
            base: IntReg(b),
            off: rd.r64()?,
        },
        T_ITOF => ItoF {
            dst: FltReg(a),
            src: IntReg(b),
        },
        T_FTOI => FtoI {
            dst: IntReg(a),
            src: FltReg(b),
        },
        T_SETP => {
            let (dst, ra, rb) = (PredReg(a), IntReg(b), IntReg(c));
            let cond = set_cond(rd.r()? as u8, at)?;
            SetP {
                cond,
                dst,
                a: ra,
                b: rb,
            }
        }
        T_SETPI => {
            let cond = set_cond(c, at)?;
            SetPImm {
                cond,
                dst: PredReg(a),
                a: IntReg(b),
                imm: rd.r64()?,
            }
        }
        T_PLOGIC => PLogic {
            kind: plogic_kind(c >> 5, at)?,
            dst: PredReg(a),
            a: PredReg(b),
            b: PredReg(c & 0x1F),
        },
        T_PNOT => PNot {
            dst: PredReg(a),
            src: PredReg(b),
        },
        T_BRANCH => {
            let likely = c & 0x80 != 0;
            let cond = match c & 0x7F {
                0 => BranchCond::Eq(IntReg(a), IntReg(b)),
                1 => BranchCond::Ne(IntReg(a), IntReg(b)),
                2 => BranchCond::Lez(IntReg(a)),
                3 => BranchCond::Gtz(IntReg(a)),
                4 => BranchCond::Ltz(IntReg(a)),
                5 => BranchCond::Gez(IntReg(a)),
                6 => BranchCond::PredT(PredReg(a)),
                7 => BranchCond::PredF(PredReg(a)),
                other => {
                    return Err(DecodeError {
                        at,
                        msg: format!("bad branch cond {other}"),
                    })
                }
            };
            Branch {
                cond,
                target: BlockId(rd.r()?),
                likely,
            }
        }
        T_JUMP => Jump {
            target: BlockId(rd.r()?),
        },
        T_JTAB => {
            let index = IntReg(a);
            let len = rd.r()? as usize;
            if len > 1 << 16 {
                return Err(DecodeError {
                    at,
                    msg: format!("jump table too large: {len}"),
                });
            }
            let mut table = Vec::with_capacity(len);
            for _ in 0..len {
                table.push(BlockId(rd.r()?));
            }
            Jtab { index, table }
        }
        T_CALL => Call {
            func: FuncId(rd.r()?),
        },
        T_RET => Ret,
        T_HALT => Halt,
        T_NOP => Nop,
        other => {
            return Err(DecodeError {
                at,
                msg: format!("unknown opcode tag {other}"),
            })
        }
    };
    Ok(Instruction { op: opcode, guard })
}

fn shift_kind(c: u8, at: usize) -> Result<ShiftKind, DecodeError> {
    Ok(match c {
        0 => ShiftKind::Sll,
        1 => ShiftKind::Srl,
        2 => ShiftKind::Sra,
        _ => {
            return Err(DecodeError {
                at,
                msg: format!("bad shift kind {c}"),
            })
        }
    })
}

fn falu_kind(c: u8, at: usize) -> Result<FAluKind, DecodeError> {
    Ok(match c {
        0 => FAluKind::Add,
        1 => FAluKind::Sub,
        2 => FAluKind::Mul,
        3 => FAluKind::Div,
        4 => FAluKind::Sqrt,
        _ => {
            return Err(DecodeError {
                at,
                msg: format!("bad falu kind {c}"),
            })
        }
    })
}

fn plogic_kind(c: u8, at: usize) -> Result<PLogicKind, DecodeError> {
    Ok(match c {
        0 => PLogicKind::And,
        1 => PLogicKind::Or,
        2 => PLogicKind::Xor,
        _ => {
            return Err(DecodeError {
                at,
                msg: format!("bad plogic kind {c}"),
            })
        }
    })
}

/// Serialize a program to its binary word stream.
pub fn encode_program(p: &Program) -> Vec<u32> {
    let mut w = Writer { words: Vec::new() };
    w.w(MAGIC);
    w.w(VERSION);
    w.w(p.entry.0);
    w.w64(p.mem_words as i64);
    w.w(p.data.len() as u32);
    for &(addr, value) in &p.data {
        w.w64(addr as i64);
        w.w64(value);
    }
    w.w(p.funcs.len() as u32);
    for f in &p.funcs {
        w.string(&f.name);
        w.w(f.blocks.len() as u32);
        for b in &f.blocks {
            w.string(&b.label);
            w.w(b.insns.len() as u32);
            for i in &b.insns {
                encode_insn(&mut w, i);
            }
        }
    }
    w.words
}

/// Deserialize a program from its binary word stream.
pub fn decode_program(words: &[u32]) -> Result<Program, DecodeError> {
    let mut rd = Reader { words, pos: 0 };
    if rd.r()? != MAGIC {
        return Err(DecodeError {
            at: 0,
            msg: "bad magic".into(),
        });
    }
    let version = rd.r()?;
    if version != VERSION {
        return Err(DecodeError {
            at: 1,
            msg: format!("unsupported version {version}"),
        });
    }
    let entry = FuncId(rd.r()?);
    let mem_words = rd.r64()? as u64;
    let ndata = rd.r()? as usize;
    let mut data = Vec::with_capacity(ndata);
    for _ in 0..ndata {
        let addr = rd.r64()? as u64;
        let value = rd.r64()?;
        data.push((addr, value));
    }
    let nfuncs = rd.r()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let name = rd.string()?;
        let mut f = Function::new(name);
        let nblocks = rd.r()? as usize;
        for _ in 0..nblocks {
            let label = rd.string()?;
            let mut blk = BasicBlock::new(label);
            let ninsns = rd.r()? as usize;
            for _ in 0..ninsns {
                blk.insns.push(decode_insn(&mut rd)?);
            }
            f.blocks.push(blk);
        }
        funcs.push(f);
    }
    Ok(Program {
        funcs,
        entry,
        data,
        mem_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::reg::{f, p, r};

    fn sample() -> Program {
        let mut fb = FuncBuilder::new("main");
        fb.block("entry");
        fb.li(r(1), 1 << 40); // wide immediate
        fb.addi(r(2), r(1), -7);
        fb.setpi(SetCond::Ge, p(3), r(2), 0);
        fb.cmov(r(4), r(2), p(3), false);
        fb.fadd(f(1), f(2), f(3));
        fb.fsw(f(1), r(1), -3);
        fb.bptl(p(3), "other");
        fb.block("mid");
        fb.jtab(r(2), &["entry", "mid", "other"]);
        fb.block("other");
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.data_word(5, -123456789);
        pb.mem_words(1 << 20);
        pb.add_func(fb);
        pb.finish("main")
    }

    #[test]
    fn roundtrip_exact() {
        let prog = sample();
        let words = encode_program(&prog);
        let back = decode_program(&words).expect("decode");
        assert_eq!(back, prog);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut words = encode_program(&sample());
        words[0] = 0xDEAD_BEEF;
        assert!(decode_program(&words).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let words = encode_program(&sample());
        for cut in 1..words.len() {
            assert!(
                decode_program(&words[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_opcode_rejected() {
        let prog = sample();
        let words = encode_program(&prog);
        // Flip every word to an invalid opcode tag and require either an
        // error or a different (never silently identical-but-wrong) result.
        let mut bad = 0;
        for i in 6..words.len() {
            let mut m = words.clone();
            m[i] = 0xFF;
            if decode_program(&m).is_err() {
                bad += 1;
            }
        }
        assert!(bad > 0, "some corruptions must be caught");
    }
}
