//! Unit tests for the IR crate.

use crate::builder::*;
use crate::insn::*;
use crate::parse::*;
use crate::print::func_to_string;
use crate::program::*;
use crate::reg::*;
use crate::validate::*;

fn r(i: u8) -> IntReg {
    IntReg(i)
}
fn p(i: u8) -> PredReg {
    PredReg(i)
}

/// Build the paper's Figure 1(a) fragment:
/// ```text
///   beq r1, r2, L1
///   sub r6, r3, 1
///   add r8, r6, r4
///   j L2
/// L1:
///   ...
/// L2:
///   halt
/// ```
fn figure1a() -> Program {
    let mut fb = FuncBuilder::new("main");
    fb.block("entry");
    fb.beq(r(1), r(2), "L1");
    fb.block("fall");
    fb.subi(r(6), r(3), 1);
    fb.add(r(8), r(6), r(4));
    fb.jump("L2");
    fb.block("L1");
    fb.addi(r(8), r(4), 7);
    fb.block("L2");
    fb.halt();
    single_func_program(fb)
}

#[test]
fn builder_produces_valid_program() {
    let prog = figure1a();
    assert_valid(&prog);
    assert_eq!(prog.funcs.len(), 1);
    assert_eq!(prog.funcs[0].blocks.len(), 4);
}

#[test]
fn successors_follow_fallthrough_and_targets() {
    let prog = figure1a();
    let f = prog.func(FuncId(0));
    // entry: falls to `fall`, branches to L1.
    assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
    // fall: jumps to L2 only.
    assert_eq!(f.successors(BlockId(1)), vec![BlockId(3)]);
    // L1 falls to L2.
    assert_eq!(f.successors(BlockId(2)), vec![BlockId(3)]);
    // L2 halts.
    assert_eq!(f.successors(BlockId(3)), vec![]);
}

#[test]
fn def_use_sets_match_opcode_shapes() {
    let i = Instruction::new(Opcode::Alu {
        kind: AluKind::Add,
        dst: r(8),
        a: r(6),
        b: r(4),
    });
    assert_eq!(i.def(), Some(Reg::Int(r(8))));
    let uses: Vec<Reg> = i.uses().collect();
    assert_eq!(uses, vec![Reg::Int(r(6)), Reg::Int(r(4))]);

    let st = Instruction::new(Opcode::Store {
        src: r(5),
        base: r(2),
        off: 4,
    });
    assert_eq!(st.def(), None);
    assert_eq!(st.uses().count(), 2);

    let g = Instruction::guarded(
        Opcode::Mov {
            dst: r(6),
            src: r(9),
        },
        Guard::if_true(p(1)),
    );
    let uses: Vec<Reg> = g.uses().collect();
    assert_eq!(uses, vec![Reg::Int(r(9)), Reg::Pred(p(1))]);
}

#[test]
fn branch_uses_include_condition_operands() {
    let b = Instruction::new(Opcode::Branch {
        cond: BranchCond::Eq(r(1), r(2)),
        target: BlockId(0),
        likely: false,
    });
    assert_eq!(b.uses().count(), 2);
    let bp = Instruction::new(Opcode::Branch {
        cond: BranchCond::PredT(p(3)),
        target: BlockId(0),
        likely: true,
    });
    let uses: Vec<Reg> = bp.uses().collect();
    assert_eq!(uses, vec![Reg::Pred(p(3))]);
    assert!(bp.is_branch_likely());
}

#[test]
fn fu_classes_match_table_columns() {
    use FuClass::*;
    let cases: Vec<(Instruction, FuClass)> = vec![
        (
            Opcode::Alu {
                kind: AluKind::Add,
                dst: r(1),
                a: r(2),
                b: r(3),
            }
            .into(),
            Alu,
        ),
        (
            Opcode::ShiftImm {
                kind: ShiftKind::Sll,
                dst: r(1),
                a: r(2),
                sh: 3,
            }
            .into(),
            Shift,
        ),
        (
            Opcode::Load {
                dst: r(1),
                base: r(2),
                off: 0,
            }
            .into(),
            LoadStore,
        ),
        (
            Opcode::Store {
                src: r(1),
                base: r(2),
                off: 0,
            }
            .into(),
            LoadStore,
        ),
        (
            Opcode::Branch {
                cond: BranchCond::Lez(r(1)),
                target: BlockId(0),
                likely: false,
            }
            .into(),
            Branch,
        ),
        (
            Opcode::FAlu {
                kind: FAluKind::Add,
                dst: FltReg(1),
                a: FltReg(2),
                b: FltReg(3),
            }
            .into(),
            FpAdd,
        ),
        (
            Opcode::FAlu {
                kind: FAluKind::Mul,
                dst: FltReg(1),
                a: FltReg(2),
                b: FltReg(3),
            }
            .into(),
            FpMul,
        ),
        (
            Opcode::FAlu {
                kind: FAluKind::Div,
                dst: FltReg(1),
                a: FltReg(2),
                b: FltReg(3),
            }
            .into(),
            FpDiv,
        ),
        (Opcode::Nop.into(), Nop),
        (
            Opcode::SetPImm {
                cond: SetCond::Lt,
                dst: p(1),
                a: r(2),
                imm: 40,
            }
            .into(),
            Alu,
        ),
    ];
    for (insn, want) in cases {
        assert_eq!(insn.fu_class(), want, "for {insn}");
    }
}

#[test]
fn rewrite_uses_performs_forward_substitution() {
    // Figure 1(b): after renaming sub's dest to r9 and inserting
    // `mov r6, r9`, the use in `add r8, r6, r4` is forward-substituted to r9.
    let mut add = Instruction::new(Opcode::Alu {
        kind: AluKind::Add,
        dst: r(8),
        a: r(6),
        b: r(4),
    });
    let n = add.rewrite_uses(Reg::Int(r(6)), Reg::Int(r(9)));
    assert_eq!(n, 1);
    match add.op {
        Opcode::Alu { a, .. } => assert_eq!(a, r(9)),
        _ => unreachable!(),
    }
    // Dest is untouched.
    assert_eq!(add.def(), Some(Reg::Int(r(8))));
}

#[test]
fn rewrite_uses_ignores_other_register_files() {
    let mut i = Instruction::new(Opcode::Alu {
        kind: AluKind::Add,
        dst: r(8),
        a: r(6),
        b: r(6),
    });
    assert_eq!(i.rewrite_uses(Reg::Flt(FltReg(6)), Reg::Flt(FltReg(9))), 0);
    assert_eq!(i.rewrite_uses(Reg::Int(r(6)), Reg::Int(r(9))), 2);
}

#[test]
fn rename_def_respects_register_file() {
    let mut i = Instruction::new(Opcode::AluImm {
        kind: AluKind::Sub,
        dst: r(6),
        a: r(3),
        imm: 1,
    });
    assert!(i.rename_def(Reg::Int(r(9))));
    assert_eq!(i.def(), Some(Reg::Int(r(9))));
    assert!(!i.rename_def(Reg::Flt(FltReg(9))));
    let mut st = Instruction::new(Opcode::Store {
        src: r(1),
        base: r(2),
        off: 0,
    });
    assert!(!st.rename_def(Reg::Int(r(9))));
}

#[test]
fn guard_rewrite_via_pred_rename() {
    let mut i = Instruction::guarded(
        Opcode::Mov {
            dst: r(1),
            src: r(2),
        },
        Guard::if_false(p(2)),
    );
    assert_eq!(i.rewrite_uses(Reg::Pred(p(2)), Reg::Pred(p(5))), 1);
    assert_eq!(i.guard.unwrap().pred, p(5));
    assert!(!i.guard.unwrap().expect);
}

#[test]
fn can_speculate_excludes_stores_and_optionally_loads() {
    let ld = Instruction::new(Opcode::Load {
        dst: r(1),
        base: r(2),
        off: 0,
    });
    let st = Instruction::new(Opcode::Store {
        src: r(1),
        base: r(2),
        off: 0,
    });
    let add = Instruction::new(Opcode::AluImm {
        kind: AluKind::Add,
        dst: r(1),
        a: r(2),
        imm: 1,
    });
    assert!(!st.can_speculate(true));
    assert!(ld.can_speculate(true));
    assert!(!ld.can_speculate(false));
    assert!(add.can_speculate(false));
    let br = Instruction::new(Opcode::Branch {
        cond: BranchCond::Lez(r(1)),
        target: BlockId(0),
        likely: false,
    });
    assert!(!br.can_speculate(true));
}

#[test]
fn branch_cond_negation_is_involutive() {
    let conds = [
        BranchCond::Eq(r(1), r(2)),
        BranchCond::Ne(r(1), r(2)),
        BranchCond::Lez(r(1)),
        BranchCond::Gtz(r(1)),
        BranchCond::Ltz(r(1)),
        BranchCond::Gez(r(1)),
        BranchCond::PredT(p(0)),
        BranchCond::PredF(p(0)),
    ];
    for c in conds {
        assert_eq!(c.negate().negate(), c);
    }
}

#[test]
fn setcond_eval_and_negate_agree() {
    let pairs = [
        (-3i64, 5i64),
        (5, 5),
        (7, 2),
        (0, 0),
        (-1, -1),
        (i64::MAX, i64::MIN),
    ];
    for c in [
        SetCond::Eq,
        SetCond::Ne,
        SetCond::Lt,
        SetCond::Le,
        SetCond::Gt,
        SetCond::Ge,
    ] {
        for (a, b) in pairs {
            assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c:?} {a} {b}");
        }
    }
}

#[test]
fn print_parse_roundtrip_single_function() {
    let prog = figure1a();
    let text = func_to_string(&prog.funcs[0], Some(&prog));
    let full = format!(
        "func main:\n{}",
        text.lines().skip(1).collect::<Vec<_>>().join("\n")
    );
    let back = parse_program(&full, None).expect("parse");
    assert_eq!(back.funcs[0], prog.funcs[0]);
}

#[test]
fn print_parse_roundtrip_exotic_instructions() {
    let mut fb = FuncBuilder::new("t");
    fb.block("entry");
    fb.setpi(SetCond::Lt, p(2), r(4), 40);
    fb.setp(SetCond::Ge, p(3), r(4), r(5));
    fb.pand(p(1), p(2), p(3));
    fb.pnot(p(4), p(1));
    fb.cmov(r(6), r(9), p(1), true);
    fb.push_guarded(
        Opcode::AluImm {
            kind: AluKind::Add,
            dst: r(7),
            a: r(7),
            imm: 1,
        },
        p(4),
        false,
    );
    fb.sllv(r(3), r(2), r(1));
    fb.sra(r(3), r(3), 2);
    fb.flw(FltReg(2), r(10), 8);
    fb.fmul(FltReg(3), FltReg(2), FltReg(2));
    fb.fsw(FltReg(3), r(10), 16);
    fb.itof(FltReg(1), r(5));
    fb.ftoi(r(5), FltReg(1));
    fb.bptl(p(1), "L");
    fb.block("mid");
    fb.jtab(r(2), &["L", "mid", "entry"]);
    fb.block("L");
    fb.halt();
    let prog = single_func_program(fb);
    assert_valid(&prog);
    let text = format!("{prog}");
    let back = parse_program(&text, None).expect("parse");
    assert_eq!(back.funcs, prog.funcs);
}

#[test]
fn print_parse_roundtrip_preserves_program_state() {
    // Directives carry the non-code state: memory image, size, entry.
    let mut pb = ProgramBuilder::new();
    let mut aux = FuncBuilder::new("aux");
    aux.block("e");
    aux.halt();
    pb.add_func(aux);
    let mut main = FuncBuilder::new("main");
    main.block("e");
    main.li(r(1), 7);
    main.halt();
    pb.add_func(main);
    pb.mem_words(5361);
    pb.data_words(2, &[-11, 0, 1 << 40]);
    pb.data_word(1024, 99); // non-consecutive: new .data run
    let prog = pb.finish("main");
    assert_valid(&prog);

    let text = prog.to_string();
    assert!(text.contains(".mem_words 5361"), "{text}");
    assert!(text.contains(".entry main"), "{text}");
    assert!(text.contains(".data 2: -11 0 1099511627776"), "{text}");
    assert!(text.contains(".data 1024: 99"), "{text}");
    let back = parse_program(&text, None).expect("parse");
    assert_eq!(
        back, prog,
        "text round-trip must preserve the whole program"
    );
    // And the text itself is a fixed point.
    assert_eq!(back.to_string(), text);
}

#[test]
fn parse_directive_errors_carry_lines() {
    assert!(parse_program(".mem_words\nfunc f:\ne:\n    halt\n", None).is_err());
    assert!(parse_program(".data 5:\nfunc f:\ne:\n    halt\n", None).is_err());
    assert!(parse_program(".data x: 1\nfunc f:\ne:\n    halt\n", None).is_err());
    assert!(parse_program(".bogus\nfunc f:\ne:\n    halt\n", None).is_err());
    let e = parse_program("func f:\ne:\n    halt\n.entry\n", None).unwrap_err();
    assert_eq!(e.line, 4);
    // Explicit entry argument beats the directive.
    let src = ".entry f\nfunc f:\ne:\n    halt\nfunc g:\ne:\n    halt\n";
    assert_eq!(parse_program(src, Some("g")).unwrap().entry.index(), 1);
    assert_eq!(parse_program(src, None).unwrap().entry.index(), 0);
}

#[test]
fn parse_rejects_bad_input() {
    assert!(parse_program("", None).is_err());
    assert!(parse_program("func f:\nentry:\n    bogus r1\n    halt\n", None).is_err());
    assert!(parse_program("func f:\nentry:\n    beq r1, r2, nowhere\n    halt\n", None).is_err());
    assert!(parse_program("func f:\nentry:\n    li r99, 0\n    halt\n", None).is_err());
    // Error carries the line number.
    let e = parse_program("func f:\nentry:\n    halt\n    badop\n", None).unwrap_err();
    assert_eq!(e.line, 4);
}

#[test]
fn parse_comments_and_blank_lines() {
    let src = "
# leading comment
func f:
entry:   # block comment
    li r1, 3   # trailing
    halt
";
    let prog = parse_program(src, None).expect("parse");
    assert_eq!(prog.funcs[0].blocks[0].insns.len(), 2);
}

#[test]
fn validate_rejects_midblock_control() {
    let mut prog = figure1a();
    // Inject a jump in the middle of block 1.
    prog.funcs[0].blocks[1]
        .insns
        .insert(0, Instruction::new(Opcode::Jump { target: BlockId(3) }));
    assert!(!validate(&prog).is_empty());
}

#[test]
fn validate_rejects_out_of_range_target() {
    let mut prog = figure1a();
    if let Opcode::Branch { target, .. } = &mut prog.funcs[0].blocks[0].insns[0].op {
        *target = BlockId(99);
    }
    assert!(!validate(&prog).is_empty());
}

#[test]
fn validate_rejects_fallthrough_off_end() {
    let mut fb = FuncBuilder::new("f");
    fb.block("entry");
    fb.li(r(1), 0);
    let prog = single_func_program(fb);
    assert!(!validate(&prog).is_empty());
}

#[test]
fn validate_allows_guard_on_cond_branch_but_not_jump() {
    // Conditional branches may be predicated (predicated branch
    // instructions); unconditional jumps may not.
    let mut prog = figure1a();
    prog.funcs[0].blocks[0].insns[0].guard = Some(Guard::if_true(p(0)));
    assert!(validate(&prog).is_empty());
    let mut prog2 = figure1a();
    // Block 1 (`fall`) ends in `j L2`.
    let last = prog2.funcs[0].blocks[1].insns.len() - 1;
    prog2.funcs[0].blocks[1].insns[last].guard = Some(Guard::if_true(p(0)));
    assert!(!validate(&prog2).is_empty());
}

#[test]
fn unreachable_block_detection() {
    let mut fb = FuncBuilder::new("f");
    fb.block("entry");
    fb.jump("end");
    fb.block("island");
    fb.li(r(1), 1);
    fb.block("end");
    fb.halt();
    let prog = single_func_program(fb);
    // `island` is unreachable but falls through to `end` (valid otherwise).
    assert_eq!(unreachable_blocks(&prog, 0), vec![BlockId(1)]);
}

#[test]
fn program_builder_resolves_cross_function_calls() {
    let mut pb = ProgramBuilder::new();
    let mut main = FuncBuilder::new("main");
    main.block("entry");
    main.call("helper");
    main.block("after");
    main.halt();
    let mut helper = FuncBuilder::new("helper");
    helper.block("entry");
    helper.addi(r(1), r(1), 1);
    helper.ret();
    pb.add_func(main);
    pb.add_func(helper);
    let prog = pb.finish("main");
    assert_valid(&prog);
    match prog.funcs[0].blocks[0].insns[0].op {
        Opcode::Call { func } => assert_eq!(func, FuncId(1)),
        _ => panic!("expected call"),
    }
}

#[test]
fn pcs_are_unique_and_word_aligned() {
    let prog = figure1a();
    let pcs = prog.assign_pcs();
    let mut seen = std::collections::HashSet::new();
    for (fid, f) in prog.iter_funcs() {
        for (bid, b) in f.iter_blocks() {
            for idx in 0..b.insns.len() {
                let pc = pcs.pc(InsnRef {
                    func: fid,
                    block: bid,
                    idx: idx as u32,
                });
                assert_eq!(pc % 4, 0);
                assert!(seen.insert(pc), "duplicate pc {pc:#x}");
            }
        }
    }
}

#[test]
fn backward_branch_classification() {
    // Backward branch: target at or before the branch block.
    let i = Instruction::new(Opcode::Branch {
        cond: BranchCond::Ne(r(5), r(6)),
        target: BlockId(0),
        likely: false,
    });
    assert_eq!(is_backward_branch(BlockId(4), &i), Some(true));
    let fwd = Instruction::new(Opcode::Branch {
        cond: BranchCond::Ne(r(5), r(6)),
        target: BlockId(9),
        likely: false,
    });
    assert_eq!(is_backward_branch(BlockId(4), &fwd), Some(false));
    let nop = Instruction::new(Opcode::Nop);
    assert_eq!(is_backward_branch(BlockId(4), &nop), None);
}

#[test]
fn fresh_label_avoids_collisions() {
    let prog = figure1a();
    let l = prog.funcs[0].fresh_label("L");
    assert!(prog.funcs[0].block_by_label(&l).is_none());
}

#[test]
fn reg_dense_indices_are_unique() {
    let mut seen = std::collections::HashSet::new();
    for i in 0..NUM_INT_REGS {
        assert!(seen.insert(Reg::Int(IntReg(i)).dense_index()));
    }
    for i in 0..NUM_FLT_REGS {
        assert!(seen.insert(Reg::Flt(FltReg(i)).dense_index()));
    }
    for i in 0..NUM_PRED_REGS {
        assert!(seen.insert(Reg::Pred(PredReg(i)).dense_index()));
    }
    assert!(seen.iter().all(|&i| i < Reg::DENSE_COUNT));
}
