//! Property test: arbitrary valid programs print and reparse to themselves.

use guardspec_ir::builder::*;
use guardspec_ir::insn::AluKind;
use guardspec_ir::parse::parse_program;
use guardspec_ir::reg::{f, p, r};
use guardspec_ir::validate::validate;
use guardspec_ir::SetCond;
use proptest::prelude::*;

/// One straight-line instruction chosen from a parameter tuple.
fn emit(fb: &mut FuncBuilder, which: u8, a: u8, b: u8, imm: i64) {
    let (ra, rb, rd) = (r(1 + a % 20), r(1 + b % 20), r(22 + (a ^ b) % 8));
    match which % 14 {
        0 => {
            fb.add(rd, ra, rb);
        }
        1 => {
            fb.subi(rd, ra, imm);
        }
        2 => {
            fb.li(rd, imm);
        }
        3 => {
            fb.mov(rd, ra);
        }
        4 => {
            fb.sll(rd, ra, b % 31);
        }
        5 => {
            fb.lw(rd, ra, imm.rem_euclid(64));
        }
        6 => {
            fb.sw(ra, rb, imm.rem_euclid(64));
        }
        7 => {
            fb.setpi(SetCond::Lt, p(a % 16), ra, imm);
        }
        8 => {
            fb.pand(p(a % 16), p(b % 16), p(a.wrapping_add(b) % 16));
        }
        9 => {
            fb.cmov(rd, ra, p(b % 16), a.is_multiple_of(2));
        }
        10 => {
            fb.fadd(f(a % 30), f(b % 30), f(a.wrapping_add(b) % 30));
        }
        11 => {
            fb.itof(f(a % 30), ra);
        }
        12 => {
            fb.alui(AluKind::Xor, rd, ra, imm);
        }
        _ => {
            fb.nop();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>(), -4096i64..4096), 1..40),
        with_branch in any::<bool>(),
    ) {
        let mut fb = FuncBuilder::new("prop");
        fb.block("entry");
        for (w, a, b, imm) in &ops {
            emit(&mut fb, *w, *a, *b, *imm);
        }
        if with_branch {
            fb.beq(r(1), r(2), "tail");
            fb.block("mid");
            fb.addi(r(3), r(3), 1);
        }
        fb.block("tail");
        fb.halt();
        let prog = single_func_program(fb);
        prop_assert!(validate(&prog).is_empty());
        let text = format!("{prog}");
        let back = parse_program(&text, None).expect("reparse");
        prop_assert_eq!(back.funcs, prog.funcs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_encode_decode_roundtrip(
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>(), -4096i64..4096), 1..40),
        data in prop::collection::vec((0u64..1024, any::<i64>()), 0..8),
    ) {
        let mut fb = FuncBuilder::new("bin");
        fb.block("entry");
        for (w, a, b, imm) in &ops {
            emit(&mut fb, *w, *a, *b, *imm);
        }
        fb.block("tail");
        fb.halt();
        let mut pb = ProgramBuilder::new();
        for (addr, v) in &data {
            pb.data_word(*addr, *v);
        }
        pb.add_func(fb);
        let prog = pb.finish("bin");
        let words = guardspec_ir::encode::encode_program(&prog);
        let back = guardspec_ir::encode::decode_program(&words).expect("decode");
        prop_assert_eq!(back, prog);
    }
}
