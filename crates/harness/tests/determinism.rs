//! Thread-pool determinism: the full Scale::Test matrix produces identical
//! results at `--jobs 1` (the serial reference schedule) and `--jobs 8`
//! (work stealing), with the cache disabled so every stage really executes.

use guardspec_harness::{full_json, run_experiment, stable_json, ExperimentSpec, RunOptions};
use guardspec_workloads::Scale;

fn uncached(jobs: usize) -> RunOptions {
    RunOptions {
        jobs,
        cache_dir: None,
        ..RunOptions::default()
    }
}

#[test]
fn three_scheme_matrix_is_jobcount_invariant() {
    let spec = ExperimentSpec::three_schemes("det-test", Scale::Test);
    let serial = run_experiment(&spec, &uncached(1));
    let parallel = run_experiment(&spec, &uncached(8));
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 8);
    assert_eq!(
        stable_json(&serial).to_pretty(),
        stable_json(&parallel).to_pretty(),
        "results depend on the thread count"
    );
}

#[test]
fn ablation_matrix_is_jobcount_invariant() {
    let spec = ExperimentSpec::ablation("det-ablation", Scale::Test);
    let serial = run_experiment(&spec, &uncached(1));
    let parallel = run_experiment(&spec, &uncached(8));
    assert_eq!(
        stable_json(&serial).to_pretty(),
        stable_json(&parallel).to_pretty()
    );
}

#[test]
fn streamed_and_materialized_pipelines_agree() {
    // The streaming trace pipeline must be an implementation detail: the
    // stable artifact is byte-identical with it on or off, at any job count.
    let spec = ExperimentSpec::three_schemes("det-stream", Scale::Test);
    let mut no_stream = uncached(1);
    no_stream.stream = false;
    let materialized = run_experiment(&spec, &no_stream);
    let streamed = run_experiment(&spec, &uncached(1));
    let streamed_mt = run_experiment(&spec, &uncached(8));
    assert_eq!(
        stable_json(&materialized).to_pretty(),
        stable_json(&streamed).to_pretty(),
        "streaming changed the science"
    );
    assert_eq!(
        stable_json(&streamed).to_pretty(),
        stable_json(&streamed_mt).to_pretty(),
        "streaming made results depend on the thread count"
    );
}

#[test]
fn fanout_and_per_cell_pipelines_agree() {
    // Trace-once/simulate-many must be an implementation detail too: the
    // stable artifact is byte-identical with fan-out on (the default) or
    // off (one interpretation per cell), at any job count.
    let spec = ExperimentSpec::ablation("det-fanout", Scale::Test);
    let mut no_fanout = uncached(1);
    no_fanout.fanout = false;
    let per_cell = run_experiment(&spec, &no_fanout);
    let fanned = run_experiment(&spec, &uncached(1));
    let fanned_mt = run_experiment(&spec, &uncached(8));
    assert_eq!(
        stable_json(&per_cell).to_pretty(),
        stable_json(&fanned).to_pretty(),
        "trace fan-out changed the science"
    );
    assert_eq!(
        stable_json(&fanned).to_pretty(),
        stable_json(&fanned_mt).to_pretty(),
        "trace fan-out made results depend on the thread count"
    );
}

#[test]
fn full_artifact_carries_meta_and_timings() {
    let spec = ExperimentSpec::three_schemes("meta-test", Scale::Test);
    let r = run_experiment(&spec, &uncached(2));
    let j = full_json(&r);
    let meta = j.get("meta").expect("meta object");
    assert_eq!(meta.get("jobs").and_then(|v| v.as_u64()), Some(2));
    assert!(meta.get("wall_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
    // Every cell records a simulate timing; Proposed cells also a transform.
    let cells = j.get("cells").and_then(|c| c.as_arr()).unwrap();
    assert_eq!(cells.len(), spec.cells.len());
    for cell in cells {
        assert!(cell.get("simulate").is_some());
        assert!(cell.get("stats").is_some());
        if cell.get("scheme").and_then(|s| s.as_str()) == Some("Proposed") {
            assert!(cell.get("transform").is_some());
            assert!(cell.get("report").is_some());
        }
    }
}
