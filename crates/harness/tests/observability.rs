//! Observability determinism: with cycle accounting and span recording on,
//! the per-cell accounting, the decision log, and the stable artifact must
//! be byte-identical across worker counts and pipeline shapes, and the
//! emitted Chrome trace document must validate.  With observability off,
//! nothing about the stable artifact changes (no `accounting` fields).

use guardspec_harness::{
    chrome_trace_json, run_experiment, stable_json, validate_chrome_trace, ExperimentResult,
    ExperimentSpec, RunOptions,
};
use guardspec_workloads::Scale;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "guardspec-observability-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn observed_run(tag: &str, jobs: usize, fanout: bool) -> ExperimentResult {
    let dir = scratch(tag);
    let opts = RunOptions {
        jobs,
        cache_dir: Some(dir.clone()),
        fanout,
        observe: true,
        trace_spans: true,
        ..RunOptions::default()
    };
    let spec = ExperimentSpec::three_schemes("obs-test", Scale::Test);
    let result = run_experiment(&spec, &opts);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The full decision log, one line per visited branch, in artifact order.
fn decision_log(r: &ExperimentResult) -> String {
    let mut out = String::new();
    for c in &r.cells {
        let Some(report) = &c.report else { continue };
        for d in &report.decisions {
            out.push_str(&format!("{}/{}: {}\n", c.workload, c.label, d.log_line()));
        }
    }
    out
}

#[test]
fn accounting_and_decision_log_identical_across_jobs_and_fanout() {
    let base = observed_run("j1-fan", 1, true);

    // Every cell carries accounting that satisfies the bucket-sum and
    // per-site invariants, and the driver logged a decision with a reason
    // for every visited loop branch of every transformed cell.
    assert!(!base.cells.is_empty());
    for c in &base.cells {
        let acct = c.accounting.as_ref().expect("observed run has accounting");
        acct.check(&c.stats);
        if let Some(report) = &c.report {
            assert!(
                !report.decisions.is_empty(),
                "{}/{}: transform visited no branches",
                c.workload,
                c.label
            );
            for d in &report.decisions {
                assert!(!d.reason.is_empty(), "decision without reason");
            }
        }
    }
    let base_stable = stable_json(&base).to_pretty();
    let base_log = decision_log(&base);
    assert!(!base_log.is_empty(), "no decisions logged at all");

    for (tag, jobs, fanout) in [
        ("j8-fan", 8, true),
        ("j1-nofan", 1, false),
        ("j8-nofan", 8, false),
    ] {
        let r = observed_run(tag, jobs, fanout);
        assert_eq!(
            base_stable,
            stable_json(&r).to_pretty(),
            "{tag}: stable artifact differs from jobs=1 fanout"
        );
        assert_eq!(
            base_log,
            decision_log(&r),
            "{tag}: decision log differs from jobs=1 fanout"
        );
    }
}

#[test]
fn recorded_spans_form_a_valid_chrome_trace() {
    let r = observed_run("trace", 2, true);
    assert!(!r.spans.is_empty(), "trace_spans run recorded no spans");
    let doc = chrome_trace_json(&r.spans, &r.metrics);
    validate_chrome_trace(&doc).unwrap();
    // And it survives a print/parse round trip (what `--trace-out` writes
    // and `report --check-trace` reads).
    let parsed = guardspec_harness::json::parse(&doc.to_pretty()).unwrap();
    validate_chrome_trace(&parsed).unwrap();
}

#[test]
fn observability_off_leaves_the_stable_artifact_unchanged() {
    let dir = scratch("off");
    let spec = ExperimentSpec::three_schemes("obs-test", Scale::Test);
    let plain = run_experiment(
        &spec,
        &RunOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            ..RunOptions::default()
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(plain.cells.iter().all(|c| c.accounting.is_none()));
    assert!(plain.spans.is_empty());
    let text = stable_json(&plain).to_pretty();
    assert!(
        !text.contains("cycle_buckets") && !text.contains("top_sites"),
        "unobserved artifact must not carry accounting fields"
    );

    // An observed run of the same spec reports the same science: stripping
    // the accounting fields from its stable artifact is not required to be
    // equal (it has extra fields), but stats themselves must match.
    let observed = observed_run("off-vs-on", 2, true);
    assert_eq!(plain.cells.len(), observed.cells.len());
    for (p, o) in plain.cells.iter().zip(&observed.cells) {
        assert_eq!(
            p.stats, o.stats,
            "{}/{}: observer changed stats",
            p.workload, p.label
        );
    }
}
