//! Cache-key sensitivity: changing ANY field of `DriverOptions` (including
//! every `FeedbackParams` threshold) or `MachineConfig` (including every
//! latency) must change the corresponding cache key.  Guards the hand-
//! enumerated field lists in `guardspec_harness::key` against upstream
//! struct growth: a field added there but not to the key description makes
//! one of these perturbations a no-op and fails the test.

use guardspec_core::DriverOptions;
use guardspec_harness::key::{sim_key, transform_key};
use guardspec_predict::Scheme;
use guardspec_sim::MachineConfig;
use guardspec_workloads::Scale;
use proptest::prelude::*;

type OptMut = (&'static str, fn(&mut DriverOptions));
type CfgMut = (&'static str, fn(&mut MachineConfig));

fn option_mutations() -> Vec<OptMut> {
    vec![
        ("likely_threshold", |o| o.feedback.likely_threshold += 0.011),
        ("convert_threshold", |o| {
            o.feedback.convert_threshold += 0.011
        }),
        ("monotonic_toggle_max", |o| {
            o.feedback.monotonic_toggle_max += 0.011
        }),
        ("seg_window", |o| o.feedback.seg_window += 1),
        ("seg_bias", |o| o.feedback.seg_bias += 0.011),
        ("max_segments", |o| o.feedback.max_segments += 1),
        ("min_segment_frac", |o| o.feedback.min_segment_frac += 0.011),
        ("max_period", |o| o.feedback.max_period += 1),
        ("period_agreement", |o| o.feedback.period_agreement += 0.011),
        ("enable_likely", |o| o.enable_likely = !o.enable_likely),
        ("enable_ifconvert", |o| {
            o.enable_ifconvert = !o.enable_ifconvert
        }),
        ("enable_split", |o| o.enable_split = !o.enable_split),
        ("enable_speculation", |o| {
            o.enable_speculation = !o.enable_speculation
        }),
        ("max_arm_len", |o| o.max_arm_len += 1),
        ("max_speculate_ops", |o| o.max_speculate_ops += 1),
        ("allow_speculative_loads", |o| {
            o.allow_speculative_loads = !o.allow_speculative_loads
        }),
        ("max_likelies_per_site", |o| o.max_likelies_per_site += 1),
        ("mispredict_penalty", |o| o.mispredict_penalty += 0.511),
    ]
}

fn config_mutations() -> Vec<CfgMut> {
    vec![
        ("fetch_width", |c| c.fetch_width += 1),
        ("commit_width", |c| c.commit_width += 1),
        ("rob_size", |c| c.rob_size += 1),
        ("queue_size[0]", |c| c.queue_size[0] += 1),
        ("queue_size[1]", |c| c.queue_size[1] += 1),
        ("queue_size[2]", |c| c.queue_size[2] += 1),
        ("queue_size[3]", |c| c.queue_size[3] += 1),
        ("fu_count[0]", |c| c.fu_count[0] += 1),
        ("fu_count[3]", |c| c.fu_count[3] += 1),
        // Slot 7 is the Nop class's "infinite units" sentinel (usize::MAX),
        // so wrap rather than overflow — any value change must re-key.
        ("fu_count[7]", |c| {
            c.fu_count[7] = c.fu_count[7].wrapping_add(1)
        }),
        ("max_inflight_branches", |c| c.max_inflight_branches += 1),
        ("mispredict_recovery", |c| c.mispredict_recovery += 1),
        ("frontend_depth", |c| c.frontend_depth += 1),
        ("latencies.alu", |c| c.latencies.alu += 1),
        ("latencies.ldst", |c| c.latencies.ldst += 1),
        ("latencies.sft", |c| c.latencies.sft += 1),
        ("latencies.fp_add", |c| c.latencies.fp_add += 1),
        ("latencies.fp_mul", |c| c.latencies.fp_mul += 1),
        ("latencies.fp_div", |c| c.latencies.fp_div += 1),
        ("latencies.cache_miss_penalty", |c| {
            c.latencies.cache_miss_penalty += 1
        }),
        ("bht_entries", |c| c.bht_entries *= 2),
        ("btb_sets", |c| c.btb_sets *= 2),
        ("icache.total", |c| c.icache.0 *= 2),
        ("icache.line", |c| c.icache.1 *= 2),
        ("icache.ways", |c| c.icache.2 += 1),
        ("dcache.total", |c| c.dcache.0 *= 2),
        ("dcache.line", |c| c.dcache.1 *= 2),
        ("dcache.ways", |c| c.dcache.2 += 1),
    ]
}

const TEXT: &str = "func main:\nentry:\n  halt\n";

proptest! {
    /// Random single-field perturbations of the driver options change the
    /// transform key.
    #[test]
    fn options_perturbation_changes_transform_key(i in 0usize..18) {
        let muts = option_mutations();
        let (name, m) = muts[i % muts.len()];
        let base = DriverOptions::proposed();
        let mut perturbed = base.clone();
        m(&mut perturbed);
        prop_assert_ne!(
            transform_key(TEXT, Scale::Test, &base),
            transform_key(TEXT, Scale::Test, &perturbed),
            "DriverOptions field {} did not affect the cache key", name
        );
    }

    /// Random single-field perturbations of the machine config change the
    /// simulation key.
    #[test]
    fn config_perturbation_changes_sim_key(i in 0usize..28) {
        let muts = config_mutations();
        let (name, m) = muts[i % muts.len()];
        let base = MachineConfig::r10000();
        let mut perturbed = base.clone();
        m(&mut perturbed);
        prop_assert_ne!(
            sim_key(TEXT, Scale::Test, Scheme::TwoBit, &base),
            sim_key(TEXT, Scale::Test, Scheme::TwoBit, &perturbed),
            "MachineConfig field {} did not affect the cache key", name
        );
    }
}

/// Exhaustive (non-random) sweep over the same mutation tables, so every
/// field is provably covered even on an unlucky proptest seed.
#[test]
fn every_field_perturbation_changes_the_key() {
    let base_o = DriverOptions::proposed();
    for (name, m) in option_mutations() {
        let mut p = base_o.clone();
        m(&mut p);
        assert_ne!(
            transform_key(TEXT, Scale::Test, &base_o),
            transform_key(TEXT, Scale::Test, &p),
            "DriverOptions field {name} not in the cache key"
        );
    }
    let base_c = MachineConfig::r10000();
    for (name, m) in config_mutations() {
        let mut p = base_c.clone();
        m(&mut p);
        assert_ne!(
            sim_key(TEXT, Scale::Test, Scheme::TwoBit, &base_c),
            sim_key(TEXT, Scale::Test, Scheme::TwoBit, &p),
            "MachineConfig field {name} not in the cache key"
        );
    }
}

#[test]
fn scale_scheme_and_text_are_in_the_key() {
    let o = DriverOptions::proposed();
    let c = MachineConfig::r10000();
    assert_ne!(
        transform_key(TEXT, Scale::Test, &o),
        transform_key(TEXT, Scale::Small, &o)
    );
    assert_ne!(
        sim_key(TEXT, Scale::Test, Scheme::TwoBit, &c),
        sim_key(TEXT, Scale::Test, Scheme::Perfect, &c)
    );
    assert_ne!(
        transform_key(TEXT, Scale::Test, &o),
        transform_key("func main:\nentry:\n  li r1, 1\n  halt\n", Scale::Test, &o)
    );
}
