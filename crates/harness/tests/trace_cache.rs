//! The persistent binary trace cache: fan-out runs interpret each distinct
//! program exactly once cold, replay blobs instead of interpreting warm,
//! and treat corrupt or truncated blobs as misses — re-recording them and
//! still producing byte-identical science.

use guardspec_harness::{run_experiment, stable_json, ExperimentSpec, RunOptions};
use guardspec_workloads::Scale;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "guardspec-trace-cache-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(dir: &Path) -> RunOptions {
    RunOptions {
        jobs: 2,
        cache_dir: Some(dir.to_path_buf()),
        ..RunOptions::default()
    }
}

/// All cached files whose name matches `pred`, across every shard.
fn cache_files(dir: &Path, pred: impl Fn(&str) -> bool) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in std::fs::read_dir(dir).unwrap() {
        for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let path = f.unwrap().path();
            if path.file_name().and_then(|n| n.to_str()).is_some_and(&pred) {
                out.push(path);
            }
        }
    }
    out
}

/// Distinct programs in a spec = one base program per workload that any
/// untransformed cell uses, plus one per distinct transform.
fn distinct_programs(spec: &ExperimentSpec) -> u64 {
    let bases = spec
        .workloads
        .iter()
        .enumerate()
        .filter(|(wi, _)| {
            spec.cells
                .iter()
                .any(|c| c.workload == *wi && c.transform.is_none())
        })
        .count();
    let transforms = spec.cells.iter().filter(|c| c.transform.is_some()).count();
    (bases + transforms) as u64
}

#[test]
fn fanout_interprets_once_per_distinct_program_and_warm_replays_blobs() {
    let dir = scratch("warm");
    let spec = ExperimentSpec::three_schemes("trace-warm", Scale::Test);
    let programs = distinct_programs(&spec);

    let cold = run_experiment(&spec, &opts(&dir));
    assert_eq!(
        cold.interpretations, programs,
        "cold fan-out must interpret exactly once per distinct program"
    );
    assert!(
        cold.cells
            .iter()
            .all(|c| c.trace_timing.is_some_and(|t| !t.cached)),
        "cold cells must record an uncached trace stage"
    );
    let blobs = cache_files(&dir, |n| n.starts_with("trace-") && n.ends_with(".bin"));
    assert_eq!(
        blobs.len() as u64,
        programs,
        "one trace blob per distinct program"
    );

    let warm = run_experiment(&spec, &opts(&dir));
    assert_eq!(
        warm.interpretations, 0,
        "warm run must replay blobs, not interpret"
    );
    assert!(
        warm.cells
            .iter()
            .all(|c| c.trace_timing.is_some_and(|t| t.cached)),
        "warm cells must report trace.cached = true"
    );
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&warm).to_pretty(),
        "blob replay changed the science"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_fanout_and_no_trace_cache_write_no_blobs() {
    let dir = scratch("nofanout");
    let spec = ExperimentSpec::three_schemes("trace-off", Scale::Test);
    let mut o = opts(&dir);
    o.fanout = false;
    let r = run_experiment(&spec, &o);
    assert!(r.cells.iter().all(|c| c.trace_timing.is_none()));
    assert!(cache_files(&dir, |n| n.ends_with(".bin")).is_empty());
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch("nocache");
    let mut o = opts(&dir);
    o.trace_cache = false;
    let cold = run_experiment(&spec, &o);
    assert!(cache_files(&dir, |n| n.ends_with(".bin")).is_empty());
    // Without the blob cache every fan-out run re-interprets...
    let again = run_experiment(&spec, &o);
    assert_eq!(again.interpretations, cold.interpretations);
    assert!(again.interpretations > 0);
    // ...but the stage (JSON) cache still works and the science is stable.
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&again).to_pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_trace_blobs_are_re_recorded_not_trusted() {
    let dir = scratch("corrupt");
    let spec = ExperimentSpec::three_schemes("trace-corrupt", Scale::Test);
    let cold = run_experiment(&spec, &opts(&dir));
    let programs = distinct_programs(&spec);

    // Vandalise every trace blob AND every cached simulation entry, so the
    // recovery run must actually decode-fail, re-interpret, and re-simulate
    // from the freshly recorded traces.
    let blobs = cache_files(&dir, |n| n.starts_with("trace-") && n.ends_with(".bin"));
    assert!(!blobs.is_empty());
    for b in &blobs {
        std::fs::write(b, b"GSTFnot a real trace blob").unwrap();
    }
    for s in cache_files(&dir, |n| n.starts_with("sim-")) {
        std::fs::write(s, "{\"not\":\"a real entry\"}").unwrap();
    }

    let again = run_experiment(&spec, &opts(&dir));
    assert_eq!(
        again.interpretations, programs,
        "every corrupt blob must fall back to one re-interpretation"
    );
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&again).to_pretty(),
        "recovery from corrupt blobs must recompute identical results"
    );

    // The blobs were re-recorded, so a third run is fully warm again.
    let warm = run_experiment(&spec, &opts(&dir));
    assert_eq!(warm.interpretations, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_trace_blobs_fall_back_to_interpretation() {
    let dir = scratch("truncate");
    let spec = ExperimentSpec::three_schemes("trace-trunc", Scale::Test);
    let cold = run_experiment(&spec, &opts(&dir));
    let programs = distinct_programs(&spec);

    for b in cache_files(&dir, |n| n.starts_with("trace-") && n.ends_with(".bin")) {
        let bytes = std::fs::read(&b).unwrap();
        std::fs::write(&b, &bytes[..bytes.len() / 2]).unwrap();
    }
    for s in cache_files(&dir, |n| n.starts_with("sim-")) {
        std::fs::write(s, "{\"not\":\"a real entry\"}").unwrap();
    }

    let again = run_experiment(&spec, &opts(&dir));
    assert_eq!(again.interpretations, programs);
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&again).to_pretty(),
        "recovery from truncated blobs must recompute identical results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
