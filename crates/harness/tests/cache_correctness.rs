//! Cache correctness: a cold run and a warm run of the same spec must
//! produce byte-identical stable artifacts, and the warm run must perform
//! zero re-profiles / re-transforms / re-simulations (every stage a hit).

use guardspec_harness::{run_experiment, stable_json, ExperimentSpec, RunOptions};
use guardspec_workloads::Scale;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "guardspec-harness-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn cold_then_warm_is_byte_identical_and_fully_cached() {
    let dir = scratch("coldwarm");
    let opts = RunOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..RunOptions::default()
    };

    let spec = ExperimentSpec::three_schemes("cache-test", Scale::Test);
    // Per workload: one profile lookup plus one base-trace blob lookup
    // (every workload has untransformed 2-bit/perfect cells).  Per distinct
    // transform: one transform lookup plus one transformed-trace blob
    // lookup.  Plus one simulation lookup per cell.
    let transforms = spec.cells.iter().filter(|c| c.transform.is_some()).count();
    let stages = 2 * spec.workloads.len() + 2 * transforms + spec.cells.len();

    let cold = run_experiment(&spec, &opts);
    assert_eq!(cold.cache_hits, 0, "cold run must not hit");
    assert_eq!(
        cold.cache_misses as usize, stages,
        "cold run misses once per stage"
    );
    assert!(cold.workloads.iter().all(|w| !w.timing.cached));
    assert!(cold.cells.iter().all(|c| !c.sim_timing.cached));

    let warm = run_experiment(&spec, &opts);
    assert_eq!(warm.cache_misses, 0, "warm run must recompute nothing");
    assert_eq!(
        warm.cache_hits as usize, stages,
        "warm run hits once per stage"
    );
    assert!(
        warm.workloads.iter().all(|w| w.timing.cached),
        "no re-profiles"
    );
    assert!(
        warm.cells.iter().all(|c| c.sim_timing.cached),
        "no re-simulations"
    );
    assert!(
        warm.cells
            .iter()
            .all(|c| c.transform_timing.map(|t| t.cached).unwrap_or(true)),
        "no re-transforms"
    );

    // The science is byte-identical regardless of cache temperature.
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&warm).to_pretty(),
        "cold and warm stable artifacts differ"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiles_are_shared_not_recomputed_within_a_run() {
    // The ablation matrix derives 5 transforms per workload from ONE
    // profile.  Every distinct stage is consulted exactly once; the only
    // permissible cold-run hits are simulation cells whose transformed
    // program happens to coincide with an earlier cell's (two presets can
    // produce identical code), in which case the cache shares the result
    // instead of re-simulating.
    let dir = scratch("shared");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let spec = ExperimentSpec::ablation("share-test", Scale::Test);
    let cold = run_experiment(&spec, &opts);
    // Every ablation cell is transformed, so each distinct transform also
    // gets a trace-blob lookup; no base traces are needed.
    let stages = spec.workloads.len() + 3 * spec.cells.len();
    assert_eq!((cold.cache_hits + cold.cache_misses) as usize, stages);
    // Profiles and transforms all have distinct keys, so they all miss.
    let min_misses = spec.workloads.len() + spec.cells.len();
    assert!(
        (cold.cache_misses as usize) >= min_misses,
        "misses {} < {min_misses}",
        cold.cache_misses
    );
    // A warm rerun recomputes nothing at all.
    let warm = run_experiment(&spec, &opts);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&warm).to_pretty()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_sim_entries_recompute_from_cached_transforms() {
    // Regression: vandalise ONLY the simulation entries, leaving profiles
    // and transforms cached.  The recompute then simulates programs parsed
    // back from cached transform text — which must carry the workload's
    // full state (initial memory image, memory size, entry), not just its
    // instructions, or the rerun miscomputes and the golden check fires.
    let dir = scratch("simonly");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let spec = ExperimentSpec::three_schemes("simonly-test", Scale::Test);
    let cold = run_experiment(&spec, &opts);

    let mut vandalized = 0;
    for shard in std::fs::read_dir(&dir).unwrap() {
        for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let path = f.unwrap().path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("sim-"))
            {
                std::fs::write(&path, "{\"not\":\"a real entry\"}").unwrap();
                vandalized += 1;
            }
        }
    }
    assert!(vandalized > 0, "no sim entries found to vandalise");

    let again = run_experiment(&spec, &opts);
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&again).to_pretty(),
        "sim-only recovery must recompute identical results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_trusted() {
    let dir = scratch("corrupt");
    let opts = RunOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let spec = ExperimentSpec::three_schemes("corrupt-test", Scale::Test);
    let cold = run_experiment(&spec, &opts);

    // Vandalise every cached entry.
    for shard in std::fs::read_dir(&dir).unwrap() {
        for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            std::fs::write(f.unwrap().path(), "{\"not\":\"a real entry\"}").unwrap();
        }
    }

    let again = run_experiment(&spec, &opts);
    assert_eq!(
        stable_json(&cold).to_pretty(),
        stable_json(&again).to_pretty(),
        "recovery run must recompute identical results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
