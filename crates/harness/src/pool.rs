//! Dependency-aware job execution on a hand-rolled work-stealing pool.
//!
//! The sanctioned dependency set has no `rayon`/`crossbeam`, so this is
//! plain `std::thread` + `Mutex`/`Condvar`:
//!
//! * every worker owns a deque; it pops work from its own **back** (LIFO —
//!   cache-warm, just-unblocked dependents first) and steals from other
//!   workers' **front** (FIFO — the oldest, most coarse-grained work),
//! * completing a job decrements its dependents' indegrees; newly ready
//!   dependents are pushed onto the completing worker's own deque, keeping a
//!   pipeline cell (profile → transform → simulate) on one core when the
//!   machine isn't starved,
//! * an idle worker that finds every deque empty sleeps on a condvar guarded
//!   by a generation counter, so a push between "scanned empty" and "went to
//!   sleep" can never be missed.
//!
//! **Determinism:** jobs write results into pre-allocated per-job slots; the
//! caller reads slots in its own fixed order, so outputs are independent of
//! the interleaving.  With `threads == 1` the graph additionally runs on the
//! caller's thread in deterministic lowest-index-first topological order —
//! the reference schedule the `--jobs N` equivalence tests compare against.
//!
//! A panicking job (e.g. a golden-result verification failure) cancels the
//! run: remaining jobs are abandoned and the panic is re-raised on the
//! caller's thread, so a miscomputing kernel can never be reported as a
//! result.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

type JobFn = Box<dyn FnOnce() + Send + 'static>;

/// A dependency graph of runnable jobs.
#[derive(Default)]
pub struct JobGraph {
    jobs: Vec<Option<JobFn>>,
    deps: Vec<Vec<usize>>,
}

impl JobGraph {
    pub fn new() -> JobGraph {
        JobGraph::default()
    }

    /// Add a job depending on earlier jobs; returns its id.  Dependencies
    /// must already be in the graph (ids are handed out in insertion order),
    /// which makes cycles unrepresentable.
    pub fn add(&mut self, deps: &[usize], f: impl FnOnce() + Send + 'static) -> usize {
        let id = self.jobs.len();
        assert!(
            deps.iter().all(|&d| d < id),
            "job {id}: dependency on a later job"
        );
        self.jobs.push(Some(Box::new(f)));
        self.deps.push(deps.to_vec());
        id
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run every job, honouring dependencies, on `threads` workers
    /// (clamped to `[1, len]`).  Re-raises the first job panic.
    pub fn execute(self, threads: usize) {
        let total = self.jobs.len();
        if total == 0 {
            return;
        }
        let threads = threads.clamp(1, total);
        if threads == 1 {
            self.execute_serial();
        } else {
            self.execute_parallel(threads);
        }
    }

    /// Deterministic reference schedule: lowest-index ready job first.
    fn execute_serial(mut self) {
        let total = self.jobs.len();
        let mut indegree: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut dependents = vec![Vec::new(); total];
        for (id, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                dependents[d].push(id);
            }
        }
        let mut ready: Vec<usize> = (0..total).filter(|&i| indegree[i] == 0).rev().collect();
        let mut done = 0usize;
        while let Some(id) = ready.pop() {
            (self.jobs[id].take().expect("job runs once"))();
            done += 1;
            for &dep in &dependents[id] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    // Keep `ready` sorted descending so pop() yields the
                    // lowest index.
                    let at = ready.partition_point(|&x| x > dep);
                    ready.insert(at, dep);
                }
            }
        }
        assert_eq!(done, total, "job graph has unreachable jobs");
    }

    fn execute_parallel(self, threads: usize) {
        let total = self.jobs.len();
        let mut dependents = vec![Vec::new(); total];
        for (id, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                dependents[d].push(id);
            }
        }
        let shared = Shared {
            jobs: Mutex::new(self.jobs),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(SyncState {
                indegree: self.deps.iter().map(Vec::len).collect(),
                completed: 0,
                generation: 0,
                panic: None,
            }),
            cv: Condvar::new(),
            dependents,
            total,
        };
        // Seed initially-ready jobs round-robin across workers.
        {
            let sync = shared.sync.lock().unwrap();
            let ready: Vec<usize> = (0..total).filter(|&i| sync.indegree[i] == 0).collect();
            drop(sync);
            for (i, id) in ready.into_iter().enumerate() {
                shared.deques[i % threads].lock().unwrap().push_back(id);
            }
        }
        std::thread::scope(|scope| {
            for w in 0..threads {
                let shared = &shared;
                scope.spawn(move || worker(shared, w));
            }
        });
        let sync = shared.sync.into_inner().unwrap();
        if let Some(payload) = sync.panic {
            resume_unwind(payload);
        }
        assert_eq!(sync.completed, total, "job graph has unreachable jobs");
    }
}

struct SyncState {
    indegree: Vec<usize>,
    completed: usize,
    /// Bumped on every enqueue; lets idle workers detect "something was
    /// pushed since I scanned" without holding every deque lock at once.
    generation: u64,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    jobs: Mutex<Vec<Option<JobFn>>>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    sync: Mutex<SyncState>,
    cv: Condvar,
    dependents: Vec<Vec<usize>>,
    total: usize,
}

fn worker(shared: &Shared, me: usize) {
    let n = shared.deques.len();
    loop {
        let gen_before = shared.sync.lock().unwrap().generation;
        // Own work from the back (LIFO), stolen work from the front (FIFO).
        let mut job = shared.deques[me].lock().unwrap().pop_back();
        if job.is_none() {
            for v in (me + 1..n).chain(0..me) {
                job = shared.deques[v].lock().unwrap().pop_front();
                if job.is_some() {
                    break;
                }
            }
        }
        let Some(id) = job else {
            let mut sync = shared.sync.lock().unwrap();
            loop {
                if sync.completed == shared.total || sync.panic.is_some() {
                    shared.cv.notify_all();
                    return;
                }
                if sync.generation != gen_before {
                    break; // Something was enqueued since our scan; rescan.
                }
                sync = shared.cv.wait(sync).unwrap();
            }
            continue;
        };

        let f = shared.jobs.lock().unwrap()[id]
            .take()
            .expect("job runs once");
        let result = catch_unwind(AssertUnwindSafe(f));

        let mut sync = shared.sync.lock().unwrap();
        sync.completed += 1;
        match result {
            Err(payload) => {
                if sync.panic.is_none() {
                    sync.panic = Some(payload);
                }
                // Cancel: wake everyone so they observe the panic and exit.
                shared.cv.notify_all();
                return;
            }
            Ok(()) => {
                let mut newly_ready = Vec::new();
                for &dep in &shared.dependents[id] {
                    sync.indegree[dep] -= 1;
                    if sync.indegree[dep] == 0 {
                        newly_ready.push(dep);
                    }
                }
                let finished = sync.completed == shared.total;
                if !newly_ready.is_empty() {
                    sync.generation += 1;
                }
                drop(sync);
                if !newly_ready.is_empty() {
                    let mut dq = shared.deques[me].lock().unwrap();
                    for dep in newly_ready {
                        dq.push_back(dep);
                    }
                    drop(dq);
                    shared.cv.notify_all();
                } else if finished {
                    shared.cv.notify_all();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_every_job_once() {
        for threads in [1, 2, 8] {
            let count = Arc::new(AtomicUsize::new(0));
            let mut g = JobGraph::new();
            for _ in 0..100 {
                let count = count.clone();
                g.add(&[], move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            g.execute(threads);
            assert_eq!(count.load(Ordering::Relaxed), 100, "threads={threads}");
        }
    }

    #[test]
    fn dependencies_are_honoured() {
        // Chain a -> b -> c fan-out x16; record a topological stamp.
        for threads in [1, 4] {
            let stamp = Arc::new(AtomicU64::new(0));
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut g = JobGraph::new();
            let mut prev = Vec::new();
            for stage in 0..3u64 {
                let mut this = Vec::new();
                for _ in 0..16 {
                    let stamp = stamp.clone();
                    let order = order.clone();
                    let id = g.add(&prev, move || {
                        let t = stamp.fetch_add(1, Ordering::SeqCst);
                        order.lock().unwrap().push((stage, t));
                    });
                    this.push(id);
                }
                prev = this;
            }
            g.execute(threads);
            let order = order.lock().unwrap();
            assert_eq!(order.len(), 48);
            // Every stage-1 stamp exceeds every stage-0 stamp, etc.
            for s in 0..2u64 {
                let max_lo = order
                    .iter()
                    .filter(|(st, _)| *st == s)
                    .map(|&(_, t)| t)
                    .max()
                    .unwrap();
                let min_hi = order
                    .iter()
                    .filter(|(st, _)| *st == s + 1)
                    .map(|&(_, t)| t)
                    .min()
                    .unwrap();
                assert!(min_hi > max_lo, "stage {} overlapped stage {}", s + 1, s);
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        JobGraph::new().execute(8);
    }

    #[test]
    fn panic_propagates() {
        for threads in [1, 4] {
            let mut g = JobGraph::new();
            g.add(&[], || {});
            g.add(&[], || panic!("job exploded"));
            let err = catch_unwind(AssertUnwindSafe(|| g.execute(threads))).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(
                msg.contains("job exploded"),
                "threads={threads}: got {msg:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dependency on a later job")]
    fn forward_dependencies_rejected() {
        let mut g = JobGraph::new();
        g.add(&[3], || {});
    }
}
