//! A tiny named-counter registry for run-level observability.
//!
//! Stages increment counters ("transform.bin_decoded", "sim.observed", …)
//! through a shared [`MetricsRegistry`]; the artifact layer snapshots them
//! into the `meta` object of `results/BENCH_<n>.json`.  Counters are sorted
//! by name at snapshot time so the emitted JSON is deterministic regardless
//! of which worker thread incremented first.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Thread-safe monotonic counters keyed by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add one to `name` (creating it at zero first if needed).
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().unwrap();
        *c.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raise `name` to `value` if it is higher (a high-water mark, e.g.
    /// the deepest pipeline a connection ever reached).
    pub fn record_max(&self, name: &str, value: u64) {
        let mut c = self.counters.lock().unwrap();
        let e = c.entry(name.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_max_is_a_high_water_mark() {
        let m = MetricsRegistry::new();
        m.record_max("depth", 3);
        m.record_max("depth", 1);
        assert_eq!(m.get("depth"), 3);
        m.record_max("depth", 7);
        assert_eq!(m.get("depth"), 7);
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let m = MetricsRegistry::new();
        m.incr("zebra");
        m.add("alpha", 5);
        m.incr("zebra");
        assert_eq!(m.get("zebra"), 2);
        assert_eq!(m.get("absent"), 0);
        assert_eq!(
            m.snapshot(),
            vec![("alpha".to_string(), 5), ("zebra".to_string(), 2)]
        );
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.incr("hits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("hits"), 400);
    }
}
