//! Named counters and latency histograms for run/service observability.
//!
//! Stages increment counters ("transform.bin_decoded", "sim.observed", …)
//! through a shared [`MetricsRegistry`]; the artifact layer snapshots them
//! into the `meta` object of `results/BENCH_<n>.json`.  Counters are sorted
//! by name at snapshot time so the emitted JSON is deterministic regardless
//! of which worker thread incremented first.
//!
//! [`Histogram`] is a lock-light log-linear latency histogram: a fixed
//! 64-bucket layout (two buckets per power of two, so bucket upper bounds
//! grow by ≈√2), all-atomic recording, exact `sum`/`count`/`max`, and
//! bucket-wise merging.  Quantile estimates return the upper bound of the
//! bucket holding the requested rank, so an estimate is never below the
//! true order statistic and never more than ×[`HIST_MAX_RATIO`] ≈ 1.4145
//! above it (values below the 1 µs first bound report as 1 µs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Thread-safe monotonic counters plus named histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add one to `name` (creating it at zero first if needed).
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().unwrap();
        *c.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raise `name` to `value` if it is higher (a high-water mark, e.g.
    /// the deepest pipeline a connection ever reached).
    pub fn record_max(&self, name: &str, value: u64) {
        let mut c = self.counters.lock().unwrap();
        let e = c.entry(name.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Record a nanosecond duration sample into the histogram `name`
    /// (creating it on first use).  The registry lock covers only the map
    /// lookup; the record itself is lock-free atomics.
    pub fn time_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record(ns);
    }

    /// The histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut h = self.histograms.lock().unwrap();
        h.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// All histograms, sorted by name.
    pub fn histograms_snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Number of buckets ([`HIST_BOUNDS`] finite upper bounds + one overflow).
pub const HIST_BUCKETS: usize = 64;

/// Documented worst-case ratio of a quantile estimate over the true order
/// statistic (for samples ≥ 1 µs): one bucket's width, ≈√2 plus integer
/// flooring slack.
pub const HIST_MAX_RATIO: f64 = 1.4145;

/// Finite bucket upper bounds in nanoseconds: `b[2k] = 1000·2^k`,
/// `b[2k+1] = ⌊1000·2^k·181/128⌋` (181/128 ≈ √2), spanning 1 µs to ~36 min.
/// Bucket `i` holds samples in `(b[i-1], b[i]]`; bucket 0 also absorbs
/// everything below 1 µs; bucket 63 is the overflow (+Inf) bucket.
pub const HIST_BOUNDS: [u64; HIST_BUCKETS - 1] = hist_bounds();

const fn hist_bounds() -> [u64; HIST_BUCKETS - 1] {
    let mut b = [0u64; HIST_BUCKETS - 1];
    let mut i = 0;
    while i < HIST_BUCKETS - 1 {
        let base = 1000u64 << (i / 2);
        b[i] = if i % 2 == 0 { base } else { base * 181 / 128 };
        i += 1;
    }
    b
}

/// Index of the bucket a sample of `ns` nanoseconds falls in.
pub fn hist_bucket(ns: u64) -> usize {
    HIST_BOUNDS.partition_point(|&b| b < ns)
}

/// A fixed-layout log-linear histogram with all-atomic recording.
///
/// `sum`, `count`, and `max` are exact; bucket counts place each sample
/// within a ≈√2-wide bucket (layout in [`HIST_BOUNDS`]).  Two histograms
/// with the same layout merge bucket-wise, and merging is exactly
/// equivalent to having recorded every sample into one histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    pub fn record(&self, ns: u64) {
        self.buckets[hist_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Fold `other`'s samples into `self` (bucket-wise adds).
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            b.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples, in nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample, in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Bucket counts (index `i` counts samples ≤ [`HIST_BOUNDS`]`[i]`,
    /// the last bucket counts overflow samples).
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in nanoseconds: the upper
    /// bound of the bucket containing the rank-`⌈q·count⌉` sample, so the
    /// estimate is ≥ the true order statistic and ≤ ×[`HIST_MAX_RATIO`]
    /// above it (overflow-bucket ranks return the exact `max`).  `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.bucket_counts().iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(if i < HIST_BOUNDS.len() {
                    HIST_BOUNDS[i].min(self.max())
                } else {
                    self.max()
                });
            }
        }
        Some(self.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_max_is_a_high_water_mark() {
        let m = MetricsRegistry::new();
        m.record_max("depth", 3);
        m.record_max("depth", 1);
        assert_eq!(m.get("depth"), 3);
        m.record_max("depth", 7);
        assert_eq!(m.get("depth"), 7);
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let m = MetricsRegistry::new();
        m.incr("zebra");
        m.add("alpha", 5);
        m.incr("zebra");
        assert_eq!(m.get("zebra"), 2);
        assert_eq!(m.get("absent"), 0);
        assert_eq!(
            m.snapshot(),
            vec![("alpha".to_string(), 5), ("zebra".to_string(), 2)]
        );
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.incr("hits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("hits"), 400);
    }

    #[test]
    fn bucket_layout_is_monotone_with_bounded_ratio() {
        for w in HIST_BOUNDS.windows(2) {
            assert!(w[1] > w[0], "bounds not strictly increasing: {w:?}");
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                ratio <= HIST_MAX_RATIO,
                "bucket ratio {ratio} exceeds {HIST_MAX_RATIO} at {w:?}"
            );
        }
        assert_eq!(HIST_BOUNDS[0], 1000); // 1 µs
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1000), 0);
        assert_eq!(hist_bucket(1001), 1);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn exact_sum_count_max_and_registry_histograms() {
        let m = MetricsRegistry::new();
        m.time_ns("lat", 1_500);
        m.time_ns("lat", 2_500_000);
        m.time_ns("lat", 900);
        let h = m.histogram("lat");
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 2_502_400);
        assert_eq!(h.max(), 2_500_000);
        let names: Vec<String> = m
            .histograms_snapshot()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["lat".to_string()]);
        assert!(m.histogram("lat").count() == 3, "same instance re-fetched");
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn quantile_estimates_respect_documented_error_bound() {
        // Deterministic pseudo-random samples spanning many buckets.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut samples: Vec<u64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                1_000 + x % 2_000_000_000 // 1 µs .. 2 s
            })
            .collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let est = h.quantile(q).unwrap();
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            assert!(est >= truth, "q={q}: estimate {est} below true {truth}");
            assert!(
                est as f64 <= truth as f64 * HIST_MAX_RATIO,
                "q={q}: estimate {est} exceeds true {truth} by more than the bound"
            );
        }
        assert_eq!(h.quantile(1.0), Some(*samples.last().unwrap()));
    }

    #[test]
    fn merge_equals_record_all() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..500u64 {
            let v = 1_000 + i * i * 7_919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn concurrent_recording_is_deterministic_in_aggregate() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(1_000 + (t * 1000 + i) * 997);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let serial = Histogram::new();
        for t in 0..4u64 {
            for i in 0..1000u64 {
                serial.record(1_000 + (t * 1000 + i) * 997);
            }
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts(), serial.bucket_counts());
        assert_eq!(h.sum(), serial.sum());
        assert_eq!(h.max(), serial.max());
    }
}
