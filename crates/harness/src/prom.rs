//! Prometheus text exposition (format 0.0.4) rendering and a small
//! validating parser.
//!
//! [`prometheus_text`] renders [`MetricsRegistry`] gauges/counters plus
//! [`Histogram`]s as `# TYPE`-annotated series; histogram samples are
//! recorded in nanoseconds but exposed in **seconds** (the Prometheus
//! convention), with cumulative `_bucket{le="..."}` series, `_sum`, and
//! `_count`.  Metric names are sanitized to `[a-zA-Z0-9_:]` (dots in
//! registry counter names become underscores) under a daemon prefix.
//!
//! [`parse_prometheus`] is the verification half: it parses an exposition
//! body back into `series → value` and checks histogram invariants
//! (bucket counts monotone in `le`, `+Inf` bucket equals `_count`), so CI
//! can assert a scrape is well-formed without a real Prometheus server.

use crate::metrics::{Histogram, MetricsRegistry, HIST_BOUNDS};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sanitize a registry metric name into the Prometheus charset:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and other separators become `_`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_seconds(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    format!("{s}")
}

/// Render gauges, counters, and histograms as Prometheus text exposition.
/// Histogram series get a `_seconds` suffix (samples are nanoseconds
/// internally, seconds on the wire).
pub fn prometheus_text(
    prefix: &str,
    gauges: &[(&str, u64)],
    counters: &[(String, u64)],
    histograms: &[(String, Arc<Histogram>)],
) -> String {
    let mut out = String::new();
    for (name, value) in gauges {
        let n = format!("{prefix}_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, value) in counters {
        let n = format!("{prefix}_{}", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, h) in histograms {
        let n = format!("{prefix}_{}_seconds", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in h.bucket_counts().iter().enumerate() {
            cumulative += c;
            if i < HIST_BOUNDS.len() {
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    fmt_seconds(HIST_BOUNDS[i])
                ));
            } else {
                out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!("{n}_sum {}\n", fmt_seconds(h.sum())));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

/// Render a registry's counters + histograms (plus caller-supplied gauges)
/// under `prefix`.
pub fn registry_prometheus_text(
    prefix: &str,
    gauges: &[(&str, u64)],
    metrics: &MetricsRegistry,
) -> String {
    prometheus_text(
        prefix,
        gauges,
        &metrics.snapshot(),
        &metrics.histograms_snapshot(),
    )
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parse a Prometheus text exposition body into `series → value` (the
/// series key includes labels verbatim, e.g. `m_bucket{le="0.001"}`), and
/// validate: names are well-formed, values parse as floats, and every
/// histogram family has monotone bucket counts whose `+Inf` bucket equals
/// its `_count` series.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut series = BTreeMap::new();
    // base histogram name -> (le, cumulative count) in document order.
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(x) => x,
            None => return Err(format!("prom: line {}: no value: {line:?}", lno + 1)),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("prom: line {}: bad value {value_part:?}", lno + 1))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("prom: line {}: unclosed labels", lno + 1))?;
                (n, Some(rest))
            }
            None => (name_part.trim(), None),
        };
        if !valid_name(name) {
            return Err(format!("prom: line {}: bad metric name {name:?}", lno + 1));
        }
        if series.insert(name_part.to_string(), value).is_some() {
            return Err(format!(
                "prom: line {}: duplicate series {name_part:?}",
                lno + 1
            ));
        }
        if let (Some(base), Some(labels)) = (name.strip_suffix("_bucket"), labels) {
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("prom: line {}: bucket without le label", lno + 1))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("prom: line {}: bad le {le:?}", lno + 1))?
            };
            buckets
                .entry(base.to_string())
                .or_default()
                .push((bound, value));
        }
    }
    for (base, bs) in &buckets {
        for w in bs.windows(2) {
            if w[1].0 <= w[0].0 || w[1].1 < w[0].1 {
                return Err(format!(
                    "prom: histogram {base}: buckets not monotone ({w:?})"
                ));
            }
        }
        let (last_le, last_count) = *bs.last().unwrap();
        if !last_le.is_infinite() {
            return Err(format!("prom: histogram {base}: missing +Inf bucket"));
        }
        let count = series
            .get(&format!("{base}_count"))
            .ok_or_else(|| format!("prom: histogram {base}: missing _count"))?;
        if (count - last_count).abs() > 0.0 {
            return Err(format!(
                "prom: histogram {base}: +Inf bucket {last_count} != _count {count}"
            ));
        }
        if !series.contains_key(&format!("{base}_sum")) {
            return Err(format!("prom: histogram {base}: missing _sum"));
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("cache.peer_hits"), "cache_peer_hits");
        assert_eq!(sanitize_metric_name("stage.profile_us"), "stage_profile_us");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn render_parse_roundtrip_with_histograms() {
        let m = MetricsRegistry::new();
        m.incr("requests.run");
        m.add("cache.peer_hits", 3);
        m.time_ns("request.latency", 1_500);
        m.time_ns("request.latency", 2_000_000);
        m.time_ns("request.latency", 950);
        let body = registry_prometheus_text("gsd", &[("queue_depth", 2)], &m);
        let series = parse_prometheus(&body).unwrap();
        assert_eq!(series["gsd_queue_depth"], 2.0);
        assert_eq!(series["gsd_requests_run"], 1.0);
        assert_eq!(series["gsd_cache_peer_hits"], 3.0);
        assert_eq!(series["gsd_request_latency_seconds_count"], 3.0);
        assert_eq!(
            series["gsd_request_latency_seconds_bucket{le=\"+Inf\"}"],
            3.0
        );
        // Two samples at or below 1 µs + 1.5 µs ≤ the √2 bucket.
        assert_eq!(
            series["gsd_request_latency_seconds_bucket{le=\"0.000001\"}"],
            1.0
        );
        let sum = series["gsd_request_latency_seconds_sum"];
        assert!((sum - 2_002_450e-9).abs() < 1e-12, "sum={sum}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_prometheus("novalue\n").is_err());
        assert!(parse_prometheus("m one\n").is_err());
        assert!(parse_prometheus("bad.name 1\n").is_err());
        assert!(parse_prometheus("m 1\nm 2\n").is_err());
        assert!(parse_prometheus("m_bucket{le=\"0.1\"} 1\n").is_err()); // no +Inf/_count
                                                                        // Non-monotone buckets.
        let doc = "m_bucket{le=\"0.1\"} 5\nm_bucket{le=\"0.2\"} 3\n\
                   m_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 5\n";
        assert!(parse_prometheus(doc).unwrap_err().contains("monotone"));
        // +Inf disagrees with _count.
        let doc = "m_bucket{le=\"+Inf\"} 4\nm_sum 1\nm_count 5\n";
        assert!(parse_prometheus(doc).unwrap_err().contains("_count"));
        // A well-formed histogram passes.
        let doc = "# TYPE m histogram\nm_bucket{le=\"0.1\"} 2\n\
                   m_bucket{le=\"+Inf\"} 5\nm_sum 0.4\nm_count 5\n";
        parse_prometheus(doc).unwrap();
    }
}
