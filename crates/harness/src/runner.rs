//! Spec execution: expand cells into a deduplicated three-stage job graph,
//! run it on the work-stealing pool, and collect deterministic results.
//!
//! Stage pipeline per cell (arrows are job-graph dependencies):
//!
//! ```text
//! profile(workload)  ──► transform(workload, options) ──► simulate(cell)
//!        │                                                    ▲
//!        └── (cells without a transform) ─────────────────────┘ (no dep)
//! ```
//!
//! * One **profile** job per workload, shared by every cell and by the
//!   binaries' post-processing (Table 1 columns, predictor sweeps).
//! * One **transform** job per distinct (workload, options) pair — the
//!   ablation's five presets over four workloads make twenty transforms, but
//!   e.g. Tables 3+4 share a single proposed-options transform per workload.
//! * One **simulate** job per cell.  Untransformed cells depend on nothing
//!   (functional tracing needs no profile), so they start immediately.
//!
//! Every stage consults the content-addressed [`DiskCache`] first; cold
//! results are verified against the workload's golden memory image before
//! being stored, so the cache only ever holds results from correctly
//! computing kernels.

use crate::cache::DiskCache;
use crate::codec;
use crate::codec::ReportSummary;
use crate::key;
use crate::pool::JobGraph;
use crate::spec::ExperimentSpec;
use guardspec_interp::Profile;
use guardspec_predict::Scheme;
use guardspec_sim::{simulate_program_streamed_in, simulate_trace_in, SimContext, SimStats};
use guardspec_workloads::Scale;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How to execute a spec.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Cache root; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// Stream each cell's trace from a concurrent interpreter thread
    /// (bounded memory, overlapped phases).  `false` falls back to the
    /// single-threaded materialize-then-simulate path — the right choice
    /// on single-core containers.  Results are identical either way.
    pub stream: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: 0,
            cache_dir: Some(PathBuf::from("results/cache")),
            stream: true,
        }
    }
}

thread_local! {
    /// Per-worker reusable simulator state: caches, BHT, BTB and window
    /// allocations survive across the cells a worker executes.
    static SIM_CTX: RefCell<SimContext> = RefCell::new(SimContext::default());
}

impl RunOptions {
    pub fn effective_jobs(&self) -> usize {
        if self.jobs != 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Wall time and cache status of one executed stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    pub ms: f64,
    pub cached: bool,
}

/// Per-workload outputs (always produced, even with no cells).
pub struct WorkloadResult {
    pub name: String,
    pub profile: Arc<Profile>,
    pub timing: StageTiming,
}

/// One evaluated cell, in spec order.
pub struct CellResult {
    pub workload: String,
    pub label: String,
    pub scheme: Scheme,
    pub stats: SimStats,
    pub report: Option<ReportSummary>,
    pub transform_timing: Option<StageTiming>,
    pub sim_timing: StageTiming,
}

/// Everything a binary needs to print its table and emit its artifact.
pub struct ExperimentResult {
    pub name: String,
    pub scale: Scale,
    pub jobs: usize,
    pub wall_ms: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub workloads: Vec<WorkloadResult>,
    pub cells: Vec<CellResult>,
}

impl ExperimentResult {
    /// The profile for a workload by name (panics on unknown names — specs
    /// and consumers are compiled together).
    pub fn profile(&self, workload: &str) -> &Profile {
        &self
            .workloads
            .iter()
            .find(|w| w.name == workload)
            .unwrap_or_else(|| panic!("no workload {workload} in experiment"))
            .profile
    }

    /// Cells in spec order (convenience for per-workload iteration).
    pub fn cells_for<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.workload == workload)
    }
}

struct ProfileSlot {
    timing: StageTiming,
    profile: Arc<Profile>,
}

struct TransformSlot {
    timing: StageTiming,
    program: Arc<guardspec_ir::Program>,
    text: Arc<String>,
    report: ReportSummary,
}

struct SimSlot {
    timing: StageTiming,
    stats: SimStats,
}

/// Execute a spec.  Panics (after cancelling outstanding jobs) if any
/// kernel miscomputes its golden results — the harness never reports
/// numbers from a wrong answer.
pub fn run_experiment(spec: &ExperimentSpec, opts: &RunOptions) -> ExperimentResult {
    let start = Instant::now();
    let cache = Arc::new(match &opts.cache_dir {
        Some(dir) => DiskCache::new(dir),
        None => DiskCache::disabled(),
    });
    let scale = spec.scale;
    let jobs_n = opts.effective_jobs();

    // Shared, pre-sized output slots: job closures write, the collection
    // phase below reads in spec order — this is what makes results
    // independent of scheduling.
    let profile_slots: Arc<Vec<OnceLock<ProfileSlot>>> =
        Arc::new((0..spec.workloads.len()).map(|_| OnceLock::new()).collect());
    let sim_slots: Arc<Vec<OnceLock<SimSlot>>> =
        Arc::new((0..spec.cells.len()).map(|_| OnceLock::new()).collect());

    // Program text is the cache-key ingredient for every stage; compute it
    // once per workload up front.
    let texts: Vec<Arc<String>> = spec
        .workloads
        .iter()
        .map(|w| Arc::new(w.program.to_string()))
        .collect();

    let mut graph = JobGraph::new();

    // Stage 1: one profile job per workload.
    let mut profile_jobs = Vec::with_capacity(spec.workloads.len());
    for (wi, w) in spec.workloads.iter().enumerate() {
        let slots = profile_slots.clone();
        let cache = cache.clone();
        let text = texts[wi].clone();
        let program = w.program.clone();
        let expected = w.expected.clone();
        let wname = w.name;
        let id = graph.add(&[], move || {
            let t0 = Instant::now();
            let key = key::profile_key(&text, scale);
            let (profile, cached) = match load_profile(&cache, &key) {
                Some(p) => (p, true),
                None => {
                    let (profile, exec) = guardspec_interp::profile::profile_program(&program)
                        .unwrap_or_else(|e| panic!("{wname}: profile failed: {e}"));
                    let bad: Vec<_> = expected
                        .iter()
                        .filter(|&&(addr, want)| {
                            exec.machine.mem.get(addr as usize).copied() != Some(want)
                        })
                        .collect();
                    assert!(
                        bad.is_empty(),
                        "{wname} miscomputed under profiling: {bad:?}"
                    );
                    cache.put(&key, &codec::profile_to_json(&profile).to_compact());
                    (profile, false)
                }
            };
            let timing = StageTiming {
                ms: ms_since(t0),
                cached,
            };
            let _ = slots[wi].set(ProfileSlot {
                timing,
                profile: Arc::new(profile),
            });
        });
        profile_jobs.push(id);
    }

    // Stage 2: one transform job per distinct (workload, options).
    let transform_slots: Arc<Vec<OnceLock<TransformSlot>>> = Arc::new(
        (0..spec.cells.len()).map(|_| OnceLock::new()).collect(), // upper bound
    );
    let mut transform_jobs: HashMap<(usize, String), (usize, usize)> = HashMap::new();
    let mut cell_transform: Vec<Option<usize>> = vec![None; spec.cells.len()];
    for (ci, cell) in spec.cells.iter().enumerate() {
        let Some(options) = &cell.transform else {
            continue;
        };
        let dedupe = (cell.workload, key::describe_options(options));
        let next_slot = transform_jobs.len();
        let (job_id, slot) = *transform_jobs.entry(dedupe).or_insert_with(|| {
            let wi = cell.workload;
            let slots = transform_slots.clone();
            let profiles = profile_slots.clone();
            let cache = cache.clone();
            let text = texts[wi].clone();
            let program = spec.workloads[wi].program.clone();
            let options = options.clone();
            let wname = spec.workloads[wi].name;
            let id = graph.add(&[profile_jobs[wi]], move || {
                let t0 = Instant::now();
                let key = key::transform_key(&text, scale, &options);
                let (program, text, report, cached) = match load_transform(&cache, &key) {
                    Some((p, t, r)) => (p, t, r, true),
                    None => {
                        let profile = &profiles[wi].get().expect("profile dependency ran").profile;
                        let mut p = program;
                        let report = guardspec_core::transform_program(&mut p, profile, &options);
                        guardspec_ir::validate::assert_valid(&p);
                        let out_text = p.to_string();
                        let summary = ReportSummary::from(&report);
                        cache.put(
                            &key,
                            &crate::json::Json::obj(vec![
                                ("program", crate::json::Json::str(&out_text)),
                                ("report", codec::report_to_json(&summary)),
                            ])
                            .to_compact(),
                        );
                        (p, out_text, summary, false)
                    }
                };
                let timing = StageTiming {
                    ms: ms_since(t0),
                    cached,
                };
                let _ = slots[next_slot].set(TransformSlot {
                    timing,
                    program: Arc::new(program),
                    text: Arc::new(text),
                    report,
                });
                let _ = wname; // context for panics above
            });
            (id, next_slot)
        });
        cell_transform[ci] = Some(slot);
        let _ = job_id;
    }

    // Stage 3: one simulate job per cell.
    for (ci, cell) in spec.cells.iter().enumerate() {
        let wi = cell.workload;
        let deps: Vec<usize> = match cell_transform[ci] {
            Some(_slot) => {
                // Recover the transform job id from the dedupe map.
                let d = (wi, key::describe_options(cell.transform.as_ref().unwrap()));
                vec![transform_jobs[&d].0]
            }
            None => Vec::new(),
        };
        let slots = sim_slots.clone();
        let transforms = transform_slots.clone();
        let cache = cache.clone();
        let base_text = texts[wi].clone();
        let base_program = spec.workloads[wi].program.clone();
        let expected = spec.workloads[wi].expected.clone();
        let wname = spec.workloads[wi].name;
        let label = cell.label.clone();
        let scheme = cell.scheme;
        let cfg = cell.cfg.clone();
        let tslot = cell_transform[ci];
        let stream = opts.stream;
        graph.add(&deps, move || {
            let t0 = Instant::now();
            let (program, text): (Arc<guardspec_ir::Program>, Arc<String>) = match tslot {
                Some(s) => {
                    let t = transforms[s].get().expect("transform dependency ran");
                    (t.program.clone(), t.text.clone())
                }
                None => (Arc::new(base_program), base_text),
            };
            let key = key::sim_key(&text, scale, scheme, &cfg);
            let (stats, cached) = match load_stats(&cache, &key) {
                Some(s) => (s, true),
                None => {
                    let (stats, exec) = SIM_CTX.with(|ctx| {
                        let ctx = &mut *ctx.borrow_mut();
                        if stream {
                            simulate_program_streamed_in(ctx, &program, scheme, &cfg)
                                .unwrap_or_else(|e| panic!("{wname}/{label}: simulate failed: {e}"))
                        } else {
                            let (layout, trace, exec) = guardspec_interp::trace::trace_program(
                                &program,
                            )
                            .unwrap_or_else(|e| panic!("{wname}/{label}: trace failed: {e}"));
                            let stats =
                                simulate_trace_in(ctx, &program, &layout, &trace, scheme, &cfg)
                                    .unwrap_or_else(|e| {
                                        panic!("{wname}/{label}: simulate failed: {e}")
                                    });
                            (stats, exec)
                        }
                    });
                    let bad: Vec<_> = expected
                        .iter()
                        .filter(|&&(addr, want)| {
                            exec.machine.mem.get(addr as usize).copied() != Some(want)
                        })
                        .collect();
                    assert!(bad.is_empty(), "{wname}/{label} miscomputed: {bad:?}");
                    cache.put(&key, &codec::stats_to_json(&stats).to_compact());
                    (stats, false)
                }
            };
            let timing = StageTiming {
                ms: ms_since(t0),
                cached,
            };
            let _ = slots[ci].set(SimSlot { timing, stats });
        });
    }

    graph.execute(jobs_n);

    // Deterministic collection in spec order.
    let workloads = spec
        .workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let slot = profile_slots[wi].get().expect("profile job ran");
            WorkloadResult {
                name: w.name.to_string(),
                profile: slot.profile.clone(),
                timing: slot.timing,
            }
        })
        .collect();
    let cells = spec
        .cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| {
            let sim = sim_slots[ci].get().expect("sim job ran");
            let transform =
                cell_transform[ci].map(|s| transform_slots[s].get().expect("transform job ran"));
            CellResult {
                workload: spec.workloads[cell.workload].name.to_string(),
                label: cell.label.clone(),
                scheme: cell.scheme,
                stats: sim.stats.clone(),
                report: transform.map(|t| t.report.clone()),
                transform_timing: transform.map(|t| t.timing),
                sim_timing: sim.timing,
            }
        })
        .collect();

    ExperimentResult {
        name: spec.name.clone(),
        scale,
        jobs: jobs_n,
        wall_ms: ms_since(start),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        workloads,
        cells,
    }
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn load_profile(cache: &DiskCache, key: &str) -> Option<Profile> {
    let text = cache.get(key)?;
    match crate::json::parse(&text).and_then(|j| codec::profile_from_json(&j)) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("guardspec-harness: discarding bad cache entry {key}: {e}");
            None
        }
    }
}

fn load_transform(
    cache: &DiskCache,
    key: &str,
) -> Option<(guardspec_ir::Program, String, ReportSummary)> {
    let text = cache.get(key)?;
    let decode = || -> Result<_, String> {
        let j = crate::json::parse(&text)?;
        let src = j
            .get("program")
            .and_then(crate::json::Json::as_str)
            .ok_or("no program")?;
        let report = codec::report_from_json(j.get("report").ok_or("no report")?)?;
        let program = guardspec_ir::parse::parse_program(src, None).map_err(|e| e.to_string())?;
        Ok((program, src.to_string(), report))
    };
    match decode() {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("guardspec-harness: discarding bad cache entry {key}: {e}");
            None
        }
    }
}

fn load_stats(cache: &DiskCache, key: &str) -> Option<SimStats> {
    let text = cache.get(key)?;
    match crate::json::parse(&text).and_then(|j| codec::stats_from_json(&j)) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("guardspec-harness: discarding bad cache entry {key}: {e}");
            None
        }
    }
}
